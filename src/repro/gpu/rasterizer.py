"""Rasterization kernels: points, lines (conservative), triangles.

All kernels work in *pixel space*.  World-to-pixel mapping is the
responsibility of the caller (:class:`repro.core.canvas.Canvas` holds
the window transform).  The convention matches
:mod:`repro.gpu.texture`: pixel ``(r, c)`` covers the half-open cell
``[c, c+1) x [r, r+1)`` in pixel coordinates, with the sample point at
the cell center ``(c + 0.5, r + 0.5)``.

The line kernel implements *supercover* traversal: it reports every
cell the segment touches, the software equivalent of the conservative
rasterization extension the paper's prototype uses to flag boundary
pixels (Section 5.1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.gpu.scanline import parity_fill


def points_to_cells(
    xs: np.ndarray,
    ys: np.ndarray,
    height: int,
    width: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map pixel-space point coordinates to cell indices.

    Returns ``(rows, cols, inside)`` where *inside* marks points whose
    cell lies within the grid.  Points exactly on the top/right grid
    border are pulled into the last cell (closed-window semantics).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    cols = np.floor(xs).astype(np.int64)
    rows = np.floor(ys).astype(np.int64)
    # Closed upper border: a point at exactly x == width belongs to the
    # last column (analogous for rows).
    cols = np.where((xs == width) & (cols == width), width - 1, cols)
    rows = np.where((ys == height) & (rows == height), height - 1, rows)
    inside = (rows >= 0) & (rows < height) & (cols >= 0) & (cols < width)
    return rows, cols, inside


def rasterize_points(
    xs: np.ndarray,
    ys: np.ndarray,
    height: int,
    width: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Cells hit by each in-window point (out-of-window points dropped)."""
    rows, cols, inside = points_to_cells(xs, ys, height, width)
    return rows[inside], cols[inside]


# ----------------------------------------------------------------------
# Supercover (conservative) line rasterization
# ----------------------------------------------------------------------
def supercover_cells(
    x0: float, y0: float, x1: float, y1: float,
    height: int, width: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Every grid cell the closed segment touches, clipped to the grid.

    Uses the crossing-parameter method: the segment is cut at every
    vertical and horizontal grid line it crosses; the cell between two
    consecutive cuts is identified by the midpoint of that piece.  This
    covers all touched cells, including corner touches — conservative
    by construction.
    """
    ts = [0.0, 1.0]
    dx = x1 - x0
    dy = y1 - y0

    if dx != 0.0:
        first = math.ceil(min(x0, x1))
        last = math.floor(max(x0, x1))
        if first <= last:
            grid_x = np.arange(first, last + 1, dtype=np.float64)
            ts_x = (grid_x - x0) / dx
            ts.extend(ts_x.tolist())
    if dy != 0.0:
        first = math.ceil(min(y0, y1))
        last = math.floor(max(y0, y1))
        if first <= last:
            grid_y = np.arange(first, last + 1, dtype=np.float64)
            ts_y = (grid_y - y0) / dy
            ts.extend(ts_y.tolist())

    t = np.unique(np.clip(np.asarray(ts, dtype=np.float64), 0.0, 1.0))
    if len(t) < 2:
        t = np.array([0.0, 1.0])
    mid = (t[:-1] + t[1:]) / 2.0

    # Workhorse cells: one per piece midpoint plus the two endpoints —
    # a transversal grid crossing's side cells are covered by the
    # midpoints of its adjacent pieces, so interior cuts need no cells
    # of their own.
    base_px = np.concatenate([x0 + mid * dx, (x0, x1)])
    base_py = np.concatenate([y0 + mid * dy, (y0, y1)])
    cols = np.floor(base_px).astype(np.int64)
    rows = np.floor(base_py).astype(np.int64)

    # Closed-set touches the midpoint rule misses: a sample exactly on
    # a grid line touches both adjacent cells along that axis — a
    # midpoint or endpoint on a line (segment riding a column boundary,
    # endpoint landing on one), or a cut on *both* lines (the diagonal
    # (3,0)-(0,3) through lattice corners (2,1)/(1,2)).  Exact
    # crossings are measure-zero, so the 4-way lo/hi expansion runs on
    # an (almost always empty) subset; the 1e-9 snap absorbs float
    # jitter in the crossing parameters.
    cut_px = x0 + t * dx
    cut_py = y0 + t * dy

    def _on_line(vals: np.ndarray) -> np.ndarray:
        return np.abs(vals - np.rint(vals)) < 1e-9

    base_touch = _on_line(base_px) | _on_line(base_py)
    cut_touch = _on_line(cut_px) & _on_line(cut_py)
    if base_touch.any() or cut_touch.any():
        ex = np.concatenate([base_px[base_touch], cut_px[cut_touch]])
        ey = np.concatenate([base_py[base_touch], cut_py[cut_touch]])

        def axis_cells(vals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            base = np.floor(vals)
            snap = np.rint(vals)
            on = np.abs(vals - snap) < 1e-9
            lo = np.where(on, snap - 1.0, base).astype(np.int64)
            hi = np.where(on, snap, base).astype(np.int64)
            return lo, hi

        col_lo, col_hi = axis_cells(ex)
        row_lo, row_hi = axis_cells(ey)
        cols = np.concatenate([cols, col_lo, col_hi, col_lo, col_hi])
        rows = np.concatenate([rows, row_lo, row_lo, row_hi, row_hi])

    keep = (rows >= 0) & (rows < height) & (cols >= 0) & (cols < width)
    rows, cols = rows[keep], cols[keep]
    if len(rows) == 0:
        return rows, cols
    flat = rows * width + cols
    flat = np.unique(flat)
    return flat // width, flat % width


def rasterize_segments(
    segments: np.ndarray,
    height: int,
    width: int,
    bbox: tuple[int, int, int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Supercover-rasterize many segments.

    *segments* is an ``(n, 4)`` array of ``(x0, y0, x1, y1)`` rows in
    pixel space.  Returns deduplicated ``(rows, cols)`` covering every
    touched cell.  *bbox*, when given, is a ``(r0, r1, c0, c1)``
    half-open pixel window: cells outside it are dropped (the returned
    coordinates stay global), so callers rasterizing into a clipped
    sub-texture never receive out-of-window cells.
    """
    segments = np.asarray(segments, dtype=np.float64)
    if segments.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    all_rows: list[np.ndarray] = []
    all_cols: list[np.ndarray] = []
    for x0, y0, x1, y1 in segments:
        r, c = supercover_cells(x0, y0, x1, y1, height, width)
        all_rows.append(r)
        all_cols.append(c)
    rows = np.concatenate(all_rows)
    cols = np.concatenate(all_cols)
    if bbox is not None and len(rows):
        r0, r1, c0, c1 = bbox
        keep = (rows >= r0) & (rows < r1) & (cols >= c0) & (cols < c1)
        rows, cols = rows[keep], cols[keep]
    if len(rows) == 0:
        return rows, cols
    flat = np.unique(rows * width + cols)
    return flat // width, flat % width


def ring_boundary_cells(
    ring: np.ndarray,
    height: int,
    width: int,
    bbox: tuple[int, int, int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Conservative boundary cells of a closed ring (pixel-space vertices)."""
    ring = np.asarray(ring, dtype=np.float64)
    closed = np.concatenate([ring, ring[:1]])
    segments = np.concatenate([closed[:-1], closed[1:]], axis=1)
    return rasterize_segments(segments, height, width, bbox=bbox)


# ----------------------------------------------------------------------
# Bbox-clipped polygon coverage (interior + conservative boundary)
# ----------------------------------------------------------------------
def rings_pixel_bbox(
    rings: "list[np.ndarray]", height: int, width: int
) -> tuple[int, int, int, int]:
    """Grid-clipped pixel bounding box ``(r0, r1, c0, c1)`` of a ring list.

    The half-open window contains every cell the rings can touch —
    interior fill *and* conservative (supercover) boundary — because
    both land in cells between ``floor(min)`` and ``floor(max)`` of the
    ring coordinates.  May be empty when the geometry lies off-grid.
    """
    xs = np.concatenate([np.asarray(r, dtype=np.float64)[:, 0] for r in rings])
    ys = np.concatenate([np.asarray(r, dtype=np.float64)[:, 1] for r in rings])
    c0 = min(max(int(math.floor(float(xs.min()))), 0), width)
    c1 = min(max(int(math.floor(float(xs.max()))) + 1, 0), width)
    r0 = min(max(int(math.floor(float(ys.min()))), 0), height)
    r1 = min(max(int(math.floor(float(ys.max()))) + 1, 0), height)
    return r0, r1, c0, c1


def polygon_coverage(
    rings: "list[np.ndarray]",
    height: int,
    width: int,
    device: Device = DEFAULT_DEVICE,
) -> tuple[int, int, np.ndarray, np.ndarray, np.ndarray]:
    """Covered cells of a polygon, computed inside its clipped pixel bbox.

    *rings* are pixel-space vertex arrays (shell first, then holes).
    Returns ``(r0, c0, covered, brows, bcols)``: the bbox origin, a
    bbox-local boolean mask of covered cells (even-odd interior plus
    the conservative boundary ribbon), and the *global* boundary cell
    coordinates.  Work scales with the bbox area, not the grid area,
    and the mask is bit-identical to the corresponding slice of a
    full-frame fill.
    """
    bbox = rings_pixel_bbox(rings, height, width)
    r0, r1, c0, c1 = bbox
    covered = parity_fill(rings, height, width, device=device, clip=bbox)
    brows_list: list[np.ndarray] = []
    bcols_list: list[np.ndarray] = []
    for ring in rings:
        br, bc = ring_boundary_cells(ring, height, width, bbox=bbox)
        brows_list.append(br)
        bcols_list.append(bc)
    brows = np.concatenate(brows_list) if brows_list else np.empty(0, np.int64)
    bcols = np.concatenate(bcols_list) if bcols_list else np.empty(0, np.int64)
    covered[brows - r0, bcols - c0] = True
    return r0, c0, covered, brows, bcols


def coverage_tile_slice(
    r0: int,
    c0: int,
    covered: np.ndarray,
    tr0: int,
    tr1: int,
    tc0: int,
    tc1: int,
) -> tuple[int, int, np.ndarray] | None:
    """Restrict a bbox-local coverage mask to one tile's pixel span.

    *covered* sits at frame origin ``(r0, c0)`` (as returned by
    :func:`polygon_coverage`); the tile spans the half-open frame
    ranges ``[tr0, tr1) x [tc0, tc1)``.  Returns ``(ir0, ic0, sub)``
    — the frame origin of the intersection and a *view* of the mask
    over it — or ``None`` when mask and tile are disjoint.  Because
    ``sub`` is a plain slice, writing through it per-tile is
    bit-identical to writing the whole mask on the frame.
    """
    sub_h, sub_w = covered.shape
    ir0 = max(r0, tr0)
    ir1 = min(r0 + sub_h, tr1)
    ic0 = max(c0, tc0)
    ic1 = min(c0 + sub_w, tc1)
    if ir0 >= ir1 or ic0 >= ic1:
        return None
    return ir0, ic0, covered[ir0 - r0:ir1 - r0, ic0 - c0:ic1 - c0]


# ----------------------------------------------------------------------
# Triangle rasterization (edge functions)
# ----------------------------------------------------------------------
def rasterize_triangle(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float,
    height: int, width: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Cells whose centers lie inside triangle ``abc`` (either winding).

    Uses half-plane edge functions evaluated on the triangle's bounding
    subgrid, the standard GPU rasterization rule with center sampling.
    Boundary-center cells are included (top-left tie-breaking is not
    needed for our single-pass fills).
    """
    r0 = max(int(math.floor(min(ay, by, cy))), 0)
    r1 = min(int(math.ceil(max(ay, by, cy))), height)
    c0 = max(int(math.floor(min(ax, bx, cx))), 0)
    c1 = min(int(math.ceil(max(ax, bx, cx))), width)
    if r0 >= r1 or c0 >= c1:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    ys = np.arange(r0, r1, dtype=np.float64) + 0.5
    xs = np.arange(c0, c1, dtype=np.float64) + 0.5
    px = xs[None, :]
    py = ys[:, None]

    def edge(x0: float, y0: float, x1: float, y1: float) -> np.ndarray:
        return (x1 - x0) * (py - y0) - (y1 - y0) * (px - x0)

    e0 = edge(ax, ay, bx, by)
    e1 = edge(bx, by, cx, cy)
    e2 = edge(cx, cy, ax, ay)
    inside = ((e0 >= 0) & (e1 >= 0) & (e2 >= 0)) | (
        (e0 <= 0) & (e1 <= 0) & (e2 <= 0)
    )
    rr, cc = np.nonzero(inside)
    return rr + r0, cc + c0


def rasterize_triangles(
    triangles: np.ndarray, height: int, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Union of cells covered by many triangles ``(n, 6)`` (deduplicated)."""
    triangles = np.asarray(triangles, dtype=np.float64)
    if triangles.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    all_rows: list[np.ndarray] = []
    all_cols: list[np.ndarray] = []
    for ax, ay, bx, by, cx, cy in triangles:
        r, c = rasterize_triangle(ax, ay, bx, by, cx, cy, height, width)
        all_rows.append(r)
        all_cols.append(c)
    rows = np.concatenate(all_rows)
    cols = np.concatenate(all_cols)
    if len(rows) == 0:
        return rows, cols
    flat = np.unique(rows * width + cols)
    return flat // width, flat % width


def disk_mask(
    cx: float, cy: float, radius: float, height: int, width: int
) -> np.ndarray:
    """Boolean mask of cells whose centers lie within a disk (pixel space)."""
    ys = np.arange(height, dtype=np.float64) + 0.5
    xs = np.arange(width, dtype=np.float64) + 0.5
    dy2 = (ys[:, None] - cy) ** 2
    dx2 = (xs[None, :] - cx) ** 2
    return dx2 + dy2 <= radius * radius


def halfspace_mask(
    a: float, b: float, c: float, height: int, width: int
) -> np.ndarray:
    """Boolean mask of cells whose centers satisfy ``a*x + b*y + c < 0``."""
    ys = np.arange(height, dtype=np.float64) + 0.5
    xs = np.arange(width, dtype=np.float64) + 0.5
    return a * xs[None, :] + b * ys[:, None] + c < 0.0
