"""Even-odd polygon fill over the pixel grid.

Fills a polygon (shell plus holes) by computing, for every pixel
center, the parity of ring-edge crossings of a rightward ray — the
even-odd rule the OpenGL stencil trick implements in hardware.  The
kernel is fully vectorized:

1. For every (edge, pixel-row) pair, decide whether the edge crosses
   the row's center line and at which x (``O(E x H)`` array work).
2. Scatter ``+1`` into a per-row counter at the first pixel column
   whose center lies at or right of the crossing, and track per-row
   totals.
3. A column-wise cumulative sum turns the counters into "crossings to
   the left or at each center"; parity of (total - left) is the fill.

Total cost ``O(E*H + H*W)`` — independent of polygon complexity per
pixel, the property the paper's performance argument rests on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gpu.device import DEFAULT_DEVICE, Device


def parity_fill(
    rings: Sequence[np.ndarray],
    height: int,
    width: int,
    device: Device = DEFAULT_DEVICE,
    clip: tuple[int, int, int, int] | None = None,
) -> np.ndarray:
    """Boolean interior mask of a polygon given pixel-space rings.

    *rings* is a sequence of ``(n_i, 2)`` vertex arrays (shell and
    holes; winding is irrelevant under the even-odd rule).  A pixel is
    interior when its center sees an odd number of crossings to its
    right.

    *clip*, when given, is a pixel-space window ``(r0, r1, c0, c1)``
    (half-open, clamped to the grid): only pixels inside it are
    evaluated and the returned mask has shape ``(r1 - r0, c1 - c0)``.
    Crossing decisions use the *global* pixel coordinates, so the
    clipped result is bit-identical to the corresponding slice of the
    full-frame fill — the property the bbox-clipped rasterization path
    relies on.  Cost drops from ``O(E*H + H*W)`` to
    ``O(E*h + h*w)`` for a clip window of ``h`` rows and ``w`` columns.
    """
    if height < 1 or width < 1:
        raise ValueError("grid dimensions must be positive")
    if clip is None:
        r0, r1, c0, c1 = 0, height, 0, width
    else:
        r0 = max(int(clip[0]), 0)
        r1 = min(int(clip[1]), height)
        c0 = max(int(clip[2]), 0)
        c1 = min(int(clip[3]), width)
    out_h = max(r1 - r0, 0)
    out_w = max(c1 - c0, 0)

    edges: list[np.ndarray] = []
    for ring in rings:
        ring = np.asarray(ring, dtype=np.float64)
        if ring.ndim != 2 or ring.shape[1] != 2 or len(ring) < 3:
            raise ValueError("each ring must be an (n>=3, 2) array")
        closed = np.concatenate([ring, ring[:1]])
        edges.append(
            np.concatenate([closed[:-1], closed[1:]], axis=1)
        )
    if not edges or out_h == 0 or out_w == 0:
        return np.zeros((out_h, out_w), dtype=bool)
    e = np.concatenate(edges)  # (E, 4): x0, y0, x1, y1
    x0, y0, x1, y1 = e[:, 0], e[:, 1], e[:, 2], e[:, 3]

    out = np.zeros((out_h, out_w), dtype=bool)

    def fill_rows(rows: slice) -> None:
        # Rows are local to the clip window; centers stay global so
        # every crossing decision matches the unclipped fill exactly.
        yc = np.arange(rows.start + r0, rows.stop + r0, dtype=np.float64) + 0.5
        n_rows = rows.stop - rows.start
        # crosses[i, j]: edge i crosses the center line of local row j.
        crosses = (y0[:, None] > yc[None, :]) != (y1[:, None] > yc[None, :])
        if not crosses.any():
            return
        ei, rj = np.nonzero(crosses)
        dy = y1[ei] - y0[ei]
        x_cross = (x1[ei] - x0[ei]) * (yc[rj] - y0[ei]) / dy + x0[ei]
        # First column whose center (c + 0.5) >= x_cross:
        col = np.ceil(x_cross - 0.5).astype(np.int64) - c0
        col = np.maximum(col, 0)

        counts = np.zeros((n_rows, out_w), dtype=np.int64)
        totals = np.zeros(n_rows, dtype=np.int64)
        in_grid = col < out_w
        np.add.at(counts, (rj[in_grid], col[in_grid]), 1)
        np.add.at(totals, rj, 1)
        left_or_at = np.cumsum(counts, axis=1)
        right = totals[:, None] - left_or_at
        out[rows] = (right % 2) == 1

    device.run_rows(out_h, fill_rows)
    return out


def parity_fill_multi(
    polygons: Sequence[Sequence[np.ndarray]],
    height: int,
    width: int,
    device: Device = DEFAULT_DEVICE,
) -> np.ndarray:
    """Stacked fill: per-pixel count of how many polygons cover it.

    Each element of *polygons* is that polygon's ring list.  Returns an
    int64 grid — the "number of 2-primitives incident on the pixel"
    that the paper's polygon-polygon blend function ``⊕`` accumulates.
    """
    cover = np.zeros((height, width), dtype=np.int64)
    for rings in polygons:
        cover += parity_fill(rings, height, width, device=device)
    return cover
