"""Textures: channelled pixel grids, the discrete canvas storage.

The prototype in the paper stores a canvas as a texture whose color
components carry the object-information triple (Section 5.1).  Here a
texture is a float64 array of shape ``(height, width, channels)`` plus
an explicit per-pixel validity mask per *channel group* — the paper's
null value ``∅`` is represented by mask bits, never by sentinel values
in the data channels.

Pixel convention: row 0 is the *bottom* row (world ``ymin``); pixel
``(r, c)`` covers the world rectangle
``[xmin + c*dx, xmin + (c+1)*dx) x [ymin + r*dy, ymin + (r+1)*dy)``
and its sample position is the pixel center.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class Texture:
    """A ``(height, width, channels)`` float64 image with validity planes.

    Parameters
    ----------
    height, width:
        Pixel grid dimensions (both >= 1).
    channels:
        Number of data channels.
    groups:
        Number of validity planes.  Each group owns
        ``channels // groups`` consecutive channels; a pixel's data in a
        group is meaningful only where the group's validity bit is set.
    """

    __slots__ = ("data", "valid")

    def __init__(
        self,
        height: int,
        width: int,
        channels: int = 4,
        groups: int = 1,
    ) -> None:
        if height < 1 or width < 1:
            raise ValueError("texture dimensions must be positive")
        if channels < 1 or groups < 1 or channels % groups != 0:
            raise ValueError(
                "channels must be a positive multiple of groups"
            )
        self.data = np.zeros((height, width, channels), dtype=np.float64)
        self.valid = np.zeros((height, width, groups), dtype=bool)

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def channels(self) -> int:
        return self.data.shape[2]

    @property
    def groups(self) -> int:
        return self.valid.shape[2]

    @property
    def channels_per_group(self) -> int:
        return self.channels // self.groups

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.data.shape  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def copy(self) -> "Texture":
        out = Texture.__new__(Texture)
        out.data = self.data.copy()
        out.valid = self.valid.copy()
        return out

    @staticmethod
    def like(other: "Texture") -> "Texture":
        """An all-null texture with the same shape as *other*."""
        return Texture(
            other.height, other.width, other.channels, other.groups
        )

    def clear(self) -> None:
        """Reset every pixel to null."""
        self.data.fill(0.0)
        self.valid.fill(False)

    def group_slice(self, group: int) -> slice:
        """Channel slice owned by validity *group*."""
        if not 0 <= group < self.groups:
            raise IndexError(f"group {group} out of range")
        step = self.channels_per_group
        return slice(group * step, (group + 1) * step)

    def group_data(self, group: int) -> np.ndarray:
        """View of the data channels owned by *group*."""
        return self.data[:, :, self.group_slice(group)]

    def group_valid(self, group: int) -> np.ndarray:
        """View of the validity plane of *group*."""
        return self.valid[:, :, group]

    def any_valid(self) -> np.ndarray:
        """Per-pixel mask: true where any group is valid (non-null pixel)."""
        return self.valid.any(axis=2)

    def nonnull_count(self) -> int:
        """Number of non-null pixels."""
        return int(self.any_valid().sum())

    def iter_groups(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(data_view, valid_view)`` for each group."""
        for g in range(self.groups):
            yield self.group_data(g), self.group_valid(g)

    # ------------------------------------------------------------------
    def live_groups(self) -> list[int]:
        """Groups with at least one valid pixel.

        Lets gather-heavy callers skip fetching channels that are null
        everywhere (e.g. a constraint canvas only populates the area
        group) — the software analogue of fetching only the texture
        components a shader actually samples.
        """
        return [g for g in range(self.groups) if self.valid[:, :, g].any()]

    def gather(
        self, rows: np.ndarray, cols: np.ndarray,
        groups: list[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Texture fetch at integer pixel coordinates.

        Returns ``(data, valid)`` arrays of shapes ``(n, channels)`` and
        ``(n, groups)``.  Out-of-range coordinates fetch null.  When
        *groups* is given, only those groups' data channels are fetched
        (the rest stay zero); validity is always fetched in full.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        in_range = (
            (rows >= 0) & (rows < self.height)
            & (cols >= 0) & (cols < self.width)
        )
        safe_r = np.where(in_range, rows, 0)
        safe_c = np.where(in_range, cols, 0)
        if groups is None:
            data = self.data[safe_r, safe_c, :]
            data[~in_range] = 0.0
        else:
            n = len(rows)
            data = np.zeros((n, self.channels), dtype=np.float64)
            for g in groups:
                sl = self.group_slice(g)
                data[:, sl] = self.data[safe_r, safe_c, sl]
            data[~in_range] = 0.0
        valid = self.valid[safe_r, safe_c, :]
        valid &= in_range[:, None]
        return data, valid

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<Texture {self.height}x{self.width}x{self.channels} "
            f"groups={self.groups} nonnull={self.nonnull_count()}>"
        )
