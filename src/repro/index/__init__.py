"""Spatial index substrate.

Classical spatial indexes (Section 8 of the paper lists them as the
standard machinery of spatial query processing).  In this reproduction
they serve two roles:

1. the *filtering stage* that the paper's evaluation assumes exists
   upstream of the refinement step it measures, and
2. index-accelerated baselines (:mod:`repro.baselines.join_baselines`)
   against which the canvas-algebra plans are compared.
"""

from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.index.quadtree import QuadTree
from repro.index.kdtree import KDTree

__all__ = ["GridIndex", "KDTree", "QuadTree", "RTree"]
