"""Uniform grid index over boxed items.

The simplest filtering structure: items are binned by the grid cells
their MBRs overlap.  Query cost is proportional to the number of cells
a query box covers plus candidate count, which is excellent for the
dense, skewed point sets the paper's workloads use.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable

import numpy as np

from repro.geometry.bbox import BoundingBox


class GridIndex:
    """A fixed-resolution uniform grid over a world window.

    Parameters
    ----------
    window:
        The world extent covered by the grid.  Items outside the window
        are clamped into the border cells, so no item is ever lost.
    nx, ny:
        Number of cells along x and y.
    """

    def __init__(self, window: BoundingBox, nx: int = 64, ny: int = 64) -> None:
        if nx < 1 or ny < 1:
            raise ValueError("grid resolution must be at least 1x1")
        self.window = window
        self.nx = int(nx)
        self.ny = int(ny)
        self._cells: dict[tuple[int, int], list[tuple[Hashable, BoundingBox]]]
        self._cells = defaultdict(list)
        self._count = 0

    # ------------------------------------------------------------------
    def _cell_range(self, box: BoundingBox) -> tuple[int, int, int, int]:
        w = self.window
        fx = self.nx / max(w.width, 1e-300)
        fy = self.ny / max(w.height, 1e-300)
        i0 = int(np.clip((box.xmin - w.xmin) * fx, 0, self.nx - 1))
        i1 = int(np.clip((box.xmax - w.xmin) * fx, 0, self.nx - 1))
        j0 = int(np.clip((box.ymin - w.ymin) * fy, 0, self.ny - 1))
        j1 = int(np.clip((box.ymax - w.ymin) * fy, 0, self.ny - 1))
        return i0, i1, j0, j1

    def insert(self, item: Hashable, box: BoundingBox) -> None:
        """Insert *item* with bounding box *box*."""
        i0, i1, j0, j1 = self._cell_range(box)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                self._cells[(i, j)].append((item, box))
        self._count += 1

    def bulk_load_points(
        self, xs: np.ndarray, ys: np.ndarray, ids: Iterable[Hashable] | None = None
    ) -> None:
        """Vectorized insertion of a point set (degenerate boxes)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        id_list = list(ids) if ids is not None else list(range(len(xs)))
        if len(id_list) != len(xs):
            raise ValueError("ids length must match point count")
        w = self.window
        fx = self.nx / max(w.width, 1e-300)
        fy = self.ny / max(w.height, 1e-300)
        ci = np.clip(((xs - w.xmin) * fx).astype(int), 0, self.nx - 1)
        cj = np.clip(((ys - w.ymin) * fy).astype(int), 0, self.ny - 1)
        for idx in range(len(xs)):
            box = BoundingBox(xs[idx], ys[idx], xs[idx], ys[idx])
            self._cells[(int(ci[idx]), int(cj[idx]))].append((id_list[idx], box))
        self._count += len(xs)

    # ------------------------------------------------------------------
    def query(self, box: BoundingBox) -> list[Hashable]:
        """All item ids whose MBR intersects *box* (deduplicated)."""
        i0, i1, j0, j1 = self._cell_range(box)
        seen: set[Hashable] = set()
        out: list[Hashable] = []
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                for item, item_box in self._cells.get((i, j), ()):
                    if item in seen:
                        continue
                    if item_box.intersects(box):
                        seen.add(item)
                        out.append(item)
        return out

    def query_point(self, x: float, y: float) -> list[Hashable]:
        """All item ids whose MBR contains ``(x, y)``."""
        return self.query(BoundingBox(x, y, x, y))

    def __len__(self) -> int:
        return self._count
