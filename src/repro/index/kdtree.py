"""A static 2D k-d tree over points.

Backs the exact kNN baseline against which the paper's concentric-circle
kNN plan (Section 4.4) is validated.
"""

from __future__ import annotations

import heapq
import math
from typing import Hashable, Sequence

import numpy as np


class _KDNode:
    __slots__ = ("x", "y", "item", "axis", "left", "right")

    def __init__(
        self, x: float, y: float, item: Hashable, axis: int
    ) -> None:
        self.x = x
        self.y = y
        self.item = item
        self.axis = axis
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None


class KDTree:
    """A balanced, build-once k-d tree for 2D nearest-neighbor queries."""

    def __init__(
        self,
        points: Sequence[tuple[float, float]] | np.ndarray,
        items: Sequence[Hashable] | None = None,
    ) -> None:
        coords = np.asarray(points, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError("points must be an (n, 2) array-like")
        ids: list[Hashable] = (
            list(items) if items is not None else list(range(len(coords)))
        )
        if len(ids) != len(coords):
            raise ValueError("items length must match point count")
        self._size = len(coords)
        #: Nodes visited by the most recent :meth:`nearest` call — the
        #: exact-distance-evaluation count the engine's kNN plan
        #: reports as ``n_exact_tests``.
        self.last_visited = 0
        records = [
            (float(coords[i, 0]), float(coords[i, 1]), ids[i])
            for i in range(len(coords))
        ]
        self._root = self._build(records, axis=0)

    def _build(
        self, records: list[tuple[float, float, Hashable]], axis: int
    ) -> _KDNode | None:
        if not records:
            return None
        records.sort(key=lambda r: r[axis])
        mid = len(records) // 2
        x, y, item = records[mid]
        node = _KDNode(x, y, item, axis)
        next_axis = 1 - axis
        node.left = self._build(records[:mid], next_axis)
        node.right = self._build(records[mid + 1 :], next_axis)
        return node

    # ------------------------------------------------------------------
    def nearest(self, x: float, y: float, k: int = 1) -> list[tuple[Hashable, float]]:
        """The *k* nearest points to ``(x, y)`` as ``(item, distance)``.

        Results are sorted by increasing distance; ties are broken
        arbitrarily (the paper assumes total order via perturbation).
        """
        if self._root is None or k < 1:
            return []
        # Max-heap of (-distance, seq, item) keeps the k best so far.
        best: list[tuple[float, int, Hashable]] = []
        counter = 0

        def visit(node: _KDNode | None) -> None:
            nonlocal counter
            if node is None:
                return
            d = math.hypot(node.x - x, node.y - y)
            counter += 1
            if len(best) < k:
                heapq.heappush(best, (-d, counter, node.item))
            elif d < -best[0][0]:
                heapq.heapreplace(best, (-d, counter, node.item))
            coord, target = (
                (node.x, x) if node.axis == 0 else (node.y, y)
            )
            near, far = (
                (node.left, node.right)
                if target <= coord
                else (node.right, node.left)
            )
            visit(near)
            plane_dist = abs(target - coord)
            if len(best) < k or plane_dist < -best[0][0]:
                visit(far)

        visit(self._root)
        self.last_visited = counter
        ordered = sorted(best, key=lambda t: -t[0])
        return [(item, -neg_d) for neg_d, _, item in ordered]

    def within_radius(
        self, x: float, y: float, radius: float
    ) -> list[tuple[Hashable, float]]:
        """All points within *radius* of ``(x, y)`` as ``(item, distance)``."""
        out: list[tuple[Hashable, float]] = []
        if self._root is None or radius < 0:
            return out

        stack: list[_KDNode | None] = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            d = math.hypot(node.x - x, node.y - y)
            if d <= radius:
                out.append((node.item, d))
            coord, target = (
                (node.x, x) if node.axis == 0 else (node.y, y)
            )
            if target - radius <= coord:
                stack.append(node.left)
            if target + radius >= coord:
                stack.append(node.right)
        out.sort(key=lambda t: t[1])
        return out

    def __len__(self) -> int:
        return self._size
