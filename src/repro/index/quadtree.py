"""Point-region quadtree.

A dynamic alternative to the STR R-tree for point data [Finkel &
Bentley'74]; used by tests as an independent filtering oracle.
"""

from __future__ import annotations

from typing import Hashable

from repro.geometry.bbox import BoundingBox


class _QuadNode:
    __slots__ = ("box", "points", "children")

    def __init__(self, box: BoundingBox) -> None:
        self.box = box
        self.points: list[tuple[float, float, Hashable]] | None = []
        self.children: list["_QuadNode"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """A PR quadtree over 2D points with a fixed world window."""

    def __init__(
        self,
        window: BoundingBox,
        capacity: int = 32,
        max_depth: int = 24,
    ) -> None:
        if capacity < 1:
            raise ValueError("leaf capacity must be at least 1")
        self.window = window
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _QuadNode(window)
        self._size = 0

    # ------------------------------------------------------------------
    def insert(self, x: float, y: float, item: Hashable) -> None:
        """Insert a point; points outside the window raise ``ValueError``."""
        if not self.window.contains_point(x, y):
            raise ValueError(f"point ({x}, {y}) outside index window")
        node = self._root
        depth = 0
        while not node.is_leaf:
            node = self._child_for(node, x, y)
            depth += 1
        assert node.points is not None
        node.points.append((x, y, item))
        self._size += 1
        if len(node.points) > self.capacity and depth < self.max_depth:
            self._split(node)

    def _child_for(self, node: _QuadNode, x: float, y: float) -> _QuadNode:
        assert node.children is not None
        cx, cy = node.box.center
        index = (1 if x > cx else 0) | (2 if y > cy else 0)
        return node.children[index]

    def _split(self, node: _QuadNode) -> None:
        b = node.box
        cx, cy = b.center
        node.children = [
            _QuadNode(BoundingBox(b.xmin, b.ymin, cx, cy)),
            _QuadNode(BoundingBox(cx, b.ymin, b.xmax, cy)),
            _QuadNode(BoundingBox(b.xmin, cy, cx, b.ymax)),
            _QuadNode(BoundingBox(cx, cy, b.xmax, b.ymax)),
        ]
        points = node.points or []
        node.points = None
        for x, y, item in points:
            child = self._child_for(node, x, y)
            assert child.points is not None
            child.points.append((x, y, item))

    # ------------------------------------------------------------------
    def query(self, box: BoundingBox) -> list[Hashable]:
        """Ids of all points falling inside *box* (boundary inclusive)."""
        out: list[Hashable] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                assert node.points is not None
                out.extend(
                    item
                    for x, y, item in node.points
                    if box.contains_point(x, y)
                )
            else:
                assert node.children is not None
                stack.extend(node.children)
        return out

    def __len__(self) -> int:
        return self._size

    @property
    def depth(self) -> int:
        """Maximum leaf depth currently in the tree."""
        best = 0
        stack = [(self._root, 0)]
        while stack:
            node, d = stack.pop()
            if node.is_leaf:
                best = max(best, d)
            else:
                assert node.children is not None
                stack.extend((c, d + 1) for c in node.children)
        return best
