"""R-tree with Sort-Tile-Recursive (STR) bulk loading.

The R-tree [Guttman'84] is the reference index for the filtering stage
of spatial selections and joins (Sections 1 and 8).  STR bulk loading
produces well-packed leaves in O(n log n) without the complexity of
dynamic splits, which is all the baselines here need — the data sets
are loaded once and queried many times.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Iterator, Sequence

from repro.geometry.bbox import BoundingBox


class _Node:
    __slots__ = ("box", "children", "entries")

    def __init__(
        self,
        box: BoundingBox,
        children: list["_Node"] | None = None,
        entries: list[tuple[Hashable, BoundingBox]] | None = None,
    ) -> None:
        self.box = box
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class RTree:
    """A static, STR bulk-loaded R-tree over ``(item, BoundingBox)`` pairs."""

    def __init__(
        self,
        items: Sequence[tuple[Hashable, BoundingBox]],
        leaf_capacity: int = 16,
        fanout: int = 16,
    ) -> None:
        if leaf_capacity < 2 or fanout < 2:
            raise ValueError("leaf capacity and fanout must be at least 2")
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self._size = len(items)
        self._root = self._build(list(items)) if items else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, items: list[tuple[Hashable, BoundingBox]]) -> _Node:
        leaves = self._str_pack_leaves(items)
        level: list[_Node] = leaves
        while len(level) > 1:
            level = self._str_pack_nodes(level)
        return level[0]

    def _str_pack_leaves(
        self, items: list[tuple[Hashable, BoundingBox]]
    ) -> list[_Node]:
        n = len(items)
        cap = self.leaf_capacity
        n_leaves = math.ceil(n / cap)
        n_slices = math.ceil(math.sqrt(n_leaves))
        items.sort(key=lambda it: it[1].center[0])
        slice_size = math.ceil(n / n_slices)
        leaves: list[_Node] = []
        for s in range(0, n, slice_size):
            strip = items[s : s + slice_size]
            strip.sort(key=lambda it: it[1].center[1])
            for k in range(0, len(strip), cap):
                chunk = strip[k : k + cap]
                box = BoundingBox.union_all([b for _, b in chunk])
                leaves.append(_Node(box, entries=chunk))
        return leaves

    def _str_pack_nodes(self, nodes: list[_Node]) -> list[_Node]:
        n = len(nodes)
        cap = self.fanout
        n_parents = math.ceil(n / cap)
        n_slices = math.ceil(math.sqrt(n_parents))
        nodes.sort(key=lambda nd: nd.box.center[0])
        slice_size = math.ceil(n / n_slices)
        parents: list[_Node] = []
        for s in range(0, n, slice_size):
            strip = nodes[s : s + slice_size]
            strip.sort(key=lambda nd: nd.box.center[1])
            for k in range(0, len(strip), cap):
                chunk = strip[k : k + cap]
                box = BoundingBox.union_all([nd.box for nd in chunk])
                parents.append(_Node(box, children=chunk))
        return parents

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, box: BoundingBox) -> list[Hashable]:
        """Ids of all items whose MBR intersects *box*.

        Subtrees whose MBR lies fully inside *box* are reported without
        per-item tests — the standard containment fast path, which
        keeps filtering cheap even for high-selectivity windows.
        """
        out: list[Hashable] = []
        if self._root is None:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if box.contains_box(node.box):
                self._collect_all(node, out)
                continue
            if node.is_leaf:
                assert node.entries is not None
                out.extend(
                    item for item, b in node.entries if b.intersects(box)
                )
            else:
                assert node.children is not None
                stack.extend(node.children)
        return out

    @staticmethod
    def _collect_all(node: _Node, out: list[Hashable]) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                assert current.entries is not None
                out.extend(item for item, _ in current.entries)
            else:
                assert current.children is not None
                stack.extend(current.children)

    def query_point(self, x: float, y: float) -> list[Hashable]:
        """Ids of all items whose MBR contains ``(x, y)``."""
        return self.query(BoundingBox(x, y, x, y))

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        distance: Callable[[Hashable], float] | None = None,
    ) -> list[tuple[Hashable, float]]:
        """The *k* items nearest to ``(x, y)`` with their distances.

        By default the MBR distance is the item distance (exact for
        point items).  Pass *distance* for exact geometry refinement;
        MBR distance is still used as the (admissible) search bound.
        """
        if self._root is None or k < 1:
            return []
        import heapq

        # Best-first search over nodes by MBR distance.
        counter = 0
        heap: list[tuple[float, int, _Node]] = [(0.0, counter, self._root)]
        results: list[tuple[float, Hashable]] = []
        while heap:
            node_dist, _, node = heapq.heappop(heap)
            if len(results) == k and node_dist > results[-1][0]:
                break
            if node.is_leaf:
                assert node.entries is not None
                for item, b in node.entries:
                    d = b.distance_to_point(x, y)
                    if distance is not None:
                        d = distance(item)
                    results.append((d, item))
                results.sort(key=lambda t: t[0])
                del results[k:]
            else:
                assert node.children is not None
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (child.box.distance_to_point(x, y), counter, child),
                    )
        return [(item, d) for d, item in results]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (0 for an empty tree, 1 for a single leaf)."""
        h = 0
        node = self._root
        while node is not None:
            h += 1
            node = None if node.is_leaf else node.children[0]  # type: ignore[index]
        return h

    def iter_leaf_boxes(self) -> Iterator[BoundingBox]:
        """Yield every leaf MBR (useful for introspection and tests)."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node.box
            else:
                assert node.children is not None
                stack.extend(node.children)
