"""Standard spatial queries (Section 4) as spec-constructing sugar.

Successor of the former ``repro.core.queries`` monolith, split by query
family.  Every public function keeps its original signature and exact
results; since PR 4 each one is a thin wrapper that builds the
equivalent declarative spec (:mod:`repro.api.specs`) and hands it to
the process-default :class:`~repro.api.session.Session` — the same
service-callable path ``python -m repro serve`` answers from.  The
session routes through :mod:`repro.engine`, which enumerates the
equivalent physical plans of Section 7 (at least two per family),
prices them with :class:`repro.core.optimizer.CostModel`, executes the
winner, serves repeated constraint rasterizations from its canvas
cache, and records an :class:`~repro.engine.executor.ExecutionReport`
per query.

Modules:

- :mod:`repro.queries.selection` — point selections (4.1), engine-routed;
- :mod:`repro.queries.geometries` — polygon/line/object selections (4.1);
- :mod:`repro.queries.join` — the three join types (4.2);
- :mod:`repro.queries.aggregate` — aggregations (4.3), engine-routed;
- :mod:`repro.queries.knn` — nearest neighbors (4.4);
- :mod:`repro.queries.voronoi` — the Voronoi stored procedure (4.5);
- :mod:`repro.queries.od` — origin-destination selection (4.6).
"""

from repro.queries.common import (
    AggregateResult,
    SelectionResult,
    SelectMode,
    build_constraint_canvas,
    default_window,
)
from repro.queries.selection import (
    distance_select,
    halfspace_select,
    multi_polygonal_select,
    polygonal_select_points,
    range_select,
)
from repro.queries.geometries import (
    polygonal_select_lines,
    polygonal_select_objects,
    polygonal_select_polygons,
)
from repro.queries.join import (
    distance_join,
    spatial_join_points_polygons,
    spatial_join_polygons_polygons,
)
from repro.queries.aggregate import aggregate_over_select, join_aggregate
from repro.queries.knn import knn
from repro.queries.voronoi import voronoi
from repro.queries.od import od_select

__all__ = [
    "AggregateResult",
    "SelectMode",
    "SelectionResult",
    "aggregate_over_select",
    "build_constraint_canvas",
    "default_window",
    "distance_join",
    "distance_select",
    "halfspace_select",
    "join_aggregate",
    "knn",
    "multi_polygonal_select",
    "od_select",
    "polygonal_select_lines",
    "polygonal_select_objects",
    "polygonal_select_points",
    "polygonal_select_polygons",
    "range_select",
    "spatial_join_points_polygons",
    "spatial_join_polygons_polygons",
    "voronoi",
]
