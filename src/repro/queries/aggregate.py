"""Aggregation queries (Figure 7 and Section 4.3) as spec sugar.

The group-by-over-join aggregation is the paper's headline optimizer
case: the exact sample-level plan (``join-then-aggregate``) and the
RasterJoin plan of Figure 8(c) compute the same logical result with
opposite scaling in point count vs polygon count.  The wrappers here
build :class:`~repro.api.specs.AggregateSpec` descriptions; the
session-backed :class:`~repro.engine.executor.QueryEngine` picks and
runs the physical plan (exact results always take the sample-level
plan — RasterJoin is approximate by design and only admissible with
``exact=False``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.api.session import default_session
from repro.api.specs import AggregateSpec, GeometryData, PointData
from repro.queries.common import AggregateResult


def aggregate_over_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygon: Polygon,
    values: np.ndarray | None = None,
    aggregate: str = "count",
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> float:
    """``SELECT COUNT(*)/SUM(A) FROM DP WHERE Location INSIDE Q`` (Fig. 7).

    Expression: ``B*[+](G[γc](M[Mp](B[⊙](CP, CQ))))`` — the
    single-polygon instance of the join-aggregation, with the constraint
    canvas drawn under id 1 so the count lands at slot ``C(1, 0)``.
    """
    spec = AggregateSpec(
        dataset=PointData(xs, ys, values=values),
        polygons=GeometryData([polygon], ids=[1]),
        aggregate=aggregate,
        exact=exact,
        window=window,
        resolution=resolution,
    )
    result = default_session().run(spec, device=device)
    return float(result.values[0])


def join_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> AggregateResult:
    """Group-by over a Type I join (Section 4.3).

    ``SELECT agg(...) FROM DP, DY WHERE Location INSIDE Geometry
    GROUP BY DY.ID`` — the engine chooses between the per-polygon
    gather plan and RasterJoin (``exact=False`` only) and executes it
    with cached constraint canvases.
    """
    spec = AggregateSpec(
        dataset=PointData(xs, ys, values=values),
        polygons=GeometryData(
            list(polygons),
            ids=list(polygon_ids) if polygon_ids is not None else None,
        ),
        aggregate=aggregate,
        exact=exact,
        window=window,
        resolution=resolution,
    )
    return default_session().run(spec, device=device)
