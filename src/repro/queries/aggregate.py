"""Aggregation queries (Figure 7 and Section 4.3) as engine-routed plans.

The group-by-over-join aggregation is the paper's headline optimizer
case: the exact sample-level plan (``join-then-aggregate``) and the
RasterJoin plan of Figure 8(c) compute the same logical result with
opposite scaling in point count vs polygon count.  The frontends here
describe the query; :class:`repro.engine.executor.QueryEngine` picks
and runs the physical plan (exact results always take the sample-level
plan — RasterJoin is approximate by design and only admissible with
``exact=False``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.engine import get_engine
from repro.queries.common import AggregateResult, default_window


def aggregate_over_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygon: Polygon,
    values: np.ndarray | None = None,
    aggregate: str = "count",
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> float:
    """``SELECT COUNT(*)/SUM(A) FROM DP WHERE Location INSIDE Q`` (Fig. 7).

    Expression: ``B*[+](G[γc](M[Mp](B[⊙](CP, CQ))))`` — the
    single-polygon instance of the join-aggregation, with the constraint
    canvas drawn under id 1 so the count lands at slot ``C(1, 0)``.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys, [polygon])
    outcome = get_engine().aggregate_points(
        xs, ys, [polygon], values=values, aggregate=aggregate,
        polygon_ids=[1], window=window, resolution=resolution,
        device=device, exact=exact,
    )
    return float(outcome.values[0])


def join_aggregate(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    values: np.ndarray | None = None,
    aggregate: str = "count",
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> AggregateResult:
    """Group-by over a Type I join (Section 4.3).

    ``SELECT agg(...) FROM DP, DY WHERE Location INSIDE Geometry
    GROUP BY DY.ID`` — the engine chooses between the per-polygon
    gather plan and RasterJoin (``exact=False`` only) and executes it
    with cached constraint canvases.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    ids = (
        list(polygon_ids) if polygon_ids is not None else list(range(len(polys)))
    )
    if window is None:
        window = default_window(xs, ys, polys)

    outcome = get_engine().aggregate_points(
        xs, ys, polys, values=values, aggregate=aggregate,
        polygon_ids=ids, window=window, resolution=resolution,
        device=device, exact=exact,
    )
    return AggregateResult(
        groups=outcome.groups, values=outcome.values, aggregate=aggregate
    )
