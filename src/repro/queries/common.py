"""Shared result containers and helpers for the query frontends.

The query modules in :mod:`repro.queries` describe queries and wrap
engine outcomes; everything they share — result dataclasses, window
inference, the constraint-canvas builder — lives here so the engine
(:mod:`repro.engine`) and the frontends never import each other's
internals in a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Canvas, Resolution
from repro.core.canvas_set import CanvasSet
from repro.engine.executor import unique_ids

SelectMode = Literal["any", "all"]


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass
class SelectionResult:
    """Outcome of a selection query.

    Attributes
    ----------
    ids:
        Sorted record ids satisfying the constraint (exact).
    n_candidates:
        Samples that survived the executed plan's filtering stage:
        raster-mask survivors *before* refinement on the canvas plans,
        final matches on the per-polygon PIP plan (which has no
        approximate stage).  Compare across runs only when ``plan``
        matches.
    n_exact_tests:
        Exact geometric tests performed (boundary refinement on the
        canvas plans; full PIP tests on the per-polygon plan).
    samples:
        The surviving canvas-set samples (for downstream composition).
        For *point* selections this is plan-independent: every physical
        plan attaches the constraint's S^3 triple.  For geometry-record
        selections only the ``canvas-blend`` plan produces raster
        samples; the ``per-record-predicate`` kernel returns ids with an
        empty sample set — compose on ``samples`` only after forcing
        the canvas plan (``force_plan=GEOM_BLEND`` through the engine)
        or checking ``plan``.
    plan:
        Name of the executed physical plan for engine-routed queries
        (``None`` for queries with a single strategy).
    """

    ids: np.ndarray
    n_candidates: int
    n_exact_tests: int
    samples: CanvasSet = field(repr=False, default_factory=CanvasSet.empty)
    plan: str | None = None

    def __len__(self) -> int:
        return len(self.ids)


@dataclass
class AggregateResult:
    """Outcome of an aggregation query: group key -> aggregate value."""

    groups: np.ndarray
    values: np.ndarray
    aggregate: str

    def as_dict(self) -> dict[int, float]:
        return {int(g): float(v) for g, v in zip(self.groups, self.values)}

    def __len__(self) -> int:
        return len(self.groups)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def default_window(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon] = (),
    margin: float = 0.01,
) -> BoundingBox:
    """The union MBR of the data and constraints, slightly expanded."""
    boxes = []
    if len(xs):
        boxes.append(
            BoundingBox(
                float(np.min(xs)), float(np.min(ys)),
                float(np.max(xs)), float(np.max(ys)),
            )
        )
    boxes.extend(p.bounds for p in polygons)
    if not boxes:
        raise ValueError("cannot infer a window from empty inputs")
    box = BoundingBox.union_all(boxes)
    pad = margin * max(box.width, box.height, 1e-12)
    return box.expand(pad)


def build_constraint_canvas(
    polygons: Sequence[Polygon],
    window: BoundingBox,
    resolution: Resolution,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """``B*[⊕]`` over the constraint canvases (Figure 8(b) left branch).

    Builds a fresh, caller-owned canvas.  Engine-routed queries use the
    memoized equivalent
    :meth:`repro.engine.executor.QueryEngine.constraint_canvas` instead.
    """
    canvas = Canvas(window, resolution, device)
    for i, polygon in enumerate(polygons, start=1):
        canvas.draw_polygon(polygon, record_id=i, accumulate_count=True)
    return canvas


#: Legacy private alias (pre-engine name used by repro.core.queries).
_unique_ids = unique_ids
