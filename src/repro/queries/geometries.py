"""Selection over polygon, polyline and heterogeneous-object data sets.

Section 4's point: the *same* blend+mask expression handles records of
any primitive dimension — only the blend function swaps the S^3 slot it
reads.  The wrappers here build :class:`~repro.api.specs.GeometrySpec`
descriptions (``kind`` pins the record-type contract) and the session
executes them: the engine prices the canvas-blend expression against a
per-record exact-predicate pass per dimension, and heterogeneous
objects decompose into per-dimension selections that each route through
the engine.

Result ids are plan-independent; ``SelectionResult.samples`` is not:
the predicate kernel has no raster stage, so it returns an empty sample
set.  Callers composing on samples should force the canvas plan
(``session.run(spec, force_plan=GEOM_BLEND)`` through the engine) or
check ``result.plan``.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.api.session import default_session
from repro.api.specs import GeometryData, GeometrySpec
from repro.queries.common import SelectionResult


def _run_geometry(
    kind: str,
    geometries: Sequence,
    query: Polygon,
    ids: Sequence[int] | None,
    window: BoundingBox | None,
    resolution: Resolution,
    device: Device,
    exact: bool,
) -> SelectionResult:
    spec = GeometrySpec(
        dataset=GeometryData(
            list(geometries), ids=list(ids) if ids is not None else None
        ),
        query=query,
        kind=kind,
        exact=exact,
        window=window,
        resolution=resolution,
    )
    return default_session().run(spec, device=device)


def polygonal_select_polygons(
    data_polygons: Sequence[Polygon],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DY WHERE Geometry INTERSECTS Q`` (Figure 6).

    The logical query is ``M[My](B[⊕](CY, CQ))``: every data-polygon
    canvas blends with the query canvas under ``⊕`` (counts add); the
    mask keeps pixels with two incident 2-primitives, and records whose
    only surviving samples are boundary-flagged get an exact
    polygon-intersects-polygon test.  The engine prices that canvas
    plan against the per-record exact predicate and runs the winner.
    """
    return _run_geometry(
        "polygons", data_polygons, query, ids, window, resolution, device,
        exact,
    )


def polygonal_select_lines(
    lines: Sequence["LineString"],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DL WHERE Geometry INTERSECTS Q`` for polylines.

    The same blend+mask expression with ``LINE_MERGE`` instead of
    ``⊙``: a line sample on a pure-interior constraint pixel proves
    intersection (supercover coverage means the line passes through
    that pixel); boundary-pixel candidates fall back to the exact
    segment-polygon test.  Plan choice (canvas vs per-record predicate)
    is the engine's.
    """
    return _run_geometry(
        "lines", lines, query, ids, window, resolution, device, exact
    )


def polygonal_select_objects(
    geometries: Sequence,
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """Selection over *heterogeneous* geometric objects (Figures 1 & 3).

    The paper's motivating claim: because every record is a canvas,
    "even if the data (restaurants) were represented as polygons
    instead of points, the same set of operations could be applied."
    This query accepts any mix of points, polylines, polygons, their
    Multi* variants and :class:`GeometryCollection` records, decomposes
    each object into its primitives (all carrying the record's id, as
    in Figure 3), and runs the *same* blend+mask expression per
    primitive dimension.  An object is selected when any of its
    primitives intersects the query polygon.
    """
    return _run_geometry(
        "objects", geometries, query, ids, window, resolution, device, exact
    )
