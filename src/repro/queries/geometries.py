"""Selection over polygon, polyline and heterogeneous-object data sets.

Section 4's point: the *same* blend+mask expression handles records of
any primitive dimension — only the blend function swaps the S^3 slot it
reads.  The frontends here describe the query; the engine prices the
canvas-blend expression against a per-record exact-predicate pass and
executes the winner (heterogeneous objects decompose into per-dimension
selections that each route through the engine).

Result ids are plan-independent; ``SelectionResult.samples`` is not:
the predicate kernel has no raster stage, so it returns an empty sample
set.  Callers composing on samples should force the canvas plan
(``engine.select_geometry_records(..., force_plan=GEOM_BLEND)``) or
check ``result.plan``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.engine import get_engine
from repro.queries.common import SelectionResult, default_window
from repro.queries.selection import polygonal_select_points


def _wrap(outcome) -> SelectionResult:
    return SelectionResult(
        ids=outcome.ids,
        n_candidates=outcome.n_candidates,
        n_exact_tests=outcome.n_exact_tests,
        samples=outcome.samples,
        plan=outcome.report.plan,
    )


def polygonal_select_polygons(
    data_polygons: Sequence[Polygon],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DY WHERE Geometry INTERSECTS Q`` (Figure 6).

    The logical query is ``M[My](B[⊕](CY, CQ))``: every data-polygon
    canvas blends with the query canvas under ``⊕`` (counts add); the
    mask keeps pixels with two incident 2-primitives, and records whose
    only surviving samples are boundary-flagged get an exact
    polygon-intersects-polygon test.  The engine prices that canvas
    plan against the per-record exact predicate and runs the winner.
    """
    polys = list(data_polygons)
    if window is None:
        all_pts_x = np.array([query.bounds.xmin, query.bounds.xmax])
        all_pts_y = np.array([query.bounds.ymin, query.bounds.ymax])
        window = default_window(all_pts_x, all_pts_y, polys + [query])

    return _wrap(get_engine().select_geometry_records(
        "polygons", polys, query, ids=ids, window=window,
        resolution=resolution, device=device, exact=exact,
    ))


def polygonal_select_lines(
    lines: Sequence["LineString"],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DL WHERE Geometry INTERSECTS Q`` for polylines.

    The same blend+mask expression with ``LINE_MERGE`` instead of
    ``⊙``: a line sample on a pure-interior constraint pixel proves
    intersection (supercover coverage means the line passes through
    that pixel); boundary-pixel candidates fall back to the exact
    segment-polygon test.  Plan choice (canvas vs per-record predicate)
    is the engine's.
    """
    line_list = list(lines)
    if window is None:
        corner_x: list[float] = [query.bounds.xmin, query.bounds.xmax]
        corner_y: list[float] = [query.bounds.ymin, query.bounds.ymax]
        for line in line_list:
            corner_x.extend([line.bounds.xmin, line.bounds.xmax])
            corner_y.extend([line.bounds.ymin, line.bounds.ymax])
        window = default_window(np.asarray(corner_x), np.asarray(corner_y))

    return _wrap(get_engine().select_geometry_records(
        "lines", line_list, query, ids=ids, window=window,
        resolution=resolution, device=device, exact=exact,
    ))


def polygonal_select_objects(
    geometries: Sequence,
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """Selection over *heterogeneous* geometric objects (Figures 1 & 3).

    The paper's motivating claim: because every record is a canvas,
    "even if the data (restaurants) were represented as polygons
    instead of points, the same set of operations could be applied."
    This query accepts any mix of points, polylines, polygons, their
    Multi* variants and :class:`GeometryCollection` records, decomposes
    each object into its primitives (all carrying the record's id, as
    in Figure 3), and runs the *same* blend+mask expression per
    primitive dimension.  An object is selected when any of its
    primitives intersects the query polygon.
    """
    from repro.geometry.primitives import (
        Geometry,
        GeometryCollection,
        LineSegment,
        LineString,
        MultiLineString,
        MultiPoint,
        MultiPolygon,
        Point,
    )

    geom_list = list(geometries)
    record_ids = list(ids) if ids is not None else list(range(len(geom_list)))
    if len(record_ids) != len(geom_list):
        raise ValueError("ids must match geometry count")

    # Decompose every object into primitives with surrogate ids.
    point_xs: list[float] = []
    point_ys: list[float] = []
    point_records: list[int] = []
    lines: list[LineString] = []
    line_records: list[int] = []
    polygons: list[Polygon] = []
    polygon_records: list[int] = []

    def decompose(geom: Geometry, rid: int) -> None:
        if isinstance(geom, Point):
            point_xs.append(geom.x)
            point_ys.append(geom.y)
            point_records.append(rid)
        elif isinstance(geom, MultiPoint):
            for x, y in geom.coords:
                point_xs.append(x)
                point_ys.append(y)
                point_records.append(rid)
        elif isinstance(geom, LineString):
            lines.append(geom)
            line_records.append(rid)
        elif isinstance(geom, LineSegment):
            lines.append(LineString([(geom.ax, geom.ay), (geom.bx, geom.by)]))
            line_records.append(rid)
        elif isinstance(geom, MultiLineString):
            for line in geom.lines:
                lines.append(line)
                line_records.append(rid)
        elif isinstance(geom, Polygon):
            polygons.append(geom)
            polygon_records.append(rid)
        elif isinstance(geom, MultiPolygon):
            for poly in geom.polygons:
                polygons.append(poly)
                polygon_records.append(rid)
        elif isinstance(geom, GeometryCollection):
            for part in geom.geometries:
                decompose(part, rid)
        else:
            raise TypeError(
                f"unsupported geometry type: {type(geom).__name__}"
            )

    for geom, rid in zip(geom_list, record_ids):
        decompose(geom, rid)

    if window is None:
        all_x = [query.bounds.xmin, query.bounds.xmax] + point_xs
        all_y = [query.bounds.ymin, query.bounds.ymax] + point_ys
        shapes: list[Polygon | LineString] = list(polygons) + list(lines)
        for shape in shapes:
            all_x.extend([shape.bounds.xmin, shape.bounds.xmax])
            all_y.extend([shape.bounds.ymin, shape.bounds.ymax])
        window = default_window(np.asarray(all_x), np.asarray(all_y))

    selected: set[int] = set()
    n_candidates = 0
    n_tests = 0

    if point_xs:
        result = polygonal_select_points(
            np.asarray(point_xs), np.asarray(point_ys), query,
            ids=np.arange(len(point_xs)), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(point_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests
    if lines:
        result = polygonal_select_lines(
            lines, query, ids=list(range(len(lines))), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(line_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests
    if polygons:
        result = polygonal_select_polygons(
            polygons, query, ids=list(range(len(polygons))), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(polygon_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests

    return SelectionResult(
        ids=np.asarray(sorted(selected), dtype=np.int64),
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
    )
