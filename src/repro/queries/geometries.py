"""Selection over polygon, polyline and heterogeneous-object data sets.

Section 4's point: the *same* blend+mask expression handles records of
any primitive dimension — only the blend function swaps the S^3 slot it
reads.  These queries run the canvas pipeline directly (their data sets
are sparse per-record canvases, for which the paper discusses no
alternative physical plan); point-primitive decomposition routes
through the engine via :func:`repro.queries.selection.polygonal_select_points`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import polygon_intersects_polygon
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core import algebra
from repro.core.blendfuncs import POLY_MERGE
from repro.core.canvas import Canvas, Resolution
from repro.core.canvas_set import CanvasSet
from repro.core.masks import mask_polygon_intersection
from repro.core.objectinfo import DIM_AREA, DIM_LINE, FIELD_COUNT
from repro.queries.common import SelectionResult, default_window
from repro.queries.selection import polygonal_select_points


def polygonal_select_polygons(
    data_polygons: Sequence[Polygon],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DY WHERE Geometry INTERSECTS Q`` (Figure 6).

    Implements ``M[My](B[⊕](CY, CQ))``: every data-polygon canvas
    blends with the query canvas under ``⊕`` (counts add); the mask
    keeps pixels with two incident 2-primitives.  Records whose only
    surviving samples are boundary-flagged get an exact
    polygon-intersects-polygon test.
    """
    polys = list(data_polygons)
    id_list = list(ids) if ids is not None else list(range(len(polys)))
    if window is None:
        all_pts_x = np.array([query.bounds.xmin, query.bounds.xmax])
        all_pts_y = np.array([query.bounds.ymin, query.bounds.ymax])
        window = default_window(all_pts_x, all_pts_y, polys + [query])

    frame = Canvas(window, resolution, device)
    data_set = CanvasSet.from_polygons(polys, frame, ids=id_list)
    query_canvas = Canvas.from_polygon(
        query, window, resolution, record_id=1, device=device
    )
    blended = algebra.blend(data_set, query_canvas, POLY_MERGE)
    masked = algebra.mask(blended, mask_polygon_intersection(2.0))
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_records

    if masked.is_empty():
        return SelectionResult(
            ids=np.empty(0, dtype=np.int64),
            n_candidates=0,
            n_exact_tests=0,
            samples=masked,
        )

    if not exact:
        return SelectionResult(
            ids=np.unique(masked.keys),
            n_candidates=n_candidates,
            n_exact_tests=0,
            samples=masked,
        )

    # A record with a surviving non-boundary sample intersects for sure
    # (both coverages are pure-interior there); boundary-only records
    # need the exact predicate.
    certain = np.unique(masked.keys[~masked.boundary])
    uncertain = np.setdiff1d(np.unique(masked.keys), certain)
    by_id = {rid: poly for rid, poly in zip(id_list, polys)}
    confirmed = [
        rid
        for rid in uncertain
        if polygon_intersects_polygon(by_id[int(rid)], query)
    ]
    n_tests = len(uncertain)
    result_ids = np.unique(
        np.concatenate([certain, np.asarray(confirmed, dtype=np.int64)])
    )
    keep = np.isin(masked.keys, result_ids)
    return SelectionResult(
        ids=result_ids,
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
        samples=masked.filter_rows(keep),
    )


def polygonal_select_lines(
    lines: Sequence["LineString"],
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``SELECT * FROM DL WHERE Geometry INTERSECTS Q`` for polylines.

    The same blend+mask expression with ``LINE_MERGE`` instead of
    ``⊙``.  A line sample on a pure-interior constraint pixel proves
    intersection (supercover coverage means the line passes through
    that pixel); boundary-pixel candidates fall back to the exact
    segment-polygon test.
    """
    from repro.geometry.predicates import linestring_intersects_polygon
    from repro.core.blendfuncs import LINE_MERGE
    from repro.core.masks import FieldCompare, NotNull

    line_list = list(lines)
    id_list = list(ids) if ids is not None else list(range(len(line_list)))
    if window is None:
        corner_x: list[float] = [query.bounds.xmin, query.bounds.xmax]
        corner_y: list[float] = [query.bounds.ymin, query.bounds.ymax]
        for line in line_list:
            corner_x.extend([line.bounds.xmin, line.bounds.xmax])
            corner_y.extend([line.bounds.ymin, line.bounds.ymax])
        window = default_window(np.asarray(corner_x), np.asarray(corner_y))

    frame = Canvas(window, resolution, device)
    data_set = CanvasSet.from_linestrings(line_list, frame, ids=id_list)
    query_canvas = Canvas.from_polygon(
        query, window, resolution, record_id=1, device=device
    )
    blended = algebra.blend(data_set, query_canvas, LINE_MERGE)
    predicate = NotNull(DIM_LINE) & FieldCompare(
        DIM_AREA, FIELD_COUNT, ">=", 1.0
    )
    masked = algebra.mask(blended, predicate)
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_records

    if masked.is_empty():
        return SelectionResult(
            ids=np.empty(0, dtype=np.int64), n_candidates=0,
            n_exact_tests=0, samples=masked,
        )
    if not exact:
        return SelectionResult(
            ids=np.unique(masked.keys), n_candidates=n_candidates,
            n_exact_tests=0, samples=masked,
        )

    certain = np.unique(masked.keys[~masked.boundary])
    uncertain = np.setdiff1d(np.unique(masked.keys), certain)
    by_id = {rid: line for rid, line in zip(id_list, line_list)}
    confirmed = [
        rid for rid in uncertain
        if linestring_intersects_polygon(by_id[int(rid)].coords, query)
    ]
    result_ids = np.unique(
        np.concatenate([certain, np.asarray(confirmed, dtype=np.int64)])
    )
    keep = np.isin(masked.keys, result_ids)
    return SelectionResult(
        ids=result_ids,
        n_candidates=n_candidates,
        n_exact_tests=len(uncertain),
        samples=masked.filter_rows(keep),
    )


def polygonal_select_objects(
    geometries: Sequence,
    query: Polygon,
    ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """Selection over *heterogeneous* geometric objects (Figures 1 & 3).

    The paper's motivating claim: because every record is a canvas,
    "even if the data (restaurants) were represented as polygons
    instead of points, the same set of operations could be applied."
    This query accepts any mix of points, polylines, polygons, their
    Multi* variants and :class:`GeometryCollection` records, decomposes
    each object into its primitives (all carrying the record's id, as
    in Figure 3), and runs the *same* blend+mask expression per
    primitive dimension.  An object is selected when any of its
    primitives intersects the query polygon.
    """
    from repro.geometry.primitives import (
        Geometry,
        GeometryCollection,
        LineSegment,
        LineString,
        MultiLineString,
        MultiPoint,
        MultiPolygon,
        Point,
    )

    geom_list = list(geometries)
    record_ids = list(ids) if ids is not None else list(range(len(geom_list)))
    if len(record_ids) != len(geom_list):
        raise ValueError("ids must match geometry count")

    # Decompose every object into primitives with surrogate ids.
    point_xs: list[float] = []
    point_ys: list[float] = []
    point_records: list[int] = []
    lines: list[LineString] = []
    line_records: list[int] = []
    polygons: list[Polygon] = []
    polygon_records: list[int] = []

    def decompose(geom: Geometry, rid: int) -> None:
        if isinstance(geom, Point):
            point_xs.append(geom.x)
            point_ys.append(geom.y)
            point_records.append(rid)
        elif isinstance(geom, MultiPoint):
            for x, y in geom.coords:
                point_xs.append(x)
                point_ys.append(y)
                point_records.append(rid)
        elif isinstance(geom, LineString):
            lines.append(geom)
            line_records.append(rid)
        elif isinstance(geom, LineSegment):
            lines.append(LineString([(geom.ax, geom.ay), (geom.bx, geom.by)]))
            line_records.append(rid)
        elif isinstance(geom, MultiLineString):
            for line in geom.lines:
                lines.append(line)
                line_records.append(rid)
        elif isinstance(geom, Polygon):
            polygons.append(geom)
            polygon_records.append(rid)
        elif isinstance(geom, MultiPolygon):
            for poly in geom.polygons:
                polygons.append(poly)
                polygon_records.append(rid)
        elif isinstance(geom, GeometryCollection):
            for part in geom.geometries:
                decompose(part, rid)
        else:
            raise TypeError(
                f"unsupported geometry type: {type(geom).__name__}"
            )

    for geom, rid in zip(geom_list, record_ids):
        decompose(geom, rid)

    if window is None:
        all_x = [query.bounds.xmin, query.bounds.xmax] + point_xs
        all_y = [query.bounds.ymin, query.bounds.ymax] + point_ys
        shapes: list[Polygon | LineString] = list(polygons) + list(lines)
        for shape in shapes:
            all_x.extend([shape.bounds.xmin, shape.bounds.xmax])
            all_y.extend([shape.bounds.ymin, shape.bounds.ymax])
        window = default_window(np.asarray(all_x), np.asarray(all_y))

    selected: set[int] = set()
    n_candidates = 0
    n_tests = 0

    if point_xs:
        result = polygonal_select_points(
            np.asarray(point_xs), np.asarray(point_ys), query,
            ids=np.arange(len(point_xs)), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(point_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests
    if lines:
        result = polygonal_select_lines(
            lines, query, ids=list(range(len(lines))), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(line_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests
    if polygons:
        result = polygonal_select_polygons(
            polygons, query, ids=list(range(len(polygons))), window=window,
            resolution=resolution, device=device, exact=exact,
        )
        selected.update(polygon_records[i] for i in result.ids)
        n_candidates += result.n_candidates
        n_tests += result.n_exact_tests

    return SelectionResult(
        ids=np.asarray(sorted(selected), dtype=np.int64),
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
    )
