"""Join queries (Section 4.2).

A join is the selection expression with the single query geometry
replaced by a *collection*: each member blends with the data canvases
in turn.  The wrappers here build :class:`~repro.api.specs.JoinSpec`
descriptions; the session expands a join into one engine-planned
selection per member, so the cost model picks the physical strategy
per member and repeated members (or repeated joins over the same
polygon set) hit the canvas cache instead of re-rasterizing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.api.session import default_session
from repro.api.specs import GeometryData, JoinSpec, PointData


def spatial_join_points_polygons(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    point_ids: np.ndarray | None = None,
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> list[tuple[int, int]]:
    """Type I join: ``DP.Location INSIDE DY.Geometry`` (Section 4.2).

    Returns exact ``(point_id, polygon_id)`` pairs, sorted.
    """
    spec = JoinSpec(
        kind="points-polygons",
        left=PointData(xs, ys, ids=point_ids),
        right=GeometryData(
            list(polygons),
            ids=list(polygon_ids) if polygon_ids is not None else None,
        ),
        exact=exact,
        window=window,
        resolution=resolution,
    )
    return default_session().run(spec, device=device)


def spatial_join_polygons_polygons(
    left: Sequence[Polygon],
    right: Sequence[Polygon],
    left_ids: Sequence[int] | None = None,
    right_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> list[tuple[int, int]]:
    """Type II join: ``DY1.Geometry INTERSECTS DY2.Geometry``."""
    spec = JoinSpec(
        kind="polygons-polygons",
        left=GeometryData(
            list(left), ids=list(left_ids) if left_ids is not None else None
        ),
        right=GeometryData(
            list(right),
            ids=list(right_ids) if right_ids is not None else None,
        ),
        exact=exact,
        window=window,
        resolution=resolution,
    )
    return default_session().run(spec, device=device)


def distance_join(
    left_xs: np.ndarray,
    left_ys: np.ndarray,
    right_xs: np.ndarray,
    right_ys: np.ndarray,
    distance: float,
    left_ids: np.ndarray | None = None,
    right_ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
) -> list[tuple[int, int]]:
    """Type III join: each RHS point becomes a circle (Section 4.2).

    The join *distance* must be positive — violations raise before
    planning.
    """
    spec = JoinSpec(
        kind="distance",
        left=PointData(left_xs, left_ys, ids=left_ids),
        right=PointData(right_xs, right_ys, ids=right_ids),
        distance=distance,
        window=window,
        resolution=resolution,
    )
    return default_session().run(spec, device=device)
