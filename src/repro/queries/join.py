"""Join queries (Section 4.2).

A join is the selection expression with the single query geometry
replaced by a *collection*: each member blends with the data canvases
in turn.  The inner per-member selections route through the engine, so
the cost model picks the physical strategy per member and repeated
members (or repeated joins over the same polygon set) hit the canvas
cache instead of re-rasterizing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.queries.common import default_window
from repro.queries.geometries import polygonal_select_polygons
from repro.queries.selection import distance_select, polygonal_select_points


def spatial_join_points_polygons(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    point_ids: np.ndarray | None = None,
    polygon_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> list[tuple[int, int]]:
    """Type I join: ``DP.Location INSIDE DY.Geometry`` (Section 4.2).

    Returns exact ``(point_id, polygon_id)`` pairs, sorted.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    polys = list(polygons)
    poly_ids = (
        list(polygon_ids) if polygon_ids is not None else list(range(len(polys)))
    )
    if window is None:
        window = default_window(xs, ys, polys)

    pairs: list[tuple[int, int]] = []
    for poly, pid in zip(polys, poly_ids):
        result = polygonal_select_points(
            xs, ys, poly, ids=point_ids,
            window=window, resolution=resolution, device=device, exact=exact,
        )
        pairs.extend((int(point_id), int(pid)) for point_id in result.ids)
    pairs.sort()
    return pairs


def spatial_join_polygons_polygons(
    left: Sequence[Polygon],
    right: Sequence[Polygon],
    left_ids: Sequence[int] | None = None,
    right_ids: Sequence[int] | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> list[tuple[int, int]]:
    """Type II join: ``DY1.Geometry INTERSECTS DY2.Geometry``."""
    lids = list(left_ids) if left_ids is not None else list(range(len(left)))
    rids = list(right_ids) if right_ids is not None else list(range(len(right)))
    if window is None:
        corners_x: list[float] = []
        corners_y: list[float] = []
        for p in list(left) + list(right):
            corners_x.extend([p.bounds.xmin, p.bounds.xmax])
            corners_y.extend([p.bounds.ymin, p.bounds.ymax])
        window = default_window(
            np.asarray(corners_x), np.asarray(corners_y)
        )
    pairs: list[tuple[int, int]] = []
    for poly, rid in zip(right, rids):
        result = polygonal_select_polygons(
            list(left), poly, ids=lids,
            window=window, resolution=resolution, device=device, exact=exact,
        )
        pairs.extend((int(lid), int(rid)) for lid in result.ids)
    pairs.sort()
    return pairs


def distance_join(
    left_xs: np.ndarray,
    left_ys: np.ndarray,
    right_xs: np.ndarray,
    right_ys: np.ndarray,
    distance: float,
    left_ids: np.ndarray | None = None,
    right_ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
) -> list[tuple[int, int]]:
    """Type III join: each RHS point becomes a circle (Section 4.2)."""
    left_xs = np.asarray(left_xs, dtype=np.float64)
    left_ys = np.asarray(left_ys, dtype=np.float64)
    right_xs = np.asarray(right_xs, dtype=np.float64)
    right_ys = np.asarray(right_ys, dtype=np.float64)
    rids = (
        np.asarray(right_ids, dtype=np.int64)
        if right_ids is not None
        else np.arange(len(right_xs), dtype=np.int64)
    )
    if window is None:
        all_x = np.concatenate([left_xs, right_xs])
        all_y = np.concatenate([left_ys, right_ys])
        window = default_window(all_x, all_y).expand(distance * 1.05)

    pairs: list[tuple[int, int]] = []
    for i in range(len(right_xs)):
        result = distance_select(
            left_xs, left_ys,
            (float(right_xs[i]), float(right_ys[i])), distance,
            ids=left_ids, window=window,
            resolution=resolution, device=device,
        )
        pairs.extend((int(point_id), int(rids[i])) for point_id in result.ids)
    pairs.sort()
    return pairs
