"""Nearest-neighbor queries (Section 4.4) as spec-constructing sugar.

kNN via concentric-circle counting: probe circles of increasing radii,
mask the count-equals-k circle to read off the radius, then reissue a
distance selection.  The wrapper builds a
:class:`~repro.api.specs.KnnSpec` and the session-backed engine prices
that canvas plan against an exact k-d tree probe and executes the
winner (both exact, so plan choice is invisible in the output — force
``canvas-distance-probes`` through the engine to see the paper's
bisection run).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.api.session import default_session
from repro.api.specs import KnnSpec, PointData
from repro.queries.common import SelectionResult


def knn(
    xs: np.ndarray,
    ys: np.ndarray,
    query_point: tuple[float, float],
    k: int,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    max_iterations: int = 64,
) -> SelectionResult:
    """k nearest neighbors (Section 4.4), cost-planned by the engine.

    ``k`` must be a positive integer no larger than the point count —
    violations raise ``ValueError`` before any planning happens.
    """
    spec = KnnSpec(
        dataset=PointData(xs, ys, ids=ids),
        query_point=query_point,
        k=k,
        window=window,
        resolution=resolution,
        max_iterations=max_iterations,
    )
    return default_session().run(spec, device=device)
