"""Nearest-neighbor queries (Section 4.4) as engine-routed plans.

kNN via concentric-circle counting: probe circles of increasing radii,
mask the count-equals-k circle to read off the radius, then reissue a
distance selection.  The frontend describes the query; the engine
prices that canvas plan against an exact k-d tree probe and executes
the winner (both exact, so plan choice is invisible in the output —
force ``canvas-distance-probes`` through the engine to see the paper's
bisection run).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.engine import get_engine
from repro.queries.common import SelectionResult, default_window


def knn(
    xs: np.ndarray,
    ys: np.ndarray,
    query_point: tuple[float, float],
    k: int,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    max_iterations: int = 64,
) -> SelectionResult:
    """k nearest neighbors (Section 4.4), cost-planned by the engine."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if k < 1 or k > len(xs):
        raise ValueError("k must be between 1 and the number of points")
    if window is None:
        window = default_window(xs, ys)
        qx, qy = query_point
        window = window.union(BoundingBox(qx, qy, qx, qy)).expand(
            0.01 * max(window.width, window.height)
        )

    outcome = get_engine().knn(
        xs, ys, query_point, k, ids=ids, window=window,
        resolution=resolution, device=device, max_iterations=max_iterations,
    )
    return SelectionResult(
        ids=outcome.ids,
        n_candidates=outcome.n_candidates,
        n_exact_tests=outcome.n_exact_tests,
        samples=outcome.samples,
        plan=outcome.report.plan,
    )
