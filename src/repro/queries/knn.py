"""Nearest-neighbor queries (Section 4.4).

kNN via concentric-circle counting: probe circles of increasing radii,
mask the count-equals-k circle to read off the radius, then reissue a
distance selection.  A conceptually infinite circle set is realized
lazily as a bisection over the radius, each probe being the full canvas
pipeline (``Circ`` + blend + mask + aggregate).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.engine import unique_ids
from repro.queries.common import SelectionResult, default_window
from repro.queries.selection import distance_select


def knn(
    xs: np.ndarray,
    ys: np.ndarray,
    query_point: tuple[float, float],
    k: int,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    max_iterations: int = 64,
) -> SelectionResult:
    """kNN via concentric-circle counting (Section 4.4)."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if k < 1 or k > len(xs):
        raise ValueError("k must be between 1 and the number of points")
    if window is None:
        window = default_window(xs, ys)
        qx, qy = query_point
        window = window.union(BoundingBox(qx, qy, qx, qy)).expand(
            0.01 * max(window.width, window.height)
        )

    def count_within(radius: float) -> int:
        result = distance_select(
            xs, ys, query_point, radius,
            ids=ids, window=window, resolution=resolution, device=device,
        )
        return len(result.ids)

    lo = 0.0
    hi = math.hypot(window.width, window.height)
    # Grow hi until at least k points are inside (window diagonal is
    # always enough since the window covers the data).
    iterations = 0
    while count_within(hi) < k and iterations < 8:
        hi *= 2.0
        iterations += 1

    result_at_hi: SelectionResult | None = None
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        result = distance_select(
            xs, ys, query_point, mid,
            ids=ids, window=window, resolution=resolution, device=device,
        )
        n = len(result.ids)
        if n == k:
            return result
        if n < k:
            lo = mid
        else:
            hi = mid
            result_at_hi = result
    # Ties or resolution floor: fall back to trimming the smallest
    # enclosing probe by exact distance (the paper's ϵ-perturbation).
    if result_at_hi is None:
        result_at_hi = distance_select(
            xs, ys, query_point, hi,
            ids=ids, window=window, resolution=resolution, device=device,
        )
    sel = result_at_hi.samples
    d = np.hypot(sel.xs - query_point[0], sel.ys - query_point[1])
    order = np.argsort(d, kind="stable")[:k]
    trimmed = sel.filter_rows(np.isin(np.arange(sel.n_samples), order))
    return SelectionResult(
        ids=unique_ids(trimmed.keys),
        n_candidates=result_at_hi.n_candidates,
        n_exact_tests=result_at_hi.n_exact_tests + sel.n_samples,
        samples=trimmed,
    )
