"""Complex queries: origin-destination double selection (Section 4.6).

The OD query composes two selections through the value-driven
geometric transform ``γd``.  The wrapper builds an
:class:`~repro.api.specs.OdSpec`; the session infers the window and
the engine prices the two-stage canvas plan of Figure 8(a) (origin
selection, ``γd`` jump, blend against the cached ``CQ2`` canvas)
against an exact per-pair PIP kernel and runs the winner.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.api.session import default_session
from repro.api.specs import OdSpec, TripData
from repro.queries.common import SelectionResult


def od_select(
    origin_xs: np.ndarray,
    origin_ys: np.ndarray,
    dest_xs: np.ndarray,
    dest_ys: np.ndarray,
    q1: Polygon,
    q2: Polygon,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``Origin INSIDE Q1 AND Destination INSIDE Q2`` (Fig. 8(a)).

    Logical expression: ``M[Mp'](B[⊙](G[γd](Corigin), CQ2))`` where
    ``Corigin`` is the origin selection and ``γd(s)`` jumps each
    surviving record from its origin to its destination.  The engine
    picks the physical plan; results are exact either way.
    """
    spec = OdSpec(
        dataset=TripData(origin_xs, origin_ys, dest_xs, dest_ys, ids=ids),
        q1=q1,
        q2=q2,
        exact=exact,
        window=window,
        resolution=resolution,
    )
    return default_session().run(spec, device=device)
