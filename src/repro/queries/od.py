"""Complex queries: origin-destination double selection (Section 4.6).

The OD query composes two selections through the value-driven
geometric transform ``γd``.  The frontend infers the window and hands
the logical query to the engine, which prices the two-stage canvas
plan of Figure 8(a) (origin selection, ``γd`` jump, blend against the
cached ``CQ2`` canvas) against an exact per-pair PIP kernel and runs
the winner.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Resolution
from repro.engine import get_engine
from repro.queries.common import SelectionResult, default_window


def od_select(
    origin_xs: np.ndarray,
    origin_ys: np.ndarray,
    dest_xs: np.ndarray,
    dest_ys: np.ndarray,
    q1: Polygon,
    q2: Polygon,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``Origin INSIDE Q1 AND Destination INSIDE Q2`` (Fig. 8(a)).

    Logical expression: ``M[Mp'](B[⊙](G[γd](Corigin), CQ2))`` where
    ``Corigin`` is the origin selection and ``γd(s)`` jumps each
    surviving record from its origin to its destination.  The engine
    picks the physical plan; results are exact either way.
    """
    origin_xs = np.asarray(origin_xs, dtype=np.float64)
    origin_ys = np.asarray(origin_ys, dtype=np.float64)
    dest_xs = np.asarray(dest_xs, dtype=np.float64)
    dest_ys = np.asarray(dest_ys, dtype=np.float64)
    if window is None:
        all_x = np.concatenate([origin_xs, dest_xs])
        all_y = np.concatenate([origin_ys, dest_ys])
        window = default_window(all_x, all_y, [q1, q2])

    outcome = get_engine().od_select(
        origin_xs, origin_ys, dest_xs, dest_ys, q1, q2, ids=ids,
        window=window, resolution=resolution, device=device, exact=exact,
    )
    return SelectionResult(
        ids=outcome.ids,
        n_candidates=outcome.n_candidates,
        n_exact_tests=outcome.n_exact_tests,
        samples=outcome.samples,
        plan=outcome.report.plan,
    )
