"""Complex queries: origin-destination double selection (Section 4.6).

The OD query composes two selections through the value-driven
geometric transform ``γd``: the origin stage is an ordinary
(engine-routed) selection, surviving records jump to their destination
coordinates, and the destination stage blends against the second
constraint canvas.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core import algebra
from repro.core.accuracy import refine_point_samples
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas, Resolution
from repro.core.canvas_set import CanvasSet
from repro.core.masks import mask_point_in_any_polygon
from repro.core.objectinfo import DIM_POINT, FIELD_ID, channel
from repro.engine import unique_ids
from repro.queries.common import SelectionResult, default_window
from repro.queries.selection import polygonal_select_points


def od_select(
    origin_xs: np.ndarray,
    origin_ys: np.ndarray,
    dest_xs: np.ndarray,
    dest_ys: np.ndarray,
    q1: Polygon,
    q2: Polygon,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """``Origin INSIDE Q1 AND Destination INSIDE Q2`` (Fig. 8(a)).

    Expression: ``M[Mp'](B[⊙](G[γd](Corigin), CQ2))`` where ``Corigin``
    is the origin selection and ``γd(s) = destination(s[0][0])`` jumps
    each surviving record from its origin to its destination.
    """
    origin_xs = np.asarray(origin_xs, dtype=np.float64)
    origin_ys = np.asarray(origin_ys, dtype=np.float64)
    dest_xs = np.asarray(dest_xs, dtype=np.float64)
    dest_ys = np.asarray(dest_ys, dtype=np.float64)
    n = len(origin_xs)
    key_ids = (
        np.asarray(ids, dtype=np.int64) if ids is not None
        else np.arange(n, dtype=np.int64)
    )
    if window is None:
        all_x = np.concatenate([origin_xs, dest_xs])
        all_y = np.concatenate([origin_ys, dest_ys])
        window = default_window(all_x, all_y, [q1, q2])

    # Stage 1: origin selection (the familiar engine-routed expression).
    origin_result = polygonal_select_points(
        origin_xs, origin_ys, q1, ids=key_ids,
        window=window, resolution=resolution, device=device, exact=exact,
    )
    surviving = origin_result.samples

    # Stage 2: γd — value-driven transform to the destination location.
    dest_x_by_id = dict(zip(key_ids.tolist(), dest_xs.tolist()))
    dest_y_by_id = dict(zip(key_ids.tolist(), dest_ys.tolist()))

    def gamma_dest(
        data: np.ndarray, valid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        rec = data[:, channel(DIM_POINT, FIELD_ID)].astype(np.int64)
        nx = np.array([dest_x_by_id[int(r)] for r in rec], dtype=np.float64)
        ny = np.array([dest_y_by_id[int(r)] for r in rec], dtype=np.float64)
        return nx, ny

    moved = algebra.geometric_transform_by_value(surviving, gamma_dest)
    assert isinstance(moved, CanvasSet)
    # Clear the stage-1 boundary flags: the destination test's
    # uncertainty depends only on Q2's pixels.
    moved.boundary[:] = False

    # Stage 3: blend with CQ2 and mask (id 2 per the paper's CQi).
    q2_canvas = Canvas.from_polygon(
        q2, window, resolution, record_id=2, device=device
    )
    blended = algebra.blend(moved, q2_canvas, PIP_MERGE)
    masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
    assert isinstance(masked, CanvasSet)
    n_candidates = masked.n_samples
    n_tests = origin_result.n_exact_tests
    if exact:
        masked, extra = refine_point_samples(masked, [q2])
        n_tests += extra
    return SelectionResult(
        ids=unique_ids(masked.keys),
        n_candidates=n_candidates,
        n_exact_tests=n_tests,
        samples=masked,
    )
