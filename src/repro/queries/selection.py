"""Point-selection queries (Section 4.1) as spec-constructing sugar.

Since PR 4 every public function here is a *wrapper*: it wraps its
arguments into the equivalent declarative spec
(:class:`repro.api.specs.SelectSpec`) and hands it to the
process-default :class:`repro.api.session.Session`, which resolves the
window exactly as these functions always did and executes through the
plan-driven engine (:mod:`repro.engine`).  Results are bit-identical
to the pre-spec implementations — the spec layer is the API now, and
these signatures are its convenience form.

Validation is eager: an empty constraint list, a non-positive radius,
or a degenerate rectangle raises
:class:`~repro.api.specs.SpecError` (a ``ValueError``) before any
planning happens.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Canvas, Resolution
from repro.api.session import default_session
from repro.api.specs import ConstraintSpec, PointData, SelectSpec
from repro.queries.common import SelectionResult, SelectMode


def _run_select(
    xs: np.ndarray,
    ys: np.ndarray,
    constraints: Sequence[ConstraintSpec],
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    mode: SelectMode = "any",
    exact: bool = True,
    constraint_canvas: Canvas | None = None,
) -> SelectionResult:
    spec = SelectSpec(
        dataset=PointData(xs, ys, ids=ids),
        constraints=tuple(constraints),
        mode=mode,
        exact=exact,
        window=window,
        resolution=resolution,
    )
    return default_session().run(
        spec, device=device, constraint_canvas=constraint_canvas
    )


def polygonal_select_points(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Polygon | Sequence[Polygon],
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    mode: SelectMode = "any",
    exact: bool = True,
    constraint_canvas: Canvas | None = None,
) -> SelectionResult:
    """``SELECT * FROM DP WHERE Location INSIDE Q`` (and Fig. 8(b)).

    The logical query is ``M[Mp'](B[⊙](CP, B*[⊕](CQ)))``; the engine
    picks the physical plan.  On the blended-canvas plan the constraint
    polygons rasterize once (served from the engine's canvas cache on
    repeats) and each point costs one texture gather; boundary-pixel
    hits are re-tested exactly unless ``exact=False`` (the paper's
    approximate mode, where texture size bounds the error).  On the
    per-polygon plan every point runs the exact crossing-count test per
    constraint.
    """
    polys = [polygons] if isinstance(polygons, Polygon) else list(polygons)
    return _run_select(
        xs, ys, [ConstraintSpec.polygon(p) for p in polys],
        ids=ids, window=window, resolution=resolution, device=device,
        mode=mode, exact=exact, constraint_canvas=constraint_canvas,
    )


def multi_polygonal_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    mode: SelectMode = "any",
    **kwargs,
) -> SelectionResult:
    """Disjunctive/conjunctive multi-polygon selection (Section 5.1)."""
    return polygonal_select_points(xs, ys, list(polygons), mode=mode, **kwargs)


def range_select(
    xs: np.ndarray,
    ys: np.ndarray,
    l1: tuple[float, float],
    l2: tuple[float, float],
    **kwargs,
) -> SelectionResult:
    """Rectangular range constraint via ``Rect[l1, l2]()`` (Section 4.1)."""
    return _run_select(xs, ys, [ConstraintSpec.rect(l1, l2)], **kwargs)


def halfspace_select(
    xs: np.ndarray,
    ys: np.ndarray,
    a: float,
    b: float,
    c: float,
    window: BoundingBox | None = None,
    **kwargs,
) -> SelectionResult:
    """One-sided range constraint via ``HS[a, b, c]()`` (Section 4.1).

    The half space is clipped to the query window, which must cover the
    data (guaranteed by the session's window inference when *window* is
    None); a clip that leaves no region selects nothing.
    """
    return _run_select(
        xs, ys, [ConstraintSpec.halfspace(a, b, c)], window=window, **kwargs
    )


def distance_select(
    xs: np.ndarray,
    ys: np.ndarray,
    center: tuple[float, float],
    radius: float,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """Distance-based selection via ``Circ[(x, y), d]()`` (Section 4.1).

    The logical query is ``M[Mp'](B[⊙](CP, Circ))``; the engine prices
    the canvas realization (disk rasterization + one gather per point,
    boundary pixels refined with the exact distance test) against the
    direct vectorized distance kernel and runs the winner — results
    are exact either way.
    """
    return _run_select(
        xs, ys, [ConstraintSpec.circle(center, radius)],
        ids=ids, window=window, resolution=resolution, device=device,
        exact=exact,
    )
