"""Point-selection queries (Section 4.1) as engine-routed plans.

Every public function here is a thin frontend: it normalizes its
inputs, infers the query window, and hands a logical description to the
plan-driven engine (:mod:`repro.engine`), which enumerates the
equivalent physical plans of Figure 8(b) — the blended-canvas algebra
expression vs the traditional per-polygon PIP pass — prices them with
the cost model, and executes the winner.  Results are exact either way
(boundary pixels are refined on the canvas plan; the PIP plan is exact
by construction), so plan choice is invisible in the output.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Canvas, Resolution
from repro.engine import get_engine
from repro.queries.common import (
    SelectionResult,
    SelectMode,
    default_window,
)


def polygonal_select_points(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Polygon | Sequence[Polygon],
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    mode: SelectMode = "any",
    exact: bool = True,
    constraint_canvas: Canvas | None = None,
) -> SelectionResult:
    """``SELECT * FROM DP WHERE Location INSIDE Q`` (and Fig. 8(b)).

    The logical query is ``M[Mp'](B[⊙](CP, B*[⊕](CQ)))``; the engine
    picks the physical plan.  On the blended-canvas plan the constraint
    polygons rasterize once (served from the engine's canvas cache on
    repeats) and each point costs one texture gather; boundary-pixel
    hits are re-tested exactly unless ``exact=False`` (the paper's
    approximate mode, where texture size bounds the error).  On the
    per-polygon plan every point runs the exact crossing-count test per
    constraint.
    """
    polys = [polygons] if isinstance(polygons, Polygon) else list(polygons)
    if not polys:
        raise ValueError("at least one constraint polygon is required")
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys, polys)

    outcome = get_engine().select_points(
        xs, ys, polys, ids=ids, window=window, resolution=resolution,
        device=device, mode=mode, exact=exact,
        constraint_canvas=constraint_canvas,
    )
    return SelectionResult(
        ids=outcome.ids,
        n_candidates=outcome.n_candidates,
        n_exact_tests=outcome.n_exact_tests,
        samples=outcome.samples,
        plan=outcome.report.plan,
    )


def multi_polygonal_select(
    xs: np.ndarray,
    ys: np.ndarray,
    polygons: Sequence[Polygon],
    mode: SelectMode = "any",
    **kwargs,
) -> SelectionResult:
    """Disjunctive/conjunctive multi-polygon selection (Section 5.1)."""
    return polygonal_select_points(xs, ys, list(polygons), mode=mode, **kwargs)


def range_select(
    xs: np.ndarray,
    ys: np.ndarray,
    l1: tuple[float, float],
    l2: tuple[float, float],
    **kwargs,
) -> SelectionResult:
    """Rectangular range constraint via ``Rect[l1, l2]()`` (Section 4.1)."""
    box = BoundingBox(
        min(l1[0], l2[0]), min(l1[1], l2[1]),
        max(l1[0], l2[0]), max(l1[1], l2[1]),
    )
    return polygonal_select_points(xs, ys, Polygon(box.corners), **kwargs)


def halfspace_select(
    xs: np.ndarray,
    ys: np.ndarray,
    a: float,
    b: float,
    c: float,
    window: BoundingBox | None = None,
    **kwargs,
) -> SelectionResult:
    """One-sided range constraint via ``HS[a, b, c]()`` (Section 4.1).

    The half space is clipped to the query window, which must cover the
    data (guaranteed by :func:`default_window` when *window* is None).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys)
    from repro.geometry.clipping import clip_polygon_halfplane

    clipped = clip_polygon_halfplane(window.corners, a, b, c)
    if len(clipped) < 3:
        return SelectionResult(
            ids=np.empty(0, dtype=np.int64), n_candidates=0, n_exact_tests=0
        )
    return polygonal_select_points(
        xs, ys, Polygon(clipped), window=window, **kwargs
    )


def distance_select(
    xs: np.ndarray,
    ys: np.ndarray,
    center: tuple[float, float],
    radius: float,
    ids: np.ndarray | None = None,
    window: BoundingBox | None = None,
    resolution: Resolution = 1024,
    device: Device = DEFAULT_DEVICE,
    exact: bool = True,
) -> SelectionResult:
    """Distance-based selection via ``Circ[(x, y), d]()`` (Section 4.1).

    The logical query is ``M[Mp'](B[⊙](CP, Circ))``; the engine prices
    the canvas realization (disk rasterization + one gather per point,
    boundary pixels refined with the exact distance test) against the
    direct vectorized distance kernel and runs the winner — results
    are exact either way.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if window is None:
        window = default_window(xs, ys)
        cx, cy = center
        window = window.union(
            BoundingBox(cx - radius, cy - radius, cx + radius, cy + radius)
        ).expand(0.01 * radius)

    outcome = get_engine().select_distance(
        xs, ys, center, radius, ids=ids, window=window,
        resolution=resolution, device=device, exact=exact,
    )
    return SelectionResult(
        ids=outcome.ids,
        n_candidates=outcome.n_candidates,
        n_exact_tests=outcome.n_exact_tests,
        samples=outcome.samples,
        plan=outcome.report.plan,
    )
