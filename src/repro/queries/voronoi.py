"""Computational geometry via the algebra: Voronoi (Section 4.5)."""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core import algebra
from repro.core.canvas import Canvas, Resolution
from repro.core.objectinfo import DIM_AREA, FIELD_COUNT, FIELD_ID, channel


def voronoi(
    points: np.ndarray,
    window: BoundingBox,
    resolution: Resolution = 512,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """Voronoi diagram via iterated Value Transform (Section 4.5).

    ``ComputeVoronoi``: starting from the empty canvas, insert one site
    at a time with ``V[f_(xi, yi)]``; ``f`` claims every pixel whose
    squared distance to the new site beats the stored one (kept in
    ``s[2][1]``, exactly as the paper's ``f`` definition stores ``d^2``).
    The result's ``s[2][0]`` is the owning site index.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    canvas = Canvas.empty(window, resolution, device)
    id_ch = channel(DIM_AREA, FIELD_ID)
    d2_ch = channel(DIM_AREA, FIELD_COUNT)

    for i in range(len(pts)):
        px, py = float(pts[i, 0]), float(pts[i, 1])

        def f(
            gx: np.ndarray, gy: np.ndarray,
            data: np.ndarray, valid: np.ndarray,
            _site: int = i, _px: float = px, _py: float = py,
        ) -> tuple[np.ndarray, np.ndarray]:
            d2 = (gx - _px) ** 2 + (gy - _py) ** 2
            out_data = data.copy()
            out_valid = valid.copy()
            was_null = ~valid[..., DIM_AREA]
            closer = d2 < data[..., d2_ch]
            claim = was_null | closer
            out_data[..., id_ch] = np.where(claim, float(_site), data[..., id_ch])
            out_data[..., d2_ch] = np.where(claim, d2, data[..., d2_ch])
            out_valid[..., DIM_AREA] = True
            return out_data, out_valid

        # The loop owns its accumulator canvas, so each site's
        # full-screen pass runs in place instead of copying the frame.
        canvas = algebra.value_transform(canvas, f, out=canvas)
        assert isinstance(canvas, Canvas)
    return canvas
