"""Computational geometry via the algebra: Voronoi (Section 4.5).

``ComputeVoronoi`` is described by a
:class:`~repro.api.specs.VoronoiSpec` and executed by the engine, which
prices the paper's iterated ``V[f]`` insertion loop against a blocked
argmin sweep (bit-identical results — same d² arithmetic and the same
first-site-wins tie rule) and records an
:class:`~repro.engine.executor.ExecutionReport` with the run's buffer
counters (the iterated plan runs every full-screen pass in place on the
one owned accumulator: zero full-texture copies).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Canvas, Resolution
from repro.api.session import default_session
from repro.api.specs import PointData, VoronoiSpec


def voronoi(
    points: np.ndarray,
    window: BoundingBox,
    resolution: Resolution = 512,
    device: Device = DEFAULT_DEVICE,
) -> Canvas:
    """Voronoi diagram via the canvas algebra (Section 4.5).

    The result's ``s[2][0]`` is the owning site index and ``s[2][1]``
    the squared distance to it (exactly the paper's ``f`` definition);
    the executed physical plan is the engine's cost-based choice.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    spec = VoronoiSpec(
        dataset=PointData(pts[:, 0], pts[:, 1]),
        window=window,
        resolution=resolution,
    )
    return default_session().run(spec, device=device)
