"""Relational interoperability (Section 7).

The paper argues the canvas and the relational tuple are *duals*: the
first element of every object-information tuple is the record id, so a
canvas result can always switch back to its tuples, and a tuple's
storage can link to its canvas.  This package provides:

- :mod:`repro.relational.table` — a minimal columnar table with
  predicates and projection;
- :mod:`repro.relational.spatial_table` — a table with geometry
  columns that creates canvases on demand and joins canvas-algebra
  results back to rows via the id duality.
"""

from repro.relational.table import Column, Table
from repro.relational.spatial_table import SpatialTable

__all__ = ["Column", "SpatialTable", "Table"]
