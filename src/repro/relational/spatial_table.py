"""Spatial tables: relational tuples with canvas duality (Section 7).

A :class:`SpatialTable` is a :class:`~repro.relational.table.Table`
whose schema includes one or more geometry columns (Definition 3: "a
spatial data set consists of one or more attributes of type geometric
object").  Canvases are created on demand — exactly the strategy of the
paper's prototype — and query results flow back as row selections via
the id stored in ``v0``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.session import default_session
from repro.api.specs import (
    ConstraintSpec,
    GeometryData,
    GeometrySpec,
    PointData,
    SelectSpec,
)
from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Geometry, Point, Polygon
from repro.gpu.device import DEFAULT_DEVICE, Device
from repro.core.canvas import Canvas, Resolution
from repro.core.canvas_set import CanvasSet
from repro.core.queries import SelectionResult
from repro.relational.table import Table


class SpatialTable(Table):
    """A columnar table with declared geometry columns.

    Geometry columns hold :class:`~repro.geometry.primitives.Geometry`
    objects; point-only columns can also be declared as coordinate
    column pairs for zero-copy canvas-set creation.
    """

    def __init__(
        self,
        columns: Mapping[str, Sequence[Any] | np.ndarray],
        geometry_columns: Sequence[str] = ("geometry",),
        row_ids: np.ndarray | None = None,
    ) -> None:
        super().__init__(columns, row_ids=row_ids)
        self.geometry_columns = list(geometry_columns)
        for name in self.geometry_columns:
            if name not in self.columns:
                raise KeyError(f"geometry column {name!r} not in table")

    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "SpatialTable":
        """Row subsetting preserves spatiality (and geometry columns),
        so relational and spatial verbs interleave freely (Section 7)."""
        base = super().take(indices)
        return SpatialTable(
            {name: col.values for name, col in base.columns.items()},
            geometry_columns=self.geometry_columns,
            row_ids=base.row_ids,
        )

    # ------------------------------------------------------------------
    def geometries(self, column: str | None = None) -> list[Geometry]:
        """The geometry objects of one geometry column."""
        name = column or self.geometry_columns[0]
        if name not in self.geometry_columns:
            raise KeyError(f"{name!r} is not a geometry column")
        return list(self.column(name))

    def geometry_bounds(self, column: str | None = None) -> BoundingBox:
        """Union MBR of a geometry column."""
        geoms = self.geometries(column)
        if not geoms:
            raise ValueError("empty geometry column")
        return BoundingBox.union_all([g.bounds for g in geoms])

    # ------------------------------------------------------------------
    # Canvas duality
    # ------------------------------------------------------------------
    def to_canvas_set(self, column: str | None = None) -> CanvasSet:
        """Per-record canvases for a *point* geometry column.

        The sample keys are the table's row ids — the ``v0`` linkage of
        Section 7.
        """
        geoms = self.geometries(column)
        xs = np.empty(len(geoms), dtype=np.float64)
        ys = np.empty(len(geoms), dtype=np.float64)
        for i, g in enumerate(geoms):
            if not isinstance(g, Point):
                raise TypeError(
                    "to_canvas_set requires a point geometry column; "
                    f"row {i} holds {type(g).__name__}"
                )
            xs[i] = g.x
            ys[i] = g.y
        return CanvasSet.from_points(xs, ys, ids=self.row_ids)

    def to_canvas(
        self,
        window: BoundingBox | None = None,
        resolution: Resolution = 512,
        column: str | None = None,
        device: Device = DEFAULT_DEVICE,
    ) -> Canvas:
        """Render the whole geometry column into one dense canvas."""
        geoms = self.geometries(column)
        if window is None:
            window = self.geometry_bounds(column).expand(
                0.01 * max(self.geometry_bounds(column).width, 1e-12)
            )
        canvas = Canvas(window, resolution, device)
        for rid, geom in zip(self.row_ids, geoms):
            canvas.draw_geometry(geom, int(rid))
        return canvas

    def from_selection(self, result: SelectionResult) -> "SpatialTable":
        """Rows named by a canvas-algebra result (tuple side of the dual)."""
        sub = self.take_row_ids(result.ids)
        return SpatialTable(
            {name: col.values for name, col in sub.columns.items()},
            geometry_columns=self.geometry_columns,
            row_ids=sub.row_ids,
        )

    # ------------------------------------------------------------------
    # SQL-like spatial verbs (the paper's example queries end-to-end)
    # ------------------------------------------------------------------
    def where_inside(
        self,
        query: Polygon,
        column: str | None = None,
        resolution: Resolution = 1024,
        device: Device = DEFAULT_DEVICE,
    ) -> "SpatialTable":
        """``SELECT * FROM self WHERE <column> INSIDE query``.

        Dispatches on the geometry type of the column: points run the
        Figure 5 plan, polygons the Figure 6 plan — the "same operators,
        different data" reuse the paper motivates with Figure 1.  The
        table emits the equivalent declarative spec
        (:class:`~repro.api.specs.SelectSpec` /
        :class:`~repro.api.specs.GeometrySpec`) and runs it through the
        process-default session, so relational verbs speak the same
        service API as every other frontend.
        """
        geoms = self.geometries(column)
        if not geoms:
            return self._empty_like()
        if isinstance(geoms[0], Point):
            xs = np.array([g.x for g in geoms])  # type: ignore[union-attr]
            ys = np.array([g.y for g in geoms])  # type: ignore[union-attr]
            spec = SelectSpec(
                dataset=PointData(xs, ys, ids=self.row_ids),
                constraints=[ConstraintSpec.polygon(query)],
                resolution=resolution,
            )
        elif isinstance(geoms[0], Polygon):
            spec = GeometrySpec(
                dataset=GeometryData(
                    [g for g in geoms if isinstance(g, Polygon)],
                    ids=self.row_ids.tolist(),
                ),
                query=query,
                kind="polygons",
                resolution=resolution,
            )
        else:
            raise TypeError(
                f"where_inside does not support {type(geoms[0]).__name__}"
            )
        result = default_session().run(spec, device=device)
        return self.from_selection(result)

    def _empty_like(self) -> "SpatialTable":
        return SpatialTable(
            {name: col.values[:0] for name, col in self.columns.items()},
            geometry_columns=self.geometry_columns,
            row_ids=self.row_ids[:0],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<SpatialTable rows={self.n_rows} columns={self.column_names} "
            f"geometry={self.geometry_columns}>"
        )
