"""A minimal columnar relational table.

Just enough of the relational model to demonstrate Section 7's duality:
typed columns, row ids, selection by vectorized predicates, projection,
and equi-joins on id columns.  NumPy arrays back numeric columns;
object arrays back everything else.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np


class Column:
    """A named, typed column."""

    def __init__(self, name: str, values: Sequence[Any] | np.ndarray) -> None:
        self.name = name
        arr = np.asarray(values)
        if arr.dtype == object or arr.dtype.kind in "US":
            self.values = np.asarray(values, dtype=object)
        else:
            self.values = arr
        if self.values.ndim != 1:
            raise ValueError("columns must be one-dimensional")

    def __len__(self) -> int:
        return len(self.values)

    def take(self, indices: np.ndarray) -> "Column":
        return Column(self.name, self.values[indices])


class Table:
    """An immutable columnar table with an implicit row-id column.

    Row ids are stable across selections: they always refer back to
    positions in the original base table, which is what lets a canvas
    result (carrying ids in ``v0``) rejoin its tuples.
    """

    def __init__(
        self,
        columns: Mapping[str, Sequence[Any] | np.ndarray],
        row_ids: np.ndarray | None = None,
    ) -> None:
        self.columns: dict[str, Column] = {
            name: Column(name, values) for name, values in columns.items()
        }
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"column lengths differ: {lengths}")
        n = lengths.pop() if lengths else 0
        self.row_ids = (
            np.asarray(row_ids, dtype=np.int64)
            if row_ids is not None
            else np.arange(n, dtype=np.int64)
        )
        if len(self.row_ids) != n:
            raise ValueError("row_ids length must match column length")

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.row_ids)

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def __len__(self) -> int:
        return self.n_rows

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise KeyError(f"no column {name!r}")
        return self.columns[name].values

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def row(self, position: int) -> dict[str, Any]:
        """One row as a mapping (by position, not row id)."""
        return {name: col.values[position] for name, col in self.columns.items()}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        for i in range(self.n_rows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[["Table"], np.ndarray]) -> "Table":
        """σ: rows where ``predicate(table)`` is true (vectorized)."""
        keep = np.asarray(predicate(self), dtype=bool)
        if keep.shape != (self.n_rows,):
            raise ValueError("predicate must return one boolean per row")
        indices = np.nonzero(keep)[0]
        return self.take(indices)

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at the given positions, preserving original row ids."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(
            {name: col.values[indices] for name, col in self.columns.items()},
            row_ids=self.row_ids[indices],
        )

    def take_row_ids(self, row_ids: np.ndarray) -> "Table":
        """Rows whose *original* row id is in *row_ids* — the
        canvas-to-tuple hop of Section 7."""
        wanted = np.asarray(row_ids, dtype=np.int64)
        mask = np.isin(self.row_ids, wanted)
        return self.take(np.nonzero(mask)[0])

    def project(self, names: Sequence[str]) -> "Table":
        """π: keep only the named columns."""
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise KeyError(f"no such columns: {missing}")
        return Table(
            {n: self.columns[n].values for n in names}, row_ids=self.row_ids
        )

    def with_column(self, name: str, values: Sequence[Any] | np.ndarray) -> "Table":
        """A copy with one column added or replaced."""
        cols = {n: c.values for n, c in self.columns.items()}
        cols[name] = np.asarray(values)
        return Table(cols, row_ids=self.row_ids)

    def equi_join(
        self, other: "Table", left_on: str, right_on: str,
        suffix: str = "_right",
    ) -> "Table":
        """Hash equi-join on two id-like columns."""
        left_keys = self.column(left_on)
        right_keys = other.column(right_on)
        buckets: dict[Any, list[int]] = {}
        for j, key in enumerate(right_keys):
            buckets.setdefault(key, []).append(j)
        li: list[int] = []
        ri: list[int] = []
        for i, key in enumerate(left_keys):
            for j in buckets.get(key, ()):
                li.append(i)
                ri.append(j)
        left_idx = np.asarray(li, dtype=np.int64)
        right_idx = np.asarray(ri, dtype=np.int64)
        cols: dict[str, np.ndarray] = {
            name: col.values[left_idx] for name, col in self.columns.items()
        }
        for name, col in other.columns.items():
            out_name = name if name not in cols else name + suffix
            cols[out_name] = col.values[right_idx]
        return Table(cols, row_ids=self.row_ids[left_idx])

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        order = np.argsort(self.column(name), kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<Table rows={self.n_rows} columns={self.column_names}>"
