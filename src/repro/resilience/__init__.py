"""Resilience layer: deadlines, admission control, memory governance.

PR 5/6 made the engine fast but *trusting*: one hostile request (a
4096² Voronoi, a builder dying mid-tile, a MemoryError inside a blend)
could pin a serve worker forever, and the three byte budgets (canvas
cache, result cache, buffer pool) were governed independently, so they
could jointly exceed any real memory limit.  This package supplies the
non-blocking local decisions that fix that:

- :mod:`repro.resilience.deadline` — per-request :class:`Deadline`
  budgets with cooperative cancellation, checked at cheap natural
  checkpoints (per tile build, per batch member, per bisection probe,
  per polygon sweep) so any request aborts within one checkpoint of
  its budget with a typed :class:`DeadlineExceeded` answered in-band;
- :mod:`repro.resilience.admission` — bounded admission for the serve
  loop with typed in-band shed responses and CostModel-backed
  pre-estimates that reject absurd work before planning;
- :mod:`repro.resilience.governor` — one process-wide
  :class:`MemoryGovernor` byte budget spanning canvas cache + result
  cache + buffer pool, with pressure-tiered degradation (shrink cache
  admission → force tiled plans → shed).

The error-code taxonomy every serve response speaks is defined here
(:data:`ERROR_CODES`) and recorded in
``docs/adr/0001-degradation-policy.md``.
"""

from repro.resilience.admission import (
    AdmissionController,
    estimate_request_cost,
)
from repro.resilience.deadline import (
    Cancelled,
    Deadline,
    DeadlineExceeded,
    ResilienceError,
    check_deadline,
)
from repro.resilience.governor import MemoryGovernor

#: The stable machine-readable ``code`` taxonomy of serve error
#: responses (see docs/adr/0001-degradation-policy.md).  Every
#: ``{"ok": false}`` line names exactly one of these.
ERROR_CODES = (
    "bad_request",   # malformed JSON / spec validation failure
    "deadline",      # the request's deadline_ms budget expired
    "cancelled",     # the request was cooperatively cancelled
    "shed",          # admission queue full / memory pressure: retry later
    "too_costly",    # pre-estimated cost exceeds the admission ceiling
    "memory",        # MemoryError while executing the request
    "worker_lost",   # a process-backend worker died and its respawned
                     # replacement died too (request not executed)
    "internal",      # anything else the request provoked
)

__all__ = [
    "AdmissionController",
    "Cancelled",
    "Deadline",
    "DeadlineExceeded",
    "ERROR_CODES",
    "MemoryGovernor",
    "ResilienceError",
    "check_deadline",
    "estimate_request_cost",
]
