"""Admission control and load shedding for the serve front.

Two cheap, local gates run before a request is allowed to consume a
worker slot:

1. **backlog shedding** — the serve loop keeps a bounded count of
   requests that are read but not yet admitted to the in-flight
   window; past :attr:`AdmissionController.max_pending` new lines are
   answered in-band with a typed shed response
   (``{"ok": false, "code": "shed", "retry_after_ms": …}``) instead of
   queueing without bound.  The :class:`~repro.resilience.governor.\
MemoryGovernor` can force the same response when the process is over
   its byte budget.
2. **cost pre-estimates** — :func:`estimate_request_cost` prices the
   request from its raw envelope (resolution² pixels × member count ×
   the CostModel's pixel-touch unit price) *before* any parsing or
   planning, so absurd work (a 4096² voronoi batch ×256) is rejected
   with ``code: "too_costly"`` for fractions of a microsecond rather
   than minutes of raster time.

Both answers are in-band JSON lines — the connection stays healthy and
the client gets a machine-readable reason plus a retry hint, matching
the coordination-free degradation posture in the ADR
(``docs/adr/0001-degradation-policy.md``).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.optimizer import CostModel

#: Resolution assumed when a request does not name one (mirrors the
#: engine-side default frame edge).
DEFAULT_RESOLUTION = 1024

#: Default bound on read-but-not-admitted requests before shedding.
DEFAULT_MAX_PENDING = 64

#: Default retry hint (ms) stamped on shed responses.
DEFAULT_RETRY_AFTER_MS = 50


def _member_count(request: Mapping[str, Any]) -> int:
    """How many frame passes the request plausibly fans out to.

    Deliberately coarse: geometry/count comes from obviously countable
    list fields only, and anything malformed contributes nothing — the
    spec layer rejects malformed requests with real messages; this
    estimator must never reject work the spec layer would accept as
    small.
    """
    members = 1
    for field in ("constraints", "polygons"):
        value = request.get(field)
        if isinstance(value, list) and value:
            members = max(members, len(value))
    for field in ("query", "left", "right", "q1", "q2"):
        value = request.get(field)
        if isinstance(value, Mapping):
            inner = value.get("polygons") or value.get("constraints")
            if isinstance(inner, list) and inner:
                members = max(members, len(inner))
    return members


def _resolution_pixels(request: Mapping[str, Any]) -> float:
    value = request.get("resolution", DEFAULT_RESOLUTION)
    if isinstance(value, Mapping):
        dims = [v for v in value.values() if isinstance(v, (int, float))]
        if len(dims) == 2 and all(v > 0 for v in dims):
            return float(dims[0]) * float(dims[1])
        return float(DEFAULT_RESOLUTION) ** 2
    if isinstance(value, (int, float)) and not isinstance(value, bool) \
            and value > 0:
        return float(value) ** 2
    return float(DEFAULT_RESOLUTION) ** 2


def estimate_request_cost(
    request: Any, cost_model: CostModel | None = None
) -> float:
    """Price a raw (unparsed) serve request in CostModel units.

    An upper-level sanity bound, not a plan estimate: the planner's own
    CostModel prices *plans* after parsing; this prices the *envelope*
    so a hostile request is refused before any work.  Malformed
    requests price as 0 — spec validation owns rejecting those with a
    real message.
    """
    model = cost_model or CostModel()
    if not isinstance(request, Mapping):
        return 0.0
    batch = request.get("batch")
    if isinstance(batch, list):
        return sum(estimate_request_cost(member, model) for member in batch)
    if "spec" not in request:
        return 0.0
    return _resolution_pixels(request) * _member_count(request) \
        * model.pixel_touch


class AdmissionController:
    """The serve loop's bounded-admission + cost-gate policy object.

    Stateless about individual requests — the serve loop owns the
    actual pending count (it already tracks its in-flight window) and
    asks this object for decisions, so the controller needs no lock
    and can be shared across serve loops.
    """

    def __init__(
        self,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
        retry_after_ms: int = DEFAULT_RETRY_AFTER_MS,
        max_cost: float | None = None,
        cost_model: CostModel | None = None,
        governor: Any = None,
    ) -> None:
        max_pending = int(max_pending)
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        retry_after_ms = int(retry_after_ms)
        if retry_after_ms < 1:
            raise ValueError("retry_after_ms must be at least 1")
        if max_cost is not None:
            max_cost = float(max_cost)
            if not max_cost > 0:
                raise ValueError("max_cost must be positive")
        self.max_pending = max_pending
        self.retry_after_ms = retry_after_ms
        self.max_cost = max_cost
        self.cost_model = cost_model or CostModel()
        self.governor = governor
        self.shed_count = 0
        self.cost_rejections = 0

    # -- decisions -------------------------------------------------------
    def overloaded(self, pending: int) -> bool:
        """Must the serve loop shed instead of queueing one more line?"""
        if pending >= self.max_pending:
            return True
        governor = self.governor
        return governor is not None and governor.should_shed()

    def shed_response(self) -> dict[str, Any]:
        """The in-band line answering a shed request."""
        self.shed_count += 1
        return {
            "ok": False,
            "code": "shed",
            "error": "server overloaded, retry later",
            "retry_after_ms": self.retry_after_ms,
        }

    def cost_precheck(self, request: Any) -> dict[str, Any] | None:
        """Reject absurd work before planning; ``None`` admits.

        Returns the in-band ``too_costly`` response when the envelope's
        pre-estimated cost exceeds ``max_cost`` (no ceiling configured
        means every request passes).
        """
        if self.max_cost is None:
            return None
        cost = estimate_request_cost(request, self.cost_model)
        if cost <= self.max_cost:
            return None
        self.cost_rejections += 1
        return {
            "ok": False,
            "code": "too_costly",
            "error": (
                f"estimated cost {cost:.0f} exceeds the admission "
                f"ceiling {self.max_cost:.0f}"
            ),
            "estimated_cost": cost,
            "max_cost": self.max_cost,
        }

    def stats(self) -> dict[str, Any]:
        return {
            "max_pending": self.max_pending,
            "retry_after_ms": self.retry_after_ms,
            "max_cost": self.max_cost,
            "shed_count": self.shed_count,
            "cost_rejections": self.cost_rejections,
        }
