"""Per-request deadlines with cooperative cancellation.

A :class:`Deadline` is a monotonic budget created at the request
boundary (``deadline_ms`` on a spec, the session default, or a direct
engine kwarg) and carried through execution in the
:class:`~repro.core.expressions.EvalContext` and the engine's loop
kwargs.  Execution never preempts anything: the budget is *checked* at
cheap natural checkpoints — one per tile build, per batch member, per
kNN bisection probe, per polygon sweep, per buffer acquisition — so a
request aborts within one checkpoint of its budget, with a typed
:class:`DeadlineExceeded` the serve loop answers in-band
(``{"ok": false, "code": "deadline", ...}``).

Cancellation is the same mechanism from the other side:
:meth:`Deadline.cancel` (any thread, or a fault-injection rule) flips
a flag that the next checkpoint turns into :class:`Cancelled`.  There
is no forced unwinding — a cancelled builder dies at its next
checkpoint, the canvas cache's single-flight seam releases its waiters
and re-elects a leader, and no partially-built entry is ever published
(entries only land after the builder returns).
"""

from __future__ import annotations

import time
from typing import Callable


class ResilienceError(RuntimeError):
    """Base of the typed, in-band-answerable resilience failures.

    ``code`` is the stable machine-readable taxonomy entry the serve
    loop copies into the response (see
    :data:`repro.resilience.ERROR_CODES`).
    """

    code = "internal"


class DeadlineExceeded(ResilienceError):
    """A request ran past its deadline budget and aborted cooperatively."""

    code = "deadline"

    def __init__(
        self,
        message: str,
        *,
        budget_ms: float | None = None,
        elapsed_ms: float | None = None,
        checkpoint: str = "",
    ) -> None:
        super().__init__(message)
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        self.checkpoint = checkpoint


class Cancelled(DeadlineExceeded):
    """The request was cancelled (cooperatively, at a checkpoint).

    A subclass of :class:`DeadlineExceeded` so every abort path — the
    budget expiring or an explicit :meth:`Deadline.cancel` — unwinds
    through the same typed family; the serve loop distinguishes the
    two by ``code``.
    """

    code = "cancelled"


class Deadline:
    """One request's monotonic time budget plus a cancellation flag.

    Cheap by construction: :meth:`check` is a flag test plus one
    ``clock()`` call, so sprinkling checkpoints through tile loops and
    polygon sweeps costs well under the 5% clean-path bar.  ``checks``
    counts every checkpoint passed (approximate under concurrent
    checkpointing — it feeds benchmarks, not correctness).

    Thread-safety: :meth:`cancel` may be called from any thread (it
    sets a single flag, atomic under the GIL); everything else is
    called by the executing request's threads.
    """

    __slots__ = ("budget_s", "checks", "_t0", "_clock", "_cancelled")

    def __init__(
        self, budget_s: float, *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        budget_s = float(budget_s)
        if not budget_s > 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = budget_s
        self.checks = 0
        self._clock = clock
        self._t0 = clock()
        self._cancelled = False

    @classmethod
    def after_ms(
        cls, ms: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(ms / 1e3, clock=clock)

    # -- state -----------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation: the next checkpoint raises."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    def remaining_s(self) -> float:
        return self.budget_s - self.elapsed_s()

    def expired(self) -> bool:
        return self._cancelled or self.remaining_s() <= 0.0

    # -- the checkpoint --------------------------------------------------
    def check(self, checkpoint: str = "") -> None:
        """Raise :class:`Cancelled`/:class:`DeadlineExceeded` when due.

        The one call every checkpoint site makes; returning normally
        means the request may proceed to its next unit of work.
        """
        self.checks += 1
        if self._cancelled:
            raise Cancelled(
                f"request cancelled at checkpoint {checkpoint!r}",
                budget_ms=self.budget_s * 1e3,
                elapsed_ms=self.elapsed_s() * 1e3,
                checkpoint=checkpoint,
            )
        elapsed = self.elapsed_s()
        if elapsed > self.budget_s:
            raise DeadlineExceeded(
                f"deadline of {self.budget_s * 1e3:.1f} ms exceeded "
                f"({elapsed * 1e3:.1f} ms elapsed) at checkpoint "
                f"{checkpoint!r}",
                budget_ms=self.budget_s * 1e3,
                elapsed_ms=elapsed * 1e3,
                checkpoint=checkpoint,
            )


def check_deadline(deadline: Deadline | None, checkpoint: str = "") -> None:
    """The ``None``-tolerant checkpoint helper loop sites call.

    The undeadlined clean path pays exactly one ``is not None`` test —
    that is the whole overhead story of this layer.
    """
    if deadline is not None:
        deadline.check(checkpoint)
