"""One process-wide byte budget across every canvas-holding component.

Before this layer, three independently-bounded LRUs (canvas cache,
result cache, buffer pool) could *jointly* exceed any real memory
limit while each stayed inside its own budget.  The
:class:`MemoryGovernor` owns one budget spanning all three and applies
**pressure-tiered degradation** instead of letting the process OOM:

====================  =================================================
tier (usage/budget)   behaviour
====================  =================================================
``ok``      < 70%     everything admits; caches grow freely
``elevated``≥ 70%     shrink cache admission: a new entry only admits
                      when it fits the remaining headroom
``critical``≥ 90%     caches stop admitting new entries; the buffer
                      pool drops released buffers instead of parking
                      them; sessions force tiled plans (bounded peak
                      frames) for specs that left ``tiling`` unset
``shed``    ≥ 100%    the serve admission controller sheds new
                      requests in-band until rebalancing frees space
====================  =================================================

After every insert the owning cache calls :meth:`rebalance`, which
evicts LRU entries from the largest consumer (result cache before
canvas cache — results are cheap to recompute relative to rasters)
until the combined usage fits the budget again, clearing the buffer
pool as the last resort.  All calls into components happen **without**
holding any governor lock, and components call the governor only
outside their own locks — there is no lock-ordering cycle.
"""

from __future__ import annotations

import threading
from typing import Any

#: Pressure-tier boundaries (fractions of the byte budget).
ELEVATED_FRACTION = 0.7
CRITICAL_FRACTION = 0.9


class MemoryGovernor:
    """One byte budget spanning canvas cache + result cache + pool.

    Components attach via :meth:`attach`; each must expose
    ``bytes_used`` (int property or 0-arg method) and, for caches,
    ``evict_lru() -> int`` (bytes freed, 0 when empty), and for pools
    ``trim() -> int``.  The governor never copies or owns data — it
    only reads usage and asks components to shrink.
    """

    def __init__(
        self,
        budget_bytes: int,
        *,
        tile_fallback: int = 8,
        elevated_fraction: float = ELEVATED_FRACTION,
        critical_fraction: float = CRITICAL_FRACTION,
    ) -> None:
        budget_bytes = int(budget_bytes)
        if budget_bytes < 1:
            raise ValueError("memory budget must be positive")
        if not 0.0 < elevated_fraction < critical_fraction <= 1.0:
            raise ValueError(
                "tier fractions must satisfy 0 < elevated < critical <= 1"
            )
        if not 2 <= tile_fallback <= 64:
            raise ValueError("tile_fallback must be between 2 and 64")
        self.budget_bytes = budget_bytes
        self.tile_fallback = tile_fallback
        self.elevated_fraction = elevated_fraction
        self.critical_fraction = critical_fraction
        self._caches: list[Any] = []   # evictable, LRU-ordered consumers
        self._pools: list[Any] = []    # trimmable consumers
        # The lock guards only the governor's own counters/lists; it is
        # never held across a call into an attached component.
        self._lock = threading.Lock()
        self._rebalances = 0
        self._forced_evictions = 0
        self._admissions_denied = 0

    # -- wiring ----------------------------------------------------------
    def attach(
        self,
        *,
        canvas_cache: Any = None,
        result_cache: Any = None,
        buffer_pool: Any = None,
    ) -> "MemoryGovernor":
        """Wire components under this budget (any subset, idempotent).

        Eviction order on pressure is attachment-independent: result
        caches shrink before canvas caches (results are cheap to
        recompute next to raster passes), pools clear last.
        """
        with self._lock:
            # result caches first in the eviction scan order
            if result_cache is not None and result_cache not in self._caches:
                self._caches.insert(0, result_cache)
            if canvas_cache is not None and canvas_cache not in self._caches:
                self._caches.append(canvas_cache)
            if buffer_pool is not None and buffer_pool not in self._pools:
                self._pools.append(buffer_pool)
        for component in (canvas_cache, result_cache, buffer_pool):
            if component is not None:
                component.governor = self
        return self

    @staticmethod
    def _bytes_of(component: Any) -> int:
        used = getattr(component, "bytes_used", 0)
        return int(used() if callable(used) else used)

    # -- pressure --------------------------------------------------------
    def usage(self) -> int:
        """Combined bytes across every attached component."""
        with self._lock:
            components = list(self._caches) + list(self._pools)
        return sum(self._bytes_of(c) for c in components)

    def pressure(self) -> float:
        return self.usage() / self.budget_bytes

    def tier(self) -> str:
        """``"ok"`` / ``"elevated"`` / ``"critical"`` / ``"shed"``."""
        fraction = self.pressure()
        if fraction >= 1.0:
            return "shed"
        if fraction >= self.critical_fraction:
            return "critical"
        if fraction >= self.elevated_fraction:
            return "elevated"
        return "ok"

    # -- tiered decisions ------------------------------------------------
    def admit(self, nbytes: int) -> bool:
        """May a cache admit a new *nbytes* entry right now?

        ``ok`` admits everything (rebalance evicts afterwards if the
        insert overshoots); ``elevated`` admits only entries that fit
        the remaining headroom; ``critical`` and above admit nothing —
        the caller still *returns* the built value, it just never
        parks in a cache.
        """
        used = self.usage()
        fraction = used / self.budget_bytes
        if fraction < self.elevated_fraction:
            return True
        if fraction < self.critical_fraction \
                and used + int(nbytes) <= self.budget_bytes:
            return True
        with self._lock:
            self._admissions_denied += 1
        return False

    def force_tiling(self) -> int | None:
        """The tile-lattice K sessions must force at critical pressure
        (``None`` below it): a K×K-sharded plan bounds its peak frame
        allocation to ~1/K² of the whole-frame plan's."""
        if self.pressure() >= self.critical_fraction:
            return self.tile_fallback
        return None

    def should_shed(self) -> bool:
        """Whether the serve front must shed new requests right now."""
        return self.pressure() >= 1.0

    # -- enforcement -----------------------------------------------------
    def rebalance(self) -> int:
        """Evict until combined usage fits the budget; bytes freed.

        Victim choice is deterministic: always the attached cache
        currently holding the most bytes (result caches win ties by
        their earlier scan position), one LRU entry at a time; pools
        are cleared only when every cache is empty.  Runs without any
        governor lock held across component calls, so concurrent
        rebalances are safe — at worst both evict, which only
        overshoots downward.
        """
        freed = 0
        with self._lock:
            caches = list(self._caches)
            pools = list(self._pools)
        while self.usage() > self.budget_bytes:
            victim = None
            victim_bytes = 0
            for cache in caches:
                used = self._bytes_of(cache)
                if used > victim_bytes:
                    victim, victim_bytes = cache, used
            step = int(victim.evict_lru()) if victim is not None else 0
            if step <= 0:
                for pool in pools:
                    step += int(pool.trim())
            if step <= 0:
                break  # nothing left to shrink: live buffers own the rest
            freed += step
            with self._lock:
                self._forced_evictions += 1
        with self._lock:
            self._rebalances += 1
        return freed

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            caches = list(self._caches)
            pools = list(self._pools)
            counters = {
                "rebalances": self._rebalances,
                "forced_evictions": self._forced_evictions,
                "admissions_denied": self._admissions_denied,
            }
        usage = sum(self._bytes_of(c) for c in caches + pools)
        return {
            "budget_bytes": self.budget_bytes,
            "usage_bytes": usage,
            "pressure": round(usage / self.budget_bytes, 4),
            "tier": self.tier(),
            "components": len(caches) + len(pools),
            **counters,
        }
