"""Deterministic test instrumentation shipped inside the package.

Lives under ``repro`` (not ``tests/``) because the injection seams are
compiled into production call sites — a disabled seam must cost one
module-global ``None`` check and nothing else.  See
:mod:`repro.testing.faults`.
"""

from repro.testing.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    inject,
    maybe_fire,
)

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "inject",
    "maybe_fire",
]
