"""Deterministic fault injection at the engine's failure seams.

The resilience battery needs to prove that the cache is never corrupt,
no waiter hangs, and results stay bit-identical after a fault — which
requires *provoking* faults exactly where real ones happen: inside a
canvas builder, inside a pool acquisition, around a serve request,
inside a tile build.  Those seams each carry one call::

    maybe_fire("cache.builder")

which is a module-global ``None`` check when no plan is active (the
production cost of the harness), and consults the installed
:class:`FaultPlan` when one is.

Determinism: a rule fires either at explicit 1-based call indices
(``at={1, 3}``) or by probability drawn from a rule-owned seeded
``random.Random`` — same plan, same workload, same thread count ⇒ the
same faults.  Counters are per-site under a single lock.

Actions:

``raise``   raise :class:`FaultInjected` (a plain ``RuntimeError`` —
            deliberately *not* a resilience-typed error, so the battery
            proves arbitrary builder failures unwind safely);
``memory``  raise ``MemoryError`` (exercises the governor/serve
            ``memory`` code path);
``delay``   sleep ``delay_s`` then continue (turns a fast site into a
            slow one so deadlines and shedding can be hit on purpose);
``cancel``  call ``target.cancel()`` on the rule's
            :class:`~repro.resilience.deadline.Deadline` and continue —
            the *next* deadline checkpoint raises ``Cancelled``,
            exactly how real cross-thread cancellation lands;
``kill``    ``os._exit(1)`` — the process dies without cleanup,
            exactly how an OOM-killed or segfaulted worker dies.  Only
            meaningful at the ``worker.*`` sites: killing the
            coordinator would kill the test.

Installation is process-global by design (the seams are reached from
worker threads the test did not create); :func:`inject` is a context
manager that restores the previous plan and refuses to nest.

Worker processes (PR 8)
-----------------------
``inject`` installs into *this* process's memory, which a spawned
worker never sees.  The process backend bridges the gap: at every
worker spawn (and respawn after a crash) it snapshots the active
plan's ``worker.*``-site rules via :func:`worker_rules` and ships them
in the worker initializer, which installs them with
:func:`install_worker_plan`.  Rules carry an optional
``spawn_generations`` filter — ``spawn_generations={1}`` fires only in
the first process spawned into a worker slot, so a test can kill the
original worker deterministically and still prove its respawned
replacement answers cleanly.  ``cancel`` rules never ship (a Deadline
target is meaningless across processes).
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "inject",
    "install_worker_plan",
    "maybe_fire",
    "worker_rules",
]

ACTIONS = ("raise", "memory", "delay", "cancel", "kill")

#: Seams compiled into the engine (documentation + typo guard).
SITES = (
    "cache.builder",   # inside CanvasCache.get_or_build, before builder()
    "pool.acquire",    # inside BufferPool.acquire_shape, before reuse/miss
    "serve.request",   # inside _answer_line, before handling the request
    "tile.build",      # inside core.tiling build_* helpers
    "worker.execute",  # inside every process-backend worker task
)


class FaultInjected(RuntimeError):
    """The error an injected ``raise`` rule throws at its seam."""


@dataclass
class FaultRule:
    """One deterministic trigger at one seam.

    Exactly one of ``at`` (1-based call indices at the site) or
    ``probability`` (seeded per-call coin) selects firing calls.
    """

    site: str
    action: str = "raise"
    at: frozenset[int] = frozenset()
    probability: float = 0.0
    seed: int = 0
    delay_s: float = 0.01
    target: Any = None           # Deadline for action == "cancel"
    max_fires: int | None = None
    #: Worker-process filter: when non-empty, the rule only ships to
    #: process-backend workers whose 1-based spawn generation (first
    #: spawn into a slot = 1, first respawn = 2, ...) is in the set.
    #: Empty = every spawn.  Ignored for in-process firing.
    spawn_generations: frozenset[int] = frozenset()
    fired: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {ACTIONS}"
            )
        if self.at and self.probability:
            raise ValueError("give either call indices or a probability")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.action == "cancel" and self.target is None:
            raise ValueError("a cancel rule needs a Deadline target")
        if self.action == "kill" and not self.site.startswith("worker."):
            raise ValueError(
                "kill rules apply to worker.* sites only — at any other "
                "site the process being killed is the caller itself"
            )
        self.at = frozenset(int(i) for i in self.at)
        if any(i < 1 for i in self.at):
            raise ValueError("call indices are 1-based")
        self.spawn_generations = frozenset(
            int(i) for i in self.spawn_generations
        )
        if any(i < 1 for i in self.spawn_generations):
            raise ValueError("spawn generations are 1-based")
        self._rng = random.Random(self.seed)

    def should_fire(self, call_index: int) -> bool:
        if self.max_fires is not None and self.fired >= self.max_fires:
            return False
        if self.at:
            return call_index in self.at
        if self.probability:
            return self._rng.random() < self.probability
        return False

    def fire(self) -> None:
        self.fired += 1
        if self.action == "raise":
            raise FaultInjected(
                f"injected fault at {self.site} (fire #{self.fired})"
            )
        if self.action == "memory":
            raise MemoryError(
                f"injected memory pressure at {self.site}"
            )
        if self.action == "cancel":
            self.target.cancel()
            return
        if self.action == "kill":
            # A real worker death: no cleanup, no exception, no exit
            # handlers — the coordinator sees a broken pool, exactly
            # like an OOM kill.
            os._exit(1)
        time.sleep(self.delay_s)  # action == "delay"


class FaultPlan:
    """A set of rules plus per-site call counters.

    The counters make index-based rules deterministic for serial
    workloads and are the battery's observability hook
    (:meth:`calls`) for parallel ones.
    """

    def __init__(self, *rules: FaultRule) -> None:
        self.rules = list(rules)
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}

    def add(self, rule: FaultRule) -> "FaultPlan":
        with self._lock:
            self.rules.append(rule)
        return self

    def calls(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    def fire(self, site: str) -> None:
        with self._lock:
            index = self._calls.get(site, 0) + 1
            self._calls[site] = index
            due = [r for r in self.rules
                   if r.site == site and r.should_fire(index)]
        # Actions run outside the lock: delay must not serialise other
        # sites, and raise must not leave the lock held.
        for rule in due:
            rule.fire()


_active: FaultPlan | None = None
_install_lock = threading.Lock()


def worker_rules(spawn_generation: int) -> list[FaultRule]:
    """Snapshot the active plan's worker-site rules for one spawn.

    Called by the process backend at worker (re)spawn time.  Returns
    fresh rule copies (fire counters and RNG state reset — each worker
    process counts its own calls), filtered to ``worker.*`` sites, to
    rules whose ``spawn_generations`` admit this spawn, and to actions
    that make sense across a process boundary (``cancel`` targets a
    coordinator-side Deadline object, so it never ships).
    """
    plan = _active
    if plan is None:
        return []
    shipped = []
    for rule in plan.rules:
        if not rule.site.startswith("worker."):
            continue
        if rule.action == "cancel":
            continue
        if rule.spawn_generations and (
            spawn_generation not in rule.spawn_generations
        ):
            continue
        shipped.append(FaultRule(
            site=rule.site, action=rule.action, at=rule.at,
            probability=rule.probability, seed=rule.seed,
            delay_s=rule.delay_s, max_fires=rule.max_fires,
            spawn_generations=rule.spawn_generations,
        ))
    return shipped


def install_worker_plan(rules: list[FaultRule]) -> None:
    """Install shipped rules inside a worker process (initializer hook).

    Not a context manager: a worker's plan lives for the process's
    lifetime, and the coordinator controls it by respawning with a new
    snapshot.  An empty list clears the plan.
    """
    global _active
    with _install_lock:
        _active = FaultPlan(*rules) if rules else None


def maybe_fire(site: str) -> None:
    """The seam call.  One global ``None`` check when no plan is active."""
    plan = _active
    if plan is not None:
        plan.fire(site)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install *plan* process-wide for the duration of the block.

    Refuses to nest: overlapping plans would make firing order depend
    on test ordering, which is exactly the nondeterminism this module
    exists to remove.
    """
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a FaultPlan is already installed")
        _active = plan
    try:
        yield plan
    finally:
        with _install_lock:
            _active = None
