"""Shared utilities: timing harness and small statistics helpers."""

from repro.utils.timing import Timer, benchmark_callable

__all__ = ["Timer", "benchmark_callable"]
