"""Wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class BenchResult:
    """Repeated-measurement summary for one benchmark target."""

    name: str
    times: list[float] = field(default_factory=list)
    value: Any = None

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    def speedup_over(self, other: "BenchResult") -> float:
        """``other.median / self.median`` — how much faster *self* is."""
        if self.median == 0.0:
            return float("inf")
        return other.median / self.median


def benchmark_callable(
    name: str,
    fn: Callable[[], Any],
    repeats: int = 3,
    warmup: int = 0,
) -> BenchResult:
    """Time *fn* a few times and keep its last return value."""
    for _ in range(warmup):
        fn()
    result = BenchResult(name=name)
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result.value = fn()
        result.times.append(time.perf_counter() - start)
    return result
