"""Static-analyzer (repro-lint) test battery — package so ``test_cli``
does not collide with the top-level CLI suite."""
