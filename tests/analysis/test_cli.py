"""The repro-lint CLI: formats, rule selection, stable exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.__main__ import main

CLEAN = "X = 1\n"

VIOLATING = textwrap.dedent("""
    from repro.engine import executor
""").lstrip("\n")


@pytest.fixture
def tree(tmp_path):
    """A mini source tree with one clean and one violating module."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "fine.py").write_text(CLEAN)
    (pkg / "bad.py").write_text(VIOLATING)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main([str(tree / "repro" / "core" / "fine.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        assert main([str(tree)]) == 1
        out = capsys.readouterr().out
        assert "layering" in out
        assert "repro-lint: 1 finding" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--rules", "no-such-rule", "src"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_empty_rule_selection_exits_two(self, capsys):
        assert main(["--rules", ",", "src"]) == 2

    def test_no_paths_anywhere_exits_two(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.chdir(tmp_path)
        assert main([]) == 2

    def test_syntax_error_fails_the_gate_not_the_tool(self, tmp_path,
                                                      capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        assert main([str(bad)]) == 1
        assert "parse-error" in capsys.readouterr().out


class TestFormats:
    def test_json_output_is_machine_readable(self, tree, capsys):
        assert main(["--format", "json", str(tree)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files_checked"] == 2
        [finding] = payload["findings"]
        assert finding["rule"] == "layering"
        assert finding["line"] == 1
        assert finding["severity"] == "error"

    def test_json_clean_shape(self, tree, capsys):
        assert main(["--format", "json",
                     str(tree / "repro" / "core" / "fine.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"ok": True, "files_checked": 1, "findings": []}

    def test_text_findings_are_path_line_col_anchored(self, tree, capsys):
        main([str(tree)])
        first = capsys.readouterr().out.splitlines()[0]
        assert first.startswith(str(tree / "repro" / "core" / "bad.py"))
        assert ":1:0: layering [error]" in first


class TestRuleSelection:
    def test_rules_flag_restricts_the_run(self, tree, capsys):
        # The violating module only breaks layering; selecting another
        # rule must come back clean.
        assert main(["--rules", "cached-out", str(tree)]) == 0

    def test_list_rules_names_all_seven(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("layering", "cached-out", "lock-discipline",
                        "error-envelope", "shm-lifecycle",
                        "deadline-checkpoint", "spec-digest"):
            assert rule_id in out
        assert "repro-lint: disable=" in out
