"""Analyzer framework: pragmas, comment extraction, registry, naming.

These tests pin the *mechanics* every rule relies on — if pragma
parsing or module naming drifts, every per-rule fixture test below it
becomes meaningless, so the framework gets its own contract tests.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import all_rules, analyze_source, get_rule
from repro.analysis.base import (
    extract_comments,
    module_name_for,
    parse_pragmas,
)
from repro.analysis.runner import load_module


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


EXPECTED_RULE_IDS = [
    "cached-out",
    "deadline-checkpoint",
    "error-envelope",
    "layering",
    "lock-discipline",
    "shm-lifecycle",
    "spec-digest",
]


class TestRegistry:
    def test_all_seven_rules_registered_in_stable_order(self):
        assert [rule.id for rule in all_rules()] == EXPECTED_RULE_IDS

    def test_every_rule_states_its_invariant(self):
        for rule in all_rules():
            assert rule.invariant, f"{rule.id} has no invariant line"
            assert rule.severity in ("error", "warning")

    def test_unknown_rule_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="layering"):
            get_rule("no-such-rule")


class TestModuleNaming:
    def test_src_layout_resolves(self):
        assert module_name_for("src/repro/engine/cache.py") == \
            "repro.engine.cache"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/api/__init__.py") == "repro.api"

    def test_fixture_staging_dir_resolves(self):
        # The seeded-violation battery stages copies under tmp/repro/…;
        # the layering matrix must still see their dotted names.
        assert module_name_for("/tmp/x7/repro/core/bad.py") == \
            "repro.core.bad"

    def test_paths_outside_repro_have_no_module(self):
        assert module_name_for("tests/engine/test_cache.py") is None


class TestCommentExtraction:
    def test_docstrings_do_not_count_as_comments(self):
        source = src('''
            """Docs showing # deadline-seam: example syntax."""
            x = 1  # real comment
        ''')
        comments = extract_comments(source, source.splitlines())
        assert list(comments) == [2]
        assert comments[2] == "# real comment"

    def test_string_literal_pragmas_are_inert(self):
        source = src('''
            BAD = "x  # repro-lint: disable=layering -- not a comment"
        ''')
        comments = extract_comments(source, source.splitlines())
        pragmas = parse_pragmas(comments, source.splitlines())
        assert pragmas == []


class TestPragmas:
    def test_trailing_pragma_suppresses_its_line_only(self):
        module = load_module("x.py", src("""
            import threading


            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def peek(self):
                    return self._n  # repro-lint: disable=lock-discipline -- monotonic read
        """))
        assert module.disabled_rules(14) == {"lock-discipline"}
        assert module.disabled_rules(13) == set()
        assert module.disabled_rules(15) == set()

    def test_standalone_pragma_covers_the_next_line(self):
        module = load_module("x.py", src("""
            # repro-lint: disable=layering -- legacy shim
            import os
        """))
        assert module.disabled_rules(2) == {"layering"}

    def test_multi_rule_pragma(self):
        module = load_module("x.py", src("""
            x = 1  # repro-lint: disable=layering, cached-out -- both apply here
        """))
        assert module.disabled_rules(1) == {"layering", "cached-out"}

    def test_bare_pragma_never_suppresses_and_is_reported(self):
        findings = analyze_source(src("""
            import os  # repro-lint: disable=layering
        """))
        assert [f.rule for f in findings] == ["lint-pragma"]
        assert "without justification" in findings[0].message

    def test_unknown_rule_in_pragma_is_reported(self):
        findings = analyze_source(src("""
            import os  # repro-lint: disable=made-up-rule -- trust me
        """))
        assert [f.rule for f in findings] == ["lint-pragma"]
        assert "made-up-rule" in findings[0].message

    def test_lint_pragma_findings_cannot_be_self_suppressed(self):
        # A pragma trying to allowlist the pragma police is still
        # reported — the allowlist stays honest.
        findings = analyze_source(src("""
            import os  # repro-lint: disable=layering,lint-pragma
        """))
        assert any(f.rule == "lint-pragma" for f in findings)
