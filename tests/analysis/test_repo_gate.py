"""The gate itself: the repo passes, and seeded violations do not.

Two meta-tests keep the analyzer honest in both directions.  The
clean-repo test is what CI enforces (exit 0 over src+tests, through
the same CLI CI invokes).  The seeded battery stages scratch copies
of *real* repo modules, injects one violation each of the taint,
lock-discipline and error-envelope rules, and asserts every seed is
caught at its exact line — proof the rules bite production-shaped
code, not just hand-rolled fixtures.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRepoIsClean:
    def test_cli_gate_over_src_and_tests_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "tests"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, (
            f"repro-lint gate failed:\n{result.stdout}{result.stderr}"
        )
        assert "clean" in result.stdout


CACHED_OUT_SEED = '''

def _seeded_cached_out_violation(cache, key, blend, other):
    entry = cache.get_or_build(key, list)
    blend(other, out=entry)
'''

LOCK_SEED = '''

class _SeededRacyCounter:
    def __init__(self):
        import threading
        self._lock = threading.Lock()
        self._races = 0

    def bump(self):
        with self._lock:
            self._races += 1

    def peek(self):
        return self._races
'''

ENVELOPE_SEED = '''

def _seeded_bare_envelope(exc):
    return {"ok": False, "error": str(exc)}
'''


def stage(tmp_path: Path, rel: str, seed: str) -> Path:
    """Copy a real repo module under tmp/repro/… and append *seed*."""
    source = REPO_ROOT / "src" / rel
    target = tmp_path / Path(rel)
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(source, target)
    if seed:
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(seed)
    return target


class TestSeededViolations:
    def test_unseeded_copies_stay_clean(self, tmp_path):
        for rel in ("repro/engine/cache.py", "repro/api/serve.py",
                    "repro/api/shm.py"):
            stage(tmp_path, rel, "")
        findings, files = analyze_paths([str(tmp_path)])
        assert files == 3
        assert findings == []

    def test_each_seed_is_caught_at_its_line(self, tmp_path):
        staged = {
            "cached-out": stage(tmp_path, "repro/engine/cache.py",
                                CACHED_OUT_SEED),
            "lock-discipline": stage(tmp_path, "repro/api/shm.py",
                                     LOCK_SEED),
            "error-envelope": stage(tmp_path, "repro/api/serve.py",
                                    ENVELOPE_SEED),
        }
        findings, _ = analyze_paths([str(tmp_path)])
        by_rule = {finding.rule: finding for finding in findings}
        assert set(by_rule) == set(staged), (
            f"expected exactly the three seeded rules, got: "
            f"{[f.render() for f in findings]}"
        )
        for rule_id, path in staged.items():
            finding = by_rule[rule_id]
            assert finding.path == str(path)
            # Anchored inside the appended seed, not the pristine code.
            pristine_len = len(
                (REPO_ROOT / "src" / path.relative_to(tmp_path))
                .read_text().splitlines()
            )
            seeded_len = len(path.read_text().splitlines())
            assert pristine_len < finding.line <= seeded_len, (
                f"{rule_id} anchored at {finding.line}, expected within "
                f"the seed ({pristine_len}..{seeded_len})"
            )
