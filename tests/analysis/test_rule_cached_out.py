"""Rule fixtures: ``cached-out`` — cache-entry taint into out=/in-place."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule

RULES = [get_rule("cached-out")]


def findings(source: str):
    return analyze_source(textwrap.dedent(source).lstrip("\n"),
                          "src/repro/engine/x.py", RULES)


class TestFires:
    def test_tainted_name_reaches_out_keyword(self):
        out = findings("""
            def build(cache, key, blend, other):
                entry = cache.get_or_build(key, list)
                blend(other, out=entry)
        """)
        assert len(out) == 1
        assert "out=" in out[0].message

    def test_inline_getter_as_out_needs_no_name(self):
        out = findings("""
            def build(cache, key, blend, other):
                blend(other, out=cache.get_or_build(key, list))
        """)
        assert len(out) == 1

    def test_augassign_on_tainted(self):
        out = findings("""
            def bump(engine, polys, window):
                canvas = engine.constraint_canvas(polys, window, 128)
                canvas += 1
        """)
        assert len(out) == 1
        assert "in-place" in out[0].message

    def test_item_assignment_through_attribute_chain(self):
        out = findings("""
            def poke(cache, key):
                entry = cache.get_or_build(key, list)
                entry.texture.data[0, 0, 0] = 1.0
        """)
        assert len(out) == 1
        assert "item assignment" in out[0].message

    def test_taint_propagates_through_reassignment(self):
        out = findings("""
            def chain(cache, key, blend, other):
                entry = cache.get_or_build(key, list)
                alias = entry
                view = alias.texture
                blend(other, out=view)
        """)
        assert len(out) == 1


class TestSilent:
    def test_copy_launders_taint(self):
        assert findings("""
            def build(cache, key, blend, other):
                entry = cache.get_or_build(key, list)
                fresh = entry.copy()
                blend(other, out=fresh)
                fresh[0] = 1.0
        """) == []

    def test_untainted_out_is_fine(self):
        assert findings("""
            def build(blend, a, b, scratch):
                blend(a, b, out=scratch)
        """) == []

    def test_nested_function_not_double_reported(self):
        out = findings("""
            def outer(cache, key, blend):
                def inner():
                    entry = cache.get_or_build(key, list)
                    blend(entry, out=entry)
                return inner
        """)
        assert len(out) == 1


class TestAllowlisted:
    def test_standalone_pragma_suppresses_the_sink(self):
        assert findings("""
            def poke(cache, key):
                entry = cache.get_or_build(key, list)
                # repro-lint: disable=cached-out -- test fixture mutates deliberately
                entry.texture.data[0] = 1.0
        """) == []
