"""Rule fixtures: ``deadline-checkpoint`` — annotated seams checkpoint."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule

RULES = [get_rule("deadline-checkpoint")]


def findings(source: str):
    return analyze_source(textwrap.dedent(source).lstrip("\n"),
                          "src/repro/engine/x.py", RULES)


class TestFires:
    def test_annotated_loop_without_checkpoint(self):
        out = findings("""
            def run(tiles, work):
                # deadline-seam: tile-build
                for tile in tiles:
                    work(tile)
        """)
        assert len(out) == 1
        assert "tile-build" in out[0].message
        assert "check_deadline" in out[0].message

    def test_dangling_annotation_with_no_loop(self):
        out = findings("""
            def run(tiles, work):
                # deadline-seam: tile-build
                total = sum(work(tile) for tile in tiles)
                return total
        """)
        assert len(out) == 1
        assert "moved or removed" in out[0].message


class TestSilent:
    def test_check_deadline_per_iteration(self):
        assert findings("""
            def run(tiles, work, deadline, check_deadline):
                # deadline-seam: tile-build
                for tile in tiles:
                    check_deadline(deadline, "tile-build")
                    work(tile)
        """) == []

    def test_method_form_deadline_check(self):
        assert findings("""
            def run(tiles, work, deadline):
                # deadline-seam: tile-build
                while tiles:
                    deadline.check("tile-build")
                    work(tiles.pop())
        """) == []

    def test_trailing_annotation_on_the_loop_line(self):
        assert findings("""
            def run(tiles, work, deadline, check_deadline):
                for tile in tiles:  # deadline-seam: tile-build
                    check_deadline(deadline, "tile-build")
                    work(tile)
        """) == []

    def test_unannotated_loops_are_out_of_scope(self):
        # Which loops are seams is a policy decision made in the diff;
        # the rule only polices declared seams.
        assert findings("""
            def run(tiles, work):
                for tile in tiles:
                    work(tile)
        """) == []

    def test_docstring_examples_do_not_activate(self):
        assert findings('''
            def run(tiles, work):
                """Each seam is annotated::

                    # deadline-seam: tile-build
                    for tile in tiles: ...
                """
                return [work(t) for t in tiles]
        ''') == []


class TestAllowlisted:
    def test_pragma_on_the_flagged_loop(self):
        assert findings("""
            def run(tiles, work):
                # repro-lint: disable=deadline-checkpoint -- checkpoint lives inside work()
                for tile in tiles:  # deadline-seam: tile-build
                    work(tile)
        """) == []
