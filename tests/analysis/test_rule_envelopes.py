"""Rule fixtures: ``error-envelope`` — the serve error taxonomy.

Includes the mirror meta-test: the rule carries its own copy of
ERROR_CODES (the analyzer must not import the code it inspects), and
this is where a drifted copy fails the build.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule
from repro.analysis.rules.envelopes import ERROR_CODES as MIRROR
from repro.resilience import ERROR_CODES

RULES = [get_rule("error-envelope")]


def findings(source: str, path: str = "src/repro/api/serve.py"):
    return analyze_source(textwrap.dedent(source).lstrip("\n"), path, RULES)


def test_mirrored_taxonomy_matches_the_canonical_one():
    assert tuple(MIRROR) == tuple(ERROR_CODES)


class TestFires:
    def test_envelope_without_code_key(self):
        out = findings("""
            def answer(exc):
                return {"ok": False, "error": str(exc)}
        """)
        assert len(out) == 1
        assert 'no "code" key' in out[0].message

    def test_code_outside_the_taxonomy(self):
        out = findings("""
            def answer(exc):
                return {"ok": False, "code": "oops", "error": str(exc)}
        """)
        assert len(out) == 1
        assert "'oops'" in out[0].message

    def test_dict_call_form_is_checked_too(self):
        out = findings("""
            def answer(exc):
                return dict(ok=False, error=str(exc))
        """)
        assert len(out) == 1

    def test_cli_is_a_serve_boundary_too(self):
        out = findings("""
            def answer(exc):
                return {"ok": False, "error": str(exc)}
        """, path="src/repro/cli.py")
        assert len(out) == 1


class TestSilent:
    def test_taxonomy_code_passes(self):
        assert findings("""
            def answer(exc):
                return {"ok": False, "code": "deadline", "error": str(exc)}
        """) == []

    def test_dynamic_code_is_trusted(self):
        # Typed exceptions carry their own .code; the runtime parity
        # tests own that contract.
        assert findings("""
            def answer(exc):
                return {"ok": False, "code": exc.code, "error": str(exc)}
        """) == []

    def test_ok_true_envelopes_are_not_error_envelopes(self):
        assert findings("""
            def answer(result):
                return {"ok": True, "result": result}
        """) == []

    def test_non_boundary_modules_build_dicts_freely(self):
        assert findings("""
            def answer(exc):
                return {"ok": False, "error": str(exc)}
        """, path="src/repro/engine/executor.py") == []


class TestAllowlisted:
    def test_pragma_suppresses_a_deliberate_bare_envelope(self):
        assert findings("""
            def answer(exc):
                # repro-lint: disable=error-envelope -- pre-handshake reject, no taxonomy yet
                return {"ok": False, "error": str(exc)}
        """) == []
