"""Rule fixtures: ``layering`` — the package import deny-matrix."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule

RULES = [get_rule("layering")]


def findings(source: str, path: str):
    return analyze_source(textwrap.dedent(source).lstrip("\n"), path, RULES)


class TestFires:
    def test_core_importing_engine(self):
        out = findings("""
            from repro.engine import executor
        """, "src/repro/core/bad.py")
        assert len(out) == 1
        assert out[0].rule == "layering"
        assert "repro.engine" in out[0].message

    def test_from_import_resolves_per_name(self):
        # `from repro.core import algebra` must catch the *name*, not
        # just the base module — the PR 3 queries contract.
        out = findings("""
            from repro.core import algebra
        """, "src/repro/queries/bad.py")
        assert len(out) == 1
        assert "repro.core.algebra" in out[0].message

    def test_relative_import_resolves(self):
        out = findings("""
            from ..engine import executor
        """, "src/repro/core/sub.py")
        assert len(out) == 1
        assert "repro.engine" in out[0].message

    def test_engine_importing_api_outside_the_shm_carveout(self):
        out = findings("""
            from repro.api.session import Session
        """, "src/repro/engine/bad.py")
        assert len(out) == 1


class TestSilent:
    def test_core_importing_geometry_is_downward(self):
        assert findings("""
            from repro.geometry.primitives import Polygon
        """, "src/repro/core/fine.py") == []

    def test_engine_may_import_api_shm_carveout(self):
        # The ADR-0002 data-plane hole: repro.api.shm only.
        assert findings("""
            from repro.api.shm import encode_payload
        """, "src/repro/engine/fine.py") == []

    def test_process_worker_module_exemption(self):
        # The worker hosts a mirrored Session (ADR 0002): the one
        # module allowed to import the api layer wholesale.
        assert findings("""
            from repro.api.session import Session
        """, "src/repro/engine/process_worker.py") == []

    def test_files_outside_a_repro_tree_are_skipped(self):
        assert findings("""
            from repro.engine import executor
        """, "benchmarks/bench.py") == []


class TestAllowlisted:
    def test_pragma_with_justification_suppresses(self):
        assert findings("""
            # repro-lint: disable=layering -- legacy shim kept for import compat
            from repro.engine import executor
        """, "src/repro/core/queries.py") == []
