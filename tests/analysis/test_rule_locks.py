"""Rule fixtures: ``lock-discipline`` — guarded-by inference."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule

RULES = [get_rule("lock-discipline")]


def findings(source: str):
    return analyze_source(textwrap.dedent(source).lstrip("\n"),
                          "src/repro/engine/x.py", RULES)


COUNTER = """
    import threading


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._hits = 0

        def bump(self):
            with self._lock:
                self._hits += 1

        def {reader}
"""


class TestFires:
    def test_unguarded_read_of_guarded_attr(self):
        out = findings(COUNTER.format(reader="""peek(self):
            return self._hits"""))
        assert len(out) == 1
        assert "_hits" in out[0].message
        assert "peek" in out[0].message

    def test_unguarded_write(self):
        out = findings(COUNTER.format(reader="""reset(self):
            self._hits = 0"""))
        assert len(out) == 1

    def test_closure_inside_method_is_still_checked(self):
        out = findings(COUNTER.format(reader="""defer(self, pool):
            pool.submit(lambda: None)
            def late():
                return self._hits
            return late"""))
        assert len(out) == 1


class TestSilent:
    def test_guarded_read(self):
        assert findings(COUNTER.format(reader="""peek(self):
            with self._lock:
                return self._hits""")) == []

    def test_init_is_exempt_construction_happens_before_sharing(self):
        # The shared COUNTER fixture's __init__ writes self._hits = 0
        # unguarded; the guarded reader variant stays clean, so the
        # exemption held.
        assert findings(COUNTER.format(reader="""peek(self):
            with self._lock:
                return self._hits""")) == []

    def test_locked_suffix_marks_caller_holds_lock(self):
        assert findings(COUNTER.format(reader="""peek_locked(self):
            return self._hits""")) == []

    def test_class_without_lock_attribute_is_unconstrained(self):
        assert findings("""
            class Plain:
                def __init__(self):
                    self._hits = 0

                def bump(self):
                    self._hits += 1
        """) == []

    def test_unguarded_attrs_of_locked_class_are_unconstrained(self):
        # Only attributes *written under the lock* are inferred as
        # shared state; immutable config set in __init__ stays free.
        assert findings(COUNTER.format(reader="""name(self):
            return self._label""")) == []


class TestAllowlisted:
    def test_trailing_pragma_with_justification(self):
        assert findings(COUNTER.format(
            reader="""peek(self):
            return self._hits  # repro-lint: disable=lock-discipline -- racy stats read"""
        )) == []
