"""Rule fixtures: ``shm-lifecycle`` — every segment reaches an unlink."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule

RULES = [get_rule("shm-lifecycle")]


def findings(source: str):
    return analyze_source(textwrap.dedent(source).lstrip("\n"),
                          "src/repro/api/x.py", RULES)


class TestFires:
    def test_bare_create_with_no_unlink_path(self):
        out = findings("""
            from multiprocessing import shared_memory

            def leak(nbytes):
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                return seg
        """)
        assert len(out) == 1
        assert "unlink" in out[0].message

    def test_class_owner_without_registered_cleanup(self):
        # An unlink-ing close() is not enough: nothing guarantees it
        # runs.  The ADR 0002 pattern needs the atexit sweep too.
        out = findings("""
            from multiprocessing import shared_memory

            class Plane:
                def open(self, nbytes):
                    self._seg = shared_memory.SharedMemory(
                        create=True, size=nbytes
                    )

                def close(self):
                    self._seg.unlink()
        """)
        assert len(out) == 1


class TestSilent:
    def test_try_finally_dominating_the_create(self):
        assert findings("""
            from multiprocessing import shared_memory

            def scoped(nbytes, use):
                seg = None
                try:
                    seg = shared_memory.SharedMemory(
                        create=True, size=nbytes
                    )
                    use(seg)
                finally:
                    if seg is not None:
                        seg.unlink()
        """) == []

    def test_exception_handler_unlink_counts(self):
        assert findings("""
            from multiprocessing import shared_memory

            def guarded(nbytes, publish):
                try:
                    seg = shared_memory.SharedMemory(
                        create=True, size=nbytes
                    )
                    publish(seg)
                except Exception:
                    seg.unlink()
                    raise
        """) == []

    def test_class_owner_with_atexit_sweep(self):
        assert findings("""
            import atexit
            from multiprocessing import shared_memory

            class Plane:
                def open(self, nbytes):
                    self._seg = shared_memory.SharedMemory(
                        create=True, size=nbytes
                    )

                def close(self):
                    self._seg.unlink()

            atexit.register(Plane.close)
        """) == []

    def test_attach_without_create_is_not_ownership(self):
        assert findings("""
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
        """) == []


class TestAllowlisted:
    def test_pragma_with_justification(self):
        assert findings("""
            from multiprocessing import shared_memory

            def probe(nbytes):
                # repro-lint: disable=shm-lifecycle -- probe segment, unlinked by caller fixture
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                return seg
        """) == []
