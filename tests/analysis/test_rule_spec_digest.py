"""Rule fixtures: ``spec-digest`` — no field silently skips the key.

Also the live-contract checks: the real spec module's policy-excluded
set exists and the result-cache digest actually honors it.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, get_rule

RULES = [get_rule("spec-digest")]


def findings(source: str):
    return analyze_source(textwrap.dedent(source).lstrip("\n"),
                          "src/repro/api/specs.py", RULES)


class TestFires:
    def test_field_absent_from_to_dict(self):
        out = findings("""
            from dataclasses import dataclass


            @dataclass
            class FooSpec:
                alpha: int
                beta: int = 0

                def to_dict(self):
                    return {"alpha": self.alpha}
        """)
        assert len(out) == 1
        assert "FooSpec.beta" in out[0].message


class TestSilent:
    def test_all_fields_serialized(self):
        assert findings("""
            from dataclasses import dataclass


            @dataclass
            class FooSpec:
                alpha: int
                beta: int = 0

                def to_dict(self):
                    return {"alpha": self.alpha, "beta": self.beta}
        """) == []

    def test_policy_excluded_field(self):
        assert findings("""
            from dataclasses import dataclass

            DIGEST_POLICY_EXCLUDED = frozenset({"deadline_ms"})


            @dataclass
            class FooSpec:
                alpha: int
                deadline_ms: float | None = None

                def to_dict(self):
                    return {"alpha": self.alpha}
        """) == []

    def test_private_and_classvar_fields_ignored(self):
        assert findings("""
            from dataclasses import dataclass
            from typing import ClassVar


            @dataclass
            class FooSpec:
                FAMILY: ClassVar[str] = "foo"
                alpha: int
                _scratch: int = 0

                def to_dict(self):
                    return {"alpha": self.alpha}
        """) == []

    def test_non_spec_dataclasses_unconstrained(self):
        assert findings("""
            from dataclasses import dataclass


            @dataclass
            class FooResult:
                alpha: int

                def to_dict(self):
                    return {}
        """) == []

    def test_spec_without_to_dict_unconstrained(self):
        assert findings("""
            from dataclasses import dataclass


            @dataclass
            class FooSpec:
                alpha: int
        """) == []


class TestAllowlisted:
    def test_pragma_on_the_field_line(self):
        assert findings("""
            from dataclasses import dataclass


            @dataclass
            class FooSpec:
                alpha: int
                beta: int = 0  # repro-lint: disable=spec-digest -- wire format lands next PR
                def to_dict(self):
                    return {"alpha": self.alpha}
        """) == []


class TestLiveContract:
    def test_repo_policy_set_names_deadline_ms(self):
        from repro.api.specs import DIGEST_POLICY_EXCLUDED

        assert "deadline_ms" in DIGEST_POLICY_EXCLUDED

    def test_digest_pops_exactly_the_policy_set(self):
        import numpy as np

        from repro.api import ConstraintSpec, PointData, SelectSpec
        from repro.api.result_cache import spec_digest
        from repro.geometry.primitives import Polygon

        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        xs, ys = np.array([1.0, 5.0]), np.array([1.0, 5.0])

        def spec(deadline_ms):
            return SelectSpec(
                dataset=PointData(xs, ys),
                constraints=[ConstraintSpec.polygon(poly)],
                resolution=64, deadline_ms=deadline_ms,
            )

        # Policy field: budgets must share the cache entry.
        assert spec_digest(spec(None)) == spec_digest(spec(500.0))
        # Semantic field: resolution must not.
        other = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(poly)], resolution=128,
        )
        assert spec_digest(spec(None)) != spec_digest(other)
