"""Property suite for the result-cache key (:func:`spec_digest`).

The digest is the result cache's entire notion of query identity, so
its contract is pinned by generated specs across families:

- **fixpoint**: ``digest(from_dict(to_dict(spec))) == digest(spec)`` —
  a spec that travelled the JSON wire keys the same entry;
- **key-order insensitivity**: reordering dict keys (recursively)
  never changes the digest;
- **sensitivity**: specs differing in any semantic field (k, radius,
  window, constraints, dataset ref, resolution, aggregate…) digest
  differently.
"""

from __future__ import annotations


from hypothesis import given, settings, strategies as st

from repro.api import (
    AggregateSpec,
    ConstraintSpec,
    GeometryData,
    KnnSpec,
    SelectSpec,
    VoronoiSpec,
    WindowSpec,
    spec_digest,
    spec_from_dict,
)
from repro.geometry.primitives import Polygon

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
small = st.floats(min_value=0.5, max_value=50.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=50)


@st.composite
def rect_constraints(draw):
    x0 = draw(st.floats(min_value=0, max_value=40))
    y0 = draw(st.floats(min_value=0, max_value=40))
    w = draw(small)
    h = draw(small)
    return ConstraintSpec.rect((x0, y0), (x0 + w, y0 + h))


@st.composite
def circle_constraints(draw):
    cx = draw(st.floats(min_value=0, max_value=80))
    cy = draw(st.floats(min_value=0, max_value=80))
    return ConstraintSpec.circle((cx, cy), draw(small))


@st.composite
def select_specs(draw):
    kind = draw(st.sampled_from(["rect", "circle"]))
    constraint = draw(
        rect_constraints() if kind == "rect" else circle_constraints()
    )
    window = draw(st.one_of(
        st.none(),
        st.just(WindowSpec(0.0, 0.0, 100.0, 100.0)),
    ))
    return SelectSpec(
        dataset=f"synthetic:uniform?n=1000&seed={draw(seeds)}",
        constraints=[constraint],
        window=window,
        resolution=draw(st.sampled_from([None, 64, 128, 256])),
        exact=draw(st.booleans()),
    )


@st.composite
def knn_specs(draw):
    return KnnSpec(
        dataset=f"synthetic:uniform?n=1000&seed={draw(seeds)}",
        query_point=(draw(finite), draw(finite)),
        k=draw(st.integers(min_value=1, max_value=100)),
        resolution=draw(st.sampled_from([None, 64, 128])),
    )


@st.composite
def any_specs(draw):
    return draw(st.one_of(select_specs(), knn_specs()))


def shuffle_keys(value, rng):
    """Recursively rebuild dicts in a shuffled key order."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {k: shuffle_keys(value[k], rng) for k in keys}
    if isinstance(value, list):
        return [shuffle_keys(v, rng) for v in value]
    return value


class TestDigestFixpoint:
    @given(any_specs())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_fixpoint(self, spec):
        wire = spec.to_dict()
        back = spec_from_dict(wire)
        assert spec_digest(back) == spec_digest(spec)
        assert spec_digest(wire) == spec_digest(spec)
        # And idempotent across a second trip.
        assert spec_digest(spec_from_dict(back.to_dict())) == (
            spec_digest(spec)
        )

    @given(any_specs(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_key_order_insensitive(self, spec, rng):
        wire = spec.to_dict()
        shuffled = shuffle_keys(wire, rng)
        assert spec_digest(shuffled) == spec_digest(wire)


class TestDigestSensitivity:
    @given(knn_specs(), st.integers(min_value=1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_k_changes_digest(self, spec, other_k):
        if other_k == spec.k:
            other_k = spec.k + 1
        other = KnnSpec(dataset=spec.dataset, query_point=spec.query_point,
                        k=other_k, resolution=spec.resolution)
        assert spec_digest(other) != spec_digest(spec)

    @given(select_specs(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_dataset_ref_changes_digest(self, spec, other_seed):
        other_ref = f"synthetic:uniform?n=1000&seed={other_seed}"
        if other_ref == spec.dataset:
            other_ref = f"synthetic:uniform?n=1001&seed={other_seed}"
        other = SelectSpec(dataset=other_ref, constraints=spec.constraints,
                           window=spec.window, resolution=spec.resolution,
                           exact=spec.exact)
        assert spec_digest(other) != spec_digest(spec)

    @given(select_specs())
    @settings(max_examples=40, deadline=None)
    def test_window_changes_digest(self, spec):
        new_window = (
            WindowSpec(0.0, 0.0, 99.0, 99.0)
            if spec.window is None
            else None
        )
        other = SelectSpec(dataset=spec.dataset, constraints=spec.constraints,
                           window=new_window, resolution=spec.resolution,
                           exact=spec.exact)
        assert spec_digest(other) != spec_digest(spec)

    @given(circle_constraints(), small)
    @settings(max_examples=40, deadline=None)
    def test_radius_changes_digest(self, constraint, delta):
        base = SelectSpec(dataset="synthetic:uniform?n=1000&seed=0",
                          constraints=[constraint])
        grown = SelectSpec(
            dataset="synthetic:uniform?n=1000&seed=0",
            constraints=[ConstraintSpec.circle(
                constraint.center, constraint.radius + delta
            )],
        )
        assert spec_digest(grown) != spec_digest(base)

    @given(rect_constraints(), rect_constraints())
    @settings(max_examples=40, deadline=None)
    def test_constraints_change_digest(self, a, b):
        if a.as_polygon().shell.vertex_array().tobytes() == (
            b.as_polygon().shell.vertex_array().tobytes()
        ):
            return  # genuinely equal constraints may share a digest
        sa = SelectSpec(dataset="synthetic:uniform?n=1000&seed=0",
                        constraints=[a])
        sb = SelectSpec(dataset="synthetic:uniform?n=1000&seed=0",
                        constraints=[b])
        assert spec_digest(sa) != spec_digest(sb)

    def test_family_changes_digest(self):
        """Same dataset, different family: never collide."""
        voronoi = VoronoiSpec(
            dataset="synthetic:uniform?n=1000&seed=0",
            window=WindowSpec(0.0, 0.0, 100.0, 100.0),
        )
        knn = KnnSpec(dataset="synthetic:uniform?n=1000&seed=0",
                      query_point=(1.0, 2.0), k=3)
        assert spec_digest(voronoi) != spec_digest(knn)

    def test_aggregate_field_changes_digest(self):
        polys = [Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])]
        count = AggregateSpec(dataset="taxi:pickups?n=1000",
                              polygons=GeometryData(polys),
                              aggregate="count")
        total = AggregateSpec(dataset="taxi:pickups?n=1000",
                              polygons=GeometryData(polys),
                              aggregate="sum")
        assert spec_digest(count) != spec_digest(total)
