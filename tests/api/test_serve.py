"""The JSON-lines service loop: specs in, summaries + reports out."""

import importlib
import io
import json

import numpy as np
import pytest

#: The serve *module* (the package attribute of the same name is the
#: serve() function, so a plain ``import repro.api.serve`` would shadow).
serve_mod = importlib.import_module("repro.api.serve")
from repro.api import (
    ConstraintSpec,
    DatasetRegistry,
    PointData,
    SelectSpec,
    Session,
    result_summary,
    serve,
    serve_lines,
)
from repro.geometry.primitives import Polygon
from repro.queries import polygonal_select_points

POLY = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])


def spec_line(**overrides):
    spec = {
        "spec": "select",
        "version": 1,
        "dataset": "synthetic:uniform?n=400&seed=6",
        "constraints": [
            {"kind": "polygon",
             "geometry": {"type": "Polygon",
                          "coordinates": [[[20, 20], [80, 20], [80, 80],
                                           [20, 80], [20, 20]]]}}
        ],
        "resolution": 128,
    }
    spec.update(overrides)
    return json.dumps(spec)


class TestServeLines:
    def test_answers_specs_end_to_end(self):
        lines = [
            spec_line(),
            json.dumps({"spec": "knn", "version": 1,
                        "dataset": "synthetic:uniform?n=400&seed=6",
                        "query_point": [50, 50], "k": 3,
                        "resolution": 128}),
        ]
        out = [json.loads(line) for line in serve_lines(lines)]
        assert all(o["ok"] for o in out)
        assert out[0]["result"]["type"] == "selection"
        assert out[0]["report"]["plan"] in ("per-polygon-pip",
                                            "blended-canvas")
        assert out[1]["result"]["matched"] == 3

    def test_matches_direct_call(self):
        registry = DatasetRegistry()
        data = registry.resolve("synthetic:uniform?n=400&seed=6")
        truth = polygonal_select_points(data.xs, data.ys, POLY,
                                        resolution=128)
        out = json.loads(next(iter(serve_lines([spec_line()]))))
        assert out["result"]["matched"] == len(truth.ids)
        assert out["result"]["ids"] == truth.ids.tolist()

    def test_bad_json_does_not_kill_loop(self):
        lines = ["{broken", spec_line(), ""]
        out = [json.loads(line) for line in serve_lines(lines)]
        assert len(out) == 2  # blank line skipped
        assert out[0]["ok"] is False and "bad JSON" in out[0]["error"]
        assert out[1]["ok"] is True

    def test_spec_error_reported_in_band(self):
        lines = [
            json.dumps({"spec": "select", "version": 1,
                        "dataset": "synthetic:uniform?n=10",
                        "constraints": []}),
            json.dumps({"spec": "warp", "version": 1}),
            json.dumps({"spec": "select", "version": 3,
                        "dataset": "x", "constraints": []}),
        ]
        out = [json.loads(line) for line in serve_lines(lines)]
        assert [o["ok"] for o in out] == [False, False, False]
        assert "at least one constraint" in out[0]["error"]
        assert "unknown spec family" in out[1]["error"]
        assert "version" in out[2]["error"]

    def test_batch_request(self):
        line = json.dumps({
            "batch": [json.loads(spec_line()), json.loads(spec_line())]
        })
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is True
        assert len(out["results"]) == 2
        assert out["report"]["n_queries"] == 2
        assert out["results"][0]["matched"] == out["results"][1]["matched"]

    def test_non_object_request(self):
        out = json.loads(next(iter(serve_lines(["[1, 2]"]))))
        assert out["ok"] is False

    def test_absurd_generator_size_rejected_in_band(self):
        # One untrusted request must not be able to OOM the service.
        line = spec_line(dataset="synthetic:uniform?n=2000000000000")
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is False
        assert "generator cap" in out["error"]

    def test_absurd_resolution_rejected_in_band(self):
        line = spec_line(resolution=1_000_000)
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is False
        assert "cap" in out["error"]

    def test_unexpected_exception_answered_in_band(self, monkeypatch):
        # The loop survives even bugs outside the ValueError family.
        session = Session()
        monkeypatch.setattr(
            session, "run",
            lambda *a, **k: (_ for _ in ()).throw(MemoryError("14.6 TiB")),
        )
        out = json.loads(next(iter(serve_lines([spec_line()], session))))
        assert out["ok"] is False
        assert "MemoryError" in out["error"]

    def test_file_scheme_disabled_at_serve_boundary(self, tmp_path):
        # Untrusted requests must not be able to read server paths; a
        # session-less serve_lines uses the hardened default registry.
        path = tmp_path / "secrets.csv"
        path.write_text('geometry\n"POINT (50 50)"\n')
        line = spec_line(dataset=f"file:{path}")
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is False
        assert "file: references are disabled" in out["error"]
        # An explicitly-passed local session keeps the convenience.
        out = json.loads(next(iter(serve_lines([line], Session()))))
        assert out["ok"] is True and out["result"]["matched"] == 1

    def test_dict_parsed_resolution_cap_spares_python_callers(self):
        from repro.api import SelectSpec as SS
        from repro.api import SpecError, spec_from_dict
        from repro.api.specs import MAX_RESOLUTION

        # Trusted Python construction: uncapped, like the legacy API.
        spec = SS(dataset=PointData(np.array([1.0]), np.array([1.0])),
                  constraints=[ConstraintSpec.polygon(POLY)],
                  resolution=4 * MAX_RESOLUTION)
        assert spec.resolution == 4 * MAX_RESOLUTION
        # The same value in dict form (the untrusted boundary) rejects.
        with pytest.raises(SpecError, match=f"{MAX_RESOLUTION} cap"):
            spec_from_dict(spec.to_dict())

    def test_mistyped_dataset_ref_is_spec_error(self):
        # A string ref resolves at run time; the record-type contract
        # must still surface as a SpecError, not a kernel crash.
        from repro.api import GeometrySpec
        from repro.geometry.primitives import LineString

        registry = DatasetRegistry().register(
            "lines", [LineString([(0, 0), (1, 1)])]
        )
        session = Session(registry)
        spec = GeometrySpec(dataset="lines", query=POLY, kind="polygons",
                            resolution=64)
        out = json.loads(next(iter(serve_lines(
            [json.dumps(spec.to_dict())], session
        ))))
        assert out["ok"] is False
        assert "must be Polygon" in out["error"]

    def test_stream_interface(self):
        stream_in = io.StringIO(spec_line() + "\n")
        stream_out = io.StringIO()
        count = serve(stream_in, stream_out, Session())
        assert count == 1
        assert json.loads(stream_out.getvalue())["ok"] is True

    def test_session_registry_serves_named_data(self):
        rng = np.random.default_rng(12)
        xs, ys = rng.uniform(0, 100, 300), rng.uniform(0, 100, 300)
        session = Session(DatasetRegistry().register("live", (xs, ys)))
        out = json.loads(
            next(iter(serve_lines([spec_line(dataset="live")], session)))
        )
        truth = polygonal_select_points(xs, ys, POLY, resolution=128)
        assert out["result"]["matched"] == len(truth.ids)


class TestSummaries:
    def test_selection_truncation(self, monkeypatch):
        monkeypatch.setattr(serve_mod, "MAX_INLINE_RESULTS", 5)
        rng = np.random.default_rng(3)
        xs, ys = rng.uniform(30, 70, 50), rng.uniform(30, 70, 50)
        result = Session().run(SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=128,
        ))
        summary = result_summary(result)
        assert summary["matched"] == 50
        assert len(summary["ids"]) == 5
        assert summary["truncated"] is True

    def test_min_over_empty_group_is_valid_json(self):
        # min over a group with no points is +inf Python-side; the wire
        # form must stay RFC-parseable (null, not Infinity).
        line = json.dumps({
            "spec": "aggregate", "version": 1,
            "dataset": {"kind": "points", "xs": [50.0], "ys": [50.0],
                        "values": [7.5]},
            "polygons": {"kind": "geometries", "geometries": [
                {"type": "Polygon",
                 "coordinates": [[[0, 0], [5, 0], [5, 5], [0, 5], [0, 0]]]}
            ]},
            "aggregate": "min", "resolution": 64,
        })
        raw = next(iter(serve_lines([line])))
        assert "Infinity" not in raw
        answer = json.loads(raw)
        assert answer["ok"] is True
        assert answer["result"]["values"] == [None]

    def test_nan_points_never_match_but_serve(self):
        spec = SelectSpec(
            dataset=PointData(np.array([50.0, np.nan]),
                              np.array([50.0, np.nan])),
            constraints=[ConstraintSpec.polygon(POLY)],
            window=(0.0, 0.0, 100.0, 100.0), resolution=64,
        )
        with np.errstate(invalid="ignore"):  # NaN→int cast in the kernel
            result = Session().run(spec)
        assert result.ids.tolist() == [0]

    def test_pairs_summary(self):
        summary = result_summary([(1, 2), (3, 4)])
        assert summary == {"type": "pairs", "matched": 2,
                           "pairs": [[1, 2], [3, 4]], "truncated": False}

    def test_unknown_result_type(self):
        with pytest.raises(TypeError):
            result_summary(object())

    def test_unrenderable_response_degrades_with_taxonomy_code(self):
        # A response that defeats allow_nan=False serialization still
        # reaches the client as a classifiable error: ok=False plus a
        # stable "code" from the error taxonomy, like every other
        # error line (regression: the degraded envelope used to omit
        # the code entirely).
        raw = serve_mod._render_response({"ok": True,
                                          "result": float("inf")})
        answer = json.loads(raw)
        assert answer["ok"] is False
        assert answer["code"] == "internal"
        assert "non-finite" in answer["error"]


class TestReportTally:
    def test_sub_reports_counts_beyond_history_bound(self):
        """A 40-member join on a 32-entry report deque must report the
        true engine-execution count, not the deque length."""
        from repro.api import JoinSpec
        from repro.engine import QueryEngine

        rng = np.random.default_rng(9)
        xs, ys = rng.uniform(0, 100, 60), rng.uniform(0, 100, 60)
        polys = [
            Polygon([(x, y), (x + 8, y), (x + 8, y + 8), (x, y + 8)])
            for x, y in rng.uniform(0, 90, (40, 2))
        ]
        session = Session(engine=QueryEngine(history=32))
        spec = JoinSpec(
            kind="points-polygons",
            left={"kind": "points", "xs": xs.tolist(), "ys": ys.tolist()},
            right={"kind": "geometries",
                   "geometries": [
                       {"type": "Polygon",
                        "coordinates": [[list(pt) for pt in
                                         p.shell.coords]
                                        + [list(p.shell.coords[0])]]}
                       for p in polys
                   ]},
            resolution=64,
        )
        out = json.loads(next(iter(serve_lines(
            [json.dumps(spec.to_dict())], session
        ))))
        assert out["ok"] is True
        assert out["report"]["sub_reports"] == 40


class TestLoopResilience:
    def test_hostile_nesting_does_not_kill_loop(self):
        lines = ["[" * 3000 + "]" * 3000, spec_line()]
        out = [json.loads(line) for line in serve_lines(lines)]
        assert out[0]["ok"] is False
        assert out[1]["ok"] is True

    def test_engine_and_knobs_conflict(self):
        from repro.engine import QueryEngine

        with pytest.raises(ValueError, match="not both"):
            Session(engine=QueryEngine(), cache_max_bytes=1_000_000)


class TestProtocolShape:
    def test_empty_short_circuit_still_reports(self):
        # Half space excluding the window: no engine call, but the
        # protocol's report key must still be present.
        line = spec_line(constraints=[
            {"kind": "halfspace", "coefficients": [0.0, 1.0, 1e9]}
        ])
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is True
        assert out["result"]["matched"] == 0
        assert out["report"]["plan"] == "empty-input"

    def test_batch_plans_align_with_results(self):
        empty = json.loads(spec_line(constraints=[
            {"kind": "halfspace", "coefficients": [0.0, 1.0, 1e9]}
        ]))
        live = json.loads(spec_line())
        line = json.dumps({"batch": [empty, live]})
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is True
        assert out["report"]["n_queries"] == 2
        assert len(out["report"]["plans"]) == 2
        assert out["report"]["plans"][0][1] == "empty-input"
        assert out["results"][0]["matched"] == 0
        assert out["results"][1]["matched"] > 0


class TestWorkCaps:
    def test_batch_length_cap(self):
        line = json.dumps({"batch": [json.loads(spec_line())] * 300})
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is False
        assert "cap per request" in out["error"]

    def test_join_fanout_cap_at_serve_boundary(self):
        line = json.dumps({
            "spec": "join", "version": 1, "kind": "distance",
            "left": "synthetic:uniform?n=50&seed=1",
            "right": "synthetic:uniform?n=5000&seed=2",
            "distance": 1.0, "resolution": 64,
        })
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is False
        assert "fan-out" in out["error"]
        # A trusted Python session stays uncapped (legacy parity).
        result = Session().run(json.loads(line))
        assert isinstance(result, list)

    def test_value_aggregate_without_values_rejected(self):
        line = json.dumps({
            "spec": "aggregate", "version": 1,
            "dataset": "synthetic:uniform?n=50&seed=1",
            "polygons": {"kind": "geometries", "geometries": [
                {"type": "Polygon",
                 "coordinates": [[[20, 20], [80, 20], [80, 80],
                                  [20, 80], [20, 20]]]}]},
            "aggregate": "sum", "resolution": 64,
        })
        out = json.loads(next(iter(serve_lines([line]))))
        assert out["ok"] is False
        assert "needs a dataset with values" in out["error"]

    def test_cli_query_batch_not_capped(self):
        from repro.api import handle_request

        batch = {"batch": [json.loads(spec_line())] * 300}
        out = handle_request(batch, Session())  # trusted path: no cap
        assert out["ok"] is True
        assert out["report"]["n_queries"] == 300
