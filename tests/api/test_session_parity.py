"""Session execution: every family's JSON-round-tripped spec is
bit-identical to the direct legacy frontend call, batches map onto the
engine's batch planner, and the registry resolves references."""

import json

import numpy as np
import pytest

from repro.api import (
    AggregateSpec,
    ConstraintSpec,
    DatasetRegistry,
    GeometryData,
    GeometrySpec,
    JoinSpec,
    KnnSpec,
    OdSpec,
    PointData,
    SelectSpec,
    Session,
    SpecError,
    TripData,
    VoronoiSpec,
    WindowSpec,
    spec_from_dict,
)
from repro.core.optimizer import CostModel
from repro.data.taxi import generate_taxi_trips
from repro.engine import QueryEngine, use_engine
from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import LineString, Point, Polygon
from repro.queries import (
    distance_join,
    distance_select,
    halfspace_select,
    join_aggregate,
    knn,
    od_select,
    polygonal_select_lines,
    polygonal_select_objects,
    polygonal_select_points,
    polygonal_select_polygons,
    range_select,
    spatial_join_points_polygons,
    spatial_join_polygons_polygons,
    voronoi,
)

POLY = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
POLY2 = Polygon([(10, 40), (60, 10), (90, 60), (40, 95)])
WINDOW = BoundingBox(0, 0, 100, 100)
RES = 128


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(402)
    return rng.uniform(0, 100, 800), rng.uniform(0, 100, 800)


def roundtrip(spec):
    """Force the spec through its JSON text form."""
    return spec_from_dict(json.loads(json.dumps(spec.to_dict())))


def assert_selection_equal(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert a.n_candidates == b.n_candidates
    assert a.n_exact_tests == b.n_exact_tests
    assert a.plan == b.plan


class TestParity:
    """run(from_dict(to_dict(spec))) == the direct frontend call."""

    def test_select_polygons(self, cloud):
        xs, ys = cloud
        direct = polygonal_select_points(
            xs, ys, [POLY, POLY2], mode="all", resolution=RES
        )
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY),
                         ConstraintSpec.polygon(POLY2)],
            mode="all", resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_select_rect(self, cloud):
        xs, ys = cloud
        direct = range_select(xs, ys, (25, 30), (70, 90), resolution=RES)
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.rect((25, 30), (70, 90))],
            resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_select_halfspace(self, cloud):
        xs, ys = cloud
        direct = halfspace_select(xs, ys, 1.0, -1.0, 5.0, resolution=RES)
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.halfspace(1.0, -1.0, 5.0)],
            resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_select_halfspace_degenerate_clip(self, cloud):
        xs, ys = cloud
        # A half space excluding the whole window selects nothing, with
        # no engine call at all.
        direct = halfspace_select(xs, ys, 1.0, 0.0, 1e9, resolution=RES)
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.halfspace(1.0, 0.0, 1e9)],
            resolution=RES,
        )
        result = Session().run(roundtrip(spec))
        assert len(result.ids) == 0 == len(direct.ids)

    def test_select_circle(self, cloud):
        xs, ys = cloud
        direct = distance_select(xs, ys, (48.0, 52.0), 17.5, resolution=RES)
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.circle((48.0, 52.0), 17.5)],
            resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_knn(self, cloud):
        xs, ys = cloud
        direct = knn(xs, ys, (50.0, 50.0), 7, resolution=RES)
        spec = KnnSpec(
            dataset=PointData(xs, ys), query_point=(50.0, 50.0), k=7,
            resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_aggregate(self, cloud):
        xs, ys = cloud
        values = np.hypot(xs - 50, ys - 50)
        direct = join_aggregate(
            xs, ys, [POLY, POLY2], values=values, aggregate="sum",
            polygon_ids=[4, 9], resolution=RES,
        )
        spec = AggregateSpec(
            dataset=PointData(xs, ys, values=values),
            polygons=GeometryData([POLY, POLY2], ids=[4, 9]),
            aggregate="sum", resolution=RES,
        )
        result = Session().run(roundtrip(spec))
        assert np.array_equal(result.groups, direct.groups)
        assert np.array_equal(result.values, direct.values)

    def test_voronoi(self):
        rng = np.random.default_rng(8)
        pts = rng.uniform(5, 95, (9, 2))
        direct = voronoi(pts, WINDOW, resolution=64)
        spec = VoronoiSpec(
            dataset=PointData(pts[:, 0], pts[:, 1]),
            window=WindowSpec.from_box(WINDOW), resolution=64,
        )
        canvas = Session().run(roundtrip(spec))
        assert np.array_equal(canvas.texture.data, direct.texture.data)
        assert np.array_equal(canvas.texture.valid, direct.texture.valid)

    def test_od(self, cloud):
        xs, ys = cloud
        dxs, dys = ys[::-1].copy(), xs[::-1].copy()
        direct = od_select(xs, ys, dxs, dys, POLY, POLY2, resolution=RES)
        spec = OdSpec(
            dataset=TripData(xs, ys, dxs, dys), q1=POLY, q2=POLY2,
            resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_geometry_polygons(self):
        rng = np.random.default_rng(31)
        polys = [
            Polygon([(x, y), (x + 12, y), (x + 12, y + 12), (x, y + 12)])
            for x, y in rng.uniform(0, 85, (14, 2))
        ]
        direct = polygonal_select_polygons(polys, POLY, resolution=RES)
        spec = GeometrySpec(
            dataset=GeometryData(polys), query=POLY, kind="polygons",
            resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_geometry_lines(self):
        rng = np.random.default_rng(32)
        lines = [
            LineString(rng.uniform(0, 100, (4, 2)).tolist())
            for _ in range(10)
        ]
        direct = polygonal_select_lines(lines, POLY, resolution=RES)
        spec = GeometrySpec(
            dataset=GeometryData(lines), query=POLY, kind="lines",
            resolution=RES,
        )
        assert_selection_equal(Session().run(roundtrip(spec)), direct)

    def test_geometry_objects(self):
        rng = np.random.default_rng(33)
        records = [
            Point(30.0, 30.0),
            LineString([(5, 5), (95, 95)]),
            POLY2,
            Point(1.0, 1.0),
        ]
        direct = polygonal_select_objects(records, POLY, resolution=RES)
        spec = GeometrySpec(
            dataset=GeometryData(records), query=POLY, kind="objects",
            resolution=RES,
        )
        result = Session().run(roundtrip(spec))
        assert np.array_equal(result.ids, direct.ids)
        assert result.n_candidates == direct.n_candidates
        assert result.n_exact_tests == direct.n_exact_tests

    def test_join_points_polygons(self, cloud):
        xs, ys = cloud
        direct = spatial_join_points_polygons(
            xs[:200], ys[:200], [POLY, POLY2], polygon_ids=[11, 22],
            resolution=RES,
        )
        spec = JoinSpec(
            kind="points-polygons",
            left=PointData(xs[:200], ys[:200]),
            right=GeometryData([POLY, POLY2], ids=[11, 22]),
            resolution=RES,
        )
        assert Session().run(roundtrip(spec)) == direct

    def test_join_polygons_polygons(self):
        rng = np.random.default_rng(34)
        left = [
            Polygon([(x, y), (x + 15, y), (x + 15, y + 15), (x, y + 15)])
            for x, y in rng.uniform(0, 80, (6, 2))
        ]
        direct = spatial_join_polygons_polygons(
            left, [POLY, POLY2], resolution=RES
        )
        spec = JoinSpec(
            kind="polygons-polygons",
            left=GeometryData(left),
            right=GeometryData([POLY, POLY2]),
            resolution=RES,
        )
        assert Session().run(roundtrip(spec)) == direct

    def test_join_distance(self, cloud):
        xs, ys = cloud
        direct = distance_join(
            xs[:120], ys[:120], xs[120:126], ys[120:126], 9.0,
            resolution=RES,
        )
        spec = JoinSpec(
            kind="distance",
            left=PointData(xs[:120], ys[:120]),
            right=PointData(xs[120:126], ys[120:126]),
            distance=9.0, resolution=RES,
        )
        assert Session().run(roundtrip(spec)) == direct


class TestSession:
    def test_run_accepts_dict(self, cloud):
        xs, ys = cloud
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        )
        result = Session().run(spec.to_dict())
        assert len(result.ids) > 0

    def test_default_session_tracks_use_engine(self, cloud):
        """Legacy frontends (now spec sugar) still honour use_engine()."""
        xs, ys = cloud
        blended = QueryEngine(CostModel(edge_test=1e9))
        with use_engine(blended):
            result = polygonal_select_points(xs, ys, POLY, resolution=RES)
        assert result.plan == "blended-canvas"
        assert blended.last_report is not None

    def test_private_engine(self, cloud):
        xs, ys = cloud
        session = Session(cost_model=CostModel(edge_test=1e9))
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        )
        result = session.run(spec)
        assert result.plan == "blended-canvas"
        assert session.engine.last_report is not None
        # ...and the process-default engine did not see the query.
        assert session.engine is not Session().engine

    def test_session_resolution_default(self, cloud):
        xs, ys = cloud
        session = Session(resolution=64)
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)],
        )
        direct = polygonal_select_points(xs, ys, POLY, resolution=64)
        assert_selection_equal(session.run(spec), direct)

    def test_force_plan_runtime_knob(self, cloud):
        xs, ys = cloud
        session = Session(engine=QueryEngine())
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        )
        result = session.run(spec, force_plan="blended-canvas")
        assert result.plan == "blended-canvas"

    def test_explain_text(self, cloud):
        xs, ys = cloud
        session = Session(engine=QueryEngine())
        spec = KnnSpec(dataset=PointData(xs, ys),
                       query_point=(50.0, 50.0), k=3, resolution=RES)
        text = session.explain(spec)
        assert "chosen plan" in text
        assert "candidate plans" in text

    def test_explain_never_shows_stale_report(self, cloud):
        xs, ys = cloud
        session = Session(engine=QueryEngine())
        session.explain(SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        ))
        # A half space excluding the window short-circuits with no
        # engine run — the previous query's report must not leak in.
        text = session.explain(SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.halfspace(1.0, 0.0, 1e9)],
            resolution=RES,
        ))
        assert "no engine execution" in text
        assert "chosen plan" not in text

    def test_rejects_non_spec(self):
        with pytest.raises(SpecError, match="query spec"):
            Session().run(42)

    def test_constraint_canvas_only_for_select(self, cloud):
        xs, ys = cloud
        spec = KnnSpec(dataset=PointData(xs, ys),
                       query_point=(0.0, 0.0), k=1, resolution=RES)
        with pytest.raises(SpecError, match="constraint_canvas"):
            Session().run(spec, constraint_canvas=object())

    def test_knn_k_larger_than_data(self):
        spec = KnnSpec(dataset=PointData(np.arange(3.0), np.arange(3.0)),
                       query_point=(0.0, 0.0), k=5, resolution=RES)
        with pytest.raises(ValueError, match="k must be between"):
            Session().run(spec)


class TestBatch:
    def test_batch_matches_individual_runs(self, cloud):
        xs, ys = cloud
        specs = [
            SelectSpec(dataset=PointData(xs, ys),
                       constraints=[ConstraintSpec.polygon(POLY)],
                       resolution=RES),
            SelectSpec(dataset=PointData(xs, ys),
                       constraints=[ConstraintSpec.circle((50, 50), 20.0)],
                       resolution=RES),
            AggregateSpec(dataset=PointData(xs, ys),
                          polygons=GeometryData([POLY]), resolution=RES),
            KnnSpec(dataset=PointData(xs, ys), query_point=(40.0, 60.0),
                    k=4, resolution=RES),
        ]
        batch = Session(engine=QueryEngine()).run_batch(
            [roundtrip(s) for s in specs]
        )
        single = Session(engine=QueryEngine())
        assert batch.report.n_queries == 4
        for spec, got in zip(specs[:2], batch.results[:2]):
            assert_selection_equal(got, single.run(spec))
        agg = single.run(specs[2])
        assert np.array_equal(batch.results[2].values, agg.values)
        assert_selection_equal(batch.results[3], single.run(specs[3]))

    def test_batch_shares_constraints(self, cloud):
        xs, ys = cloud
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        )
        engine = QueryEngine(CostModel(edge_test=1e9))  # force canvas plan
        batch = Session(engine=engine).run_batch([spec, spec, spec])
        assert batch.report.shared_constraint_sets == 1
        assert batch.report.cache_hits >= 2

    def test_geometry_not_batchable(self):
        spec = GeometrySpec(dataset=GeometryData([POLY]), query=POLY2,
                            kind="polygons", resolution=RES)
        with pytest.raises(SpecError, match="not batchable"):
            Session().run_batch([spec])

    def test_batch_errors_name_the_member(self, cloud):
        xs, ys = cloud
        good = SelectSpec(dataset=PointData(xs, ys),
                          constraints=[ConstraintSpec.polygon(POLY)],
                          resolution=RES)
        bad = KnnSpec(dataset=PointData(xs[:3], ys[:3]),
                      query_point=(0.0, 0.0), k=50, resolution=RES)
        with pytest.raises(SpecError, match=r"batch\[1\].*k must be"):
            Session().run_batch([good, bad])


class TestRegistry:
    def test_register_and_resolve_arrays(self, cloud):
        xs, ys = cloud
        registry = DatasetRegistry().register("mine", (xs, ys))
        data = registry.resolve("mine")
        assert np.array_equal(data.xs, xs)

    def test_spec_by_reference_matches_inline(self, cloud):
        xs, ys = cloud
        registry = DatasetRegistry().register("cloud", (xs, ys))
        session = Session(registry)
        by_ref = session.run(SelectSpec(
            dataset="cloud",
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        ))
        inline = session.run(SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        ))
        assert_selection_equal(by_ref, inline)

    def test_synthetic_scheme_deterministic(self):
        registry = DatasetRegistry()
        a = registry.resolve("synthetic:uniform?n=500&seed=9")
        b = DatasetRegistry().resolve("synthetic:uniform?n=500&seed=9")
        assert np.array_equal(a.xs, b.xs)
        assert len(a) == 500

    def test_synthetic_gaussian(self):
        data = DatasetRegistry().resolve(
            "synthetic:gaussian?n=300&clusters=3&seed=2"
        )
        assert len(data) == 300

    def test_taxi_variants_align(self):
        registry = DatasetRegistry()
        trips = registry.resolve("taxi:trips?n=400&seed=3")
        pickups = registry.resolve("taxi:pickups?n=400&seed=3")
        dropoffs = registry.resolve("taxi:dropoffs?n=400&seed=3")
        reference = generate_taxi_trips(400, seed=3)
        assert np.array_equal(trips.origin_xs, reference.pickup_x)
        assert np.array_equal(pickups.xs, reference.pickup_x)
        assert np.array_equal(dropoffs.xs, reference.dropoff_x)
        assert np.array_equal(pickups.values, reference.fare)

    def test_resolution_is_cached(self):
        registry = DatasetRegistry()
        a = registry.resolve("taxi:pickups?n=200&seed=1")
        b = registry.resolve("taxi:pickups?n=200&seed=1")
        assert a is b

    def test_resolution_cache_is_bounded(self):
        registry = DatasetRegistry()
        first = registry.resolve("synthetic:uniform?n=10&seed=0")
        for seed in range(1, registry.MAX_CACHED_RESOLUTIONS + 1):
            registry.resolve(f"synthetic:uniform?n=10&seed={seed}")
        assert len(registry._cache) == registry.MAX_CACHED_RESOLUTIONS
        # The oldest entry was evicted: re-resolving regenerates it.
        assert registry.resolve("synthetic:uniform?n=10&seed=0") is not first

    def test_registered_name_takes_precedence(self, cloud):
        xs, ys = cloud
        registry = DatasetRegistry().register(
            "taxi:pickups?n=200&seed=1", (xs, ys)
        )
        assert np.array_equal(
            registry.resolve("taxi:pickups?n=200&seed=1").xs, xs
        )

    def test_unknown_reference(self):
        with pytest.raises(SpecError, match="unknown dataset"):
            DatasetRegistry().resolve("nope")

    def test_register_tuple_of_geometries(self):
        # A 2-tuple of polygons is geometry data, not (xs, ys) columns.
        registry = DatasetRegistry().register("zones", (POLY, POLY2))
        data = registry.resolve("zones")
        assert isinstance(data, GeometryData)
        assert len(data) == 2

    def test_kind_mismatch(self):
        registry = DatasetRegistry()
        with pytest.raises(SpecError, match="trips dataset is required"):
            registry.resolve_trips("synthetic:uniform?n=10", "od")

    def test_file_scheme(self, tmp_path):
        from repro.data.datasets import write_geojson

        path = tmp_path / "pts.geojson"
        write_geojson(path, [Point(1.0, 2.0), Point(3.0, 4.0)])
        data = DatasetRegistry().resolve(f"file:{path}")
        assert np.array_equal(data.xs, [1.0, 3.0])

    def test_file_scheme_value_column(self, tmp_path):
        from repro.data.datasets import write_csv

        path = tmp_path / "pts.csv"
        write_csv(path, [Point(1.0, 1.0), Point(2.0, 2.0)],
                  [{"fare": 10.0}, {"fare": 20.0}])
        data = DatasetRegistry().resolve(f"file:{path}?value=fare")
        assert np.array_equal(data.values, [10.0, 20.0])
        with pytest.raises(SpecError, match="numeric column 'nope'"):
            DatasetRegistry().resolve(f"file:{path}?value=nope")

    def test_take_reports_reanchors_on_engine_switch(self, cloud):
        """use_engine() around a default session must not leak another
        engine's report tally into this session's attribution."""
        from repro.engine import use_engine

        xs, ys = cloud
        session = Session()  # tracks the process-default engine
        spec = SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        )
        session.run(spec)
        session.take_reports()  # consume
        with use_engine(QueryEngine()):
            reports, produced = session.take_reports()
            assert produced == 0 and reports == []
        reports, produced = session.take_reports()
        assert produced == 0 and reports == []  # already consumed on A

    def test_take_reports_ignores_presession_history(self, cloud):
        xs, ys = cloud
        engine = QueryEngine()
        engine.knn(xs, ys, (50.0, 50.0), 2,
                   window=WINDOW, resolution=RES)  # someone else's query
        session = Session(engine=engine)
        session.run(SelectSpec(
            dataset=PointData(xs, ys),
            constraints=[ConstraintSpec.polygon(POLY)], resolution=RES,
        ))
        reports, produced = session.take_reports()
        assert produced == 1 and len(reports) == 1
        assert reports[0].query == "selection"

    def test_bad_scheme_params(self):
        with pytest.raises(SpecError, match="unknown parameters"):
            DatasetRegistry().resolve("taxi:pickups?speed=11")


class TestBatchErrorAttribution:
    def test_duplicate_ids_fail_with_member_index(self, cloud):
        xs, ys = cloud
        good = SelectSpec(dataset=PointData(xs, ys),
                          constraints=[ConstraintSpec.polygon(POLY)],
                          resolution=RES)
        bad = {"spec": "aggregate", "version": 1,
               "dataset": {"kind": "points", "xs": [1.0], "ys": [1.0]},
               "polygons": {"kind": "geometries",
                            "geometries": [
                                {"type": "Polygon",
                                 "coordinates": [[[0, 0], [5, 0], [5, 5],
                                                  [0, 5], [0, 0]]]},
                                {"type": "Polygon",
                                 "coordinates": [[[1, 1], [6, 1], [6, 6],
                                                  [1, 6], [1, 1]]]}],
                            "ids": [3, 3]},
               "resolution": 64}
        with pytest.raises(SpecError, match=r"batch\[1\].*duplicate"):
            Session().run_batch([good, bad])
