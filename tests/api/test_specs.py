"""Spec layer: round-trip stability and eager validation/rejection."""

import json

import numpy as np
import pytest

from repro.api import (
    AggregateSpec,
    ConstraintSpec,
    GeometryData,
    GeometrySpec,
    JoinSpec,
    KnnSpec,
    OdSpec,
    PointData,
    SelectSpec,
    SpecError,
    TripData,
    VoronoiSpec,
    WindowSpec,
    spec_from_dict,
)
from repro.geometry.primitives import LineString, Polygon

POLY = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
HOLEY = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
)
LINE = LineString([(5, 5), (40, 60), (90, 10)])

RNG = np.random.default_rng(77)
XS = RNG.uniform(0, 100, 50)
YS = RNG.uniform(0, 100, 50)


def every_family_spec():
    """One representative, fully-populated spec per family."""
    points = PointData(XS, YS, ids=np.arange(50), values=np.ones(50))
    return [
        SelectSpec(
            dataset=points,
            constraints=[ConstraintSpec.polygon(POLY),
                         ConstraintSpec.rect((1, 2), (30, 40))],
            mode="all", exact=False,
            window=WindowSpec(0, 0, 100, 100), resolution=256,
        ),
        SelectSpec(
            dataset="synthetic:uniform?n=100&seed=1",
            constraints=[ConstraintSpec.circle((50, 50), 12.5)],
            resolution=128,
        ),
        SelectSpec(
            dataset=PointData(XS, YS),
            constraints=[ConstraintSpec.halfspace(1.0, -2.0, 30.0)],
            resolution=128,
        ),
        GeometrySpec(
            dataset=GeometryData([HOLEY, POLY], ids=[7, 9]),
            query=POLY, kind="polygons", resolution=[64, 128],
        ),
        GeometrySpec(
            dataset=GeometryData([LINE]), query=POLY, kind="lines",
            resolution=128,
        ),
        JoinSpec(
            kind="points-polygons",
            left=PointData(XS, YS),
            right=GeometryData([POLY], ids=[3]),
            resolution=128,
        ),
        JoinSpec(
            kind="distance",
            left=PointData(XS[:10], YS[:10]),
            right=PointData(XS[10:15], YS[10:15]),
            distance=4.5, resolution=128,
        ),
        AggregateSpec(
            dataset=PointData(XS, YS, values=np.ones(50)),
            polygons=GeometryData([POLY], ids=[1]),
            aggregate="sum", resolution=128,
        ),
        KnnSpec(
            dataset=PointData(XS, YS), query_point=(50.0, 50.0), k=5,
            resolution=128, max_iterations=32,
        ),
        VoronoiSpec(
            dataset=PointData(XS[:8], YS[:8]),
            window=WindowSpec(0, 0, 100, 100), resolution=64,
        ),
        OdSpec(
            dataset=TripData(XS[:20], YS[:20], XS[20:40], YS[20:40],
                             ids=np.arange(20)),
            q1=POLY, q2=HOLEY, resolution=128,
        ),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec", every_family_spec(),
        ids=lambda s: f"{s.FAMILY}-{id(s) % 1000}",
    )
    def test_to_from_to_is_fixpoint(self, spec):
        """``to_dict ∘ from_dict ∘ to_dict`` is the identity on dicts."""
        d1 = spec.to_dict()
        d2 = spec_from_dict(d1).to_dict()
        assert d1 == d2

    @pytest.mark.parametrize(
        "spec", every_family_spec(),
        ids=lambda s: f"{s.FAMILY}-{id(s) % 1000}",
    )
    def test_survives_json_text(self, spec):
        """The dict form is actual JSON, not just a dict of objects."""
        text = json.dumps(spec.to_dict())
        restored = spec_from_dict(json.loads(text))
        assert restored.to_dict() == spec.to_dict()

    def test_polygon_holes_round_trip(self):
        spec = GeometrySpec(
            dataset=GeometryData([HOLEY]), query=POLY, kind="polygons"
        )
        restored = spec_from_dict(spec.to_dict())
        geom = restored.dataset.geometries[0]
        assert len(geom.holes) == 1
        assert geom.area == pytest.approx(HOLEY.area)

    def test_inline_arrays_bit_identical(self):
        spec = SelectSpec(
            dataset=PointData(XS, YS, ids=np.arange(50)),
            constraints=[ConstraintSpec.polygon(POLY)],
        )
        restored = spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert np.array_equal(restored.dataset.xs, XS)
        assert np.array_equal(restored.dataset.ys, YS)
        assert restored.dataset.xs.dtype == np.float64


class TestEagerValidation:
    def test_spec_error_is_value_error(self):
        assert issubclass(SpecError, ValueError)

    def test_empty_constraints(self):
        with pytest.raises(SpecError, match="at least one constraint"):
            SelectSpec(dataset=PointData(XS, YS), constraints=[])

    def test_zero_and_negative_k(self):
        for bad in (0, -3):
            with pytest.raises(SpecError, match="k must be"):
                KnnSpec(dataset=PointData(XS, YS),
                        query_point=(0, 0), k=bad)

    def test_non_integer_k(self):
        with pytest.raises(SpecError, match="k must be"):
            KnnSpec(dataset=PointData(XS, YS), query_point=(0, 0), k=2.5)

    def test_negative_radius(self):
        for bad in (0.0, -1.0):
            with pytest.raises(SpecError, match="radius must be positive"):
                ConstraintSpec.circle((0, 0), bad)

    def test_nonfinite_radius(self):
        with pytest.raises(SpecError, match="finite"):
            ConstraintSpec.circle((0, 0), float("inf"))

    def test_degenerate_rect(self):
        with pytest.raises(SpecError, match="positive area"):
            ConstraintSpec.rect((5, 5), (5, 9))

    def test_halfspace_needs_gradient(self):
        with pytest.raises(SpecError, match="a or b nonzero"):
            ConstraintSpec.halfspace(0.0, 0.0, 1.0)

    def test_circle_must_stand_alone(self):
        with pytest.raises(SpecError, match="only constraint"):
            SelectSpec(
                dataset=PointData(XS, YS),
                constraints=[ConstraintSpec.circle((0, 0), 1.0),
                             ConstraintSpec.polygon(POLY)],
            )

    def test_bad_mode(self):
        with pytest.raises(SpecError, match="mode"):
            SelectSpec(dataset=PointData(XS, YS),
                       constraints=[ConstraintSpec.polygon(POLY)],
                       mode="most")

    def test_bad_window(self):
        with pytest.raises(SpecError, match="xmax"):
            WindowSpec(10, 0, 0, 10)

    def test_mismatched_columns(self):
        with pytest.raises(SpecError, match="equal length"):
            PointData(XS, YS[:-1])

    def test_ids_length(self):
        with pytest.raises(SpecError, match="one id per point"):
            PointData(XS, YS, ids=np.arange(3))

    def test_nonfinite_coordinates_tolerated(self):
        # Legacy parity: NaN/Inf points never match a query but must
        # not raise (only scalar parameters are strict about finiteness).
        data = PointData(np.array([0.0, np.nan]), np.array([0.0, np.inf]))
        assert len(data) == 2

    def test_numpy_integer_scalars_accepted(self):
        # k computed as len(arr)//10 on numpy data is np.int64.
        spec = KnnSpec(dataset=PointData(XS, YS), query_point=(1.0, 2.0),
                       k=np.int64(3), resolution=np.int64(64),
                       max_iterations=np.int64(16))
        assert spec.k == 3 and isinstance(spec.k, int)
        assert spec.resolution == 64
        assert json.dumps(spec.to_dict())  # still plain JSON

    def test_unknown_aggregate(self):
        with pytest.raises(SpecError, match="unsupported aggregate"):
            AggregateSpec(dataset=PointData(XS, YS),
                          polygons=GeometryData([POLY]),
                          aggregate="median")

    def test_aggregate_group_must_be_polygon(self):
        with pytest.raises(SpecError, match="must be a Polygon"):
            AggregateSpec(dataset=PointData(XS, YS),
                          polygons=GeometryData([LINE]))

    def test_join_distance_required_and_positive(self):
        left = PointData(XS[:5], YS[:5])
        right = PointData(XS[5:9], YS[5:9])
        with pytest.raises(SpecError, match="requires a distance"):
            JoinSpec(kind="distance", left=left, right=right)
        with pytest.raises(SpecError, match="positive"):
            JoinSpec(kind="distance", left=left, right=right, distance=-2.0)

    def test_join_kind_dataset_types(self):
        with pytest.raises(SpecError, match="must resolve to PointData"):
            JoinSpec(kind="points-polygons",
                     left=GeometryData([POLY]),
                     right=GeometryData([POLY]))

    def test_geometry_kind_contract(self):
        with pytest.raises(SpecError, match="requires Polygon records"):
            GeometrySpec(dataset=GeometryData([LINE]), query=POLY,
                         kind="polygons")

    def test_voronoi_requires_window(self):
        with pytest.raises(SpecError, match="window is required"):
            VoronoiSpec(dataset=PointData(XS[:4], YS[:4]))

    def test_od_polygon_constraints(self):
        trips = TripData(XS[:5], YS[:5], XS[5:10], YS[5:10])
        with pytest.raises(SpecError, match="q2 must be a Polygon"):
            OdSpec(dataset=trips, q1=POLY, q2=None)


class TestRejection:
    """Malformed / mis-versioned dicts are rejected at the boundary."""

    def good(self):
        return SelectSpec(
            dataset="synthetic:uniform?n=10",
            constraints=[ConstraintSpec.polygon(POLY)],
        ).to_dict()

    def test_unknown_family(self):
        with pytest.raises(SpecError, match="unknown spec family"):
            spec_from_dict({"spec": "teleport", "version": 1})

    def test_not_a_mapping(self):
        with pytest.raises(SpecError, match="mapping"):
            spec_from_dict([1, 2, 3])

    def test_missing_version(self):
        d = self.good()
        del d["version"]
        with pytest.raises(SpecError, match="version"):
            spec_from_dict(d)

    def test_future_version(self):
        d = self.good()
        d["version"] = 2
        with pytest.raises(SpecError, match="version 2"):
            spec_from_dict(d)

    def test_unknown_keys(self):
        d = self.good()
        d["shard"] = 3
        with pytest.raises(SpecError, match="unknown keys"):
            spec_from_dict(d)

    def test_missing_required_keys(self):
        d = self.good()
        del d["constraints"]
        with pytest.raises(SpecError, match="missing keys"):
            spec_from_dict(d)

    def test_malformed_geometry(self):
        d = self.good()
        d["constraints"] = [{"kind": "polygon",
                             "geometry": {"type": "Banana"}}]
        with pytest.raises(SpecError, match="malformed geometry|unknown"):
            spec_from_dict(d)

    def test_bad_constraint_kind(self):
        d = self.good()
        d["constraints"] = [{"kind": "hexagram"}]
        with pytest.raises(SpecError, match="unknown kind"):
            spec_from_dict(d)

    def test_bad_dataset_kind(self):
        d = self.good()
        d["dataset"] = {"kind": "tensors", "xs": [1]}
        with pytest.raises(SpecError, match="unknown dataset kind"):
            spec_from_dict(d)

    def test_bad_resolution(self):
        d = self.good()
        d["resolution"] = -5
        with pytest.raises(SpecError, match="resolution"):
            spec_from_dict(d)

    def test_version_is_per_family(self):
        d = self.good()
        assert d["version"] == SelectSpec.VERSION == 1
        assert d["spec"] == "select"


class TestBoundaryHardening:
    """Untrusted-boundary caps and string/sequence confusions."""

    def test_strings_do_not_parse_as_sequences(self):
        with pytest.raises(SpecError, match="not a string"):
            ConstraintSpec.rect("12", "89")
        with pytest.raises(SpecError, match="not a string"):
            ConstraintSpec(kind="halfspace", coefficients="123")
        with pytest.raises(SpecError, match="window"):
            SelectSpec(dataset=PointData(XS, YS),
                       constraints=[ConstraintSpec.polygon(POLY)],
                       window="1234")
        d = {"spec": "select", "version": 1,
             "dataset": {"kind": "points", "xs": [1.0], "ys": [1.0]},
             "constraints": [{"kind": "halfspace", "coefficients": "123"}]}
        with pytest.raises(SpecError, match=r"\[a, b, c\]"):
            spec_from_dict(d)

    def test_parsed_max_iterations_cap(self):
        d = KnnSpec(dataset=PointData(XS, YS), query_point=(1.0, 1.0),
                    k=2, max_iterations=10**9).to_dict()
        with pytest.raises(SpecError, match="10000 cap"):
            spec_from_dict(d)

    def test_gaussian_clusters_cap(self):
        from repro.api import DatasetRegistry

        with pytest.raises(SpecError, match="clusters"):
            DatasetRegistry().resolve(
                "synthetic:gaussian?n=1&clusters=2000000000"
            )

    def test_duplicate_group_ids_rejected_eagerly(self):
        with pytest.raises(SpecError, match=r"duplicate polygon ids \[3\]"):
            AggregateSpec(
                dataset=PointData(XS, YS),
                polygons=GeometryData([POLY, HOLEY], ids=[3, 3]),
            )


class TestTilingField:
    """The PR 6 ``tiling`` knob: validated, serialized, family-scoped."""

    def test_round_trips_when_set(self):
        spec = SelectSpec(
            dataset=PointData(XS, YS),
            constraints=[ConstraintSpec.polygon(POLY)],
            tiling=4,
        )
        d = spec.to_dict()
        assert d["tiling"] == 4
        assert spec_from_dict(d).tiling == 4

    def test_omitted_from_dict_when_none(self):
        spec = SelectSpec(dataset=PointData(XS, YS),
                          constraints=[ConstraintSpec.polygon(POLY)])
        assert spec.tiling is None
        assert "tiling" not in spec.to_dict()

    @pytest.mark.parametrize("bad", [1, 0, -3, 65, 1000])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(SpecError, match="tiling"):
            SelectSpec(dataset=PointData(XS, YS),
                       constraints=[ConstraintSpec.polygon(POLY)],
                       tiling=bad)

    def test_non_integer_rejected(self):
        with pytest.raises(SpecError, match="tiling"):
            VoronoiSpec(dataset=PointData(XS, YS),
                        window=WindowSpec(0, 0, 100, 100), tiling="4x4")

    def test_knn_has_no_tiling_key(self):
        d = KnnSpec(dataset=PointData(XS, YS), query_point=(1.0, 1.0),
                    k=2).to_dict()
        d["tiling"] = 4
        with pytest.raises(SpecError, match="unknown keys"):
            spec_from_dict(d)
