"""Tests for the parallel CPU baseline."""

import numpy as np

from repro.baselines.cpu_parallel import parallel_cpu_select
from repro.baselines.cpu_pip import cpu_select
from repro.geometry.primitives import Polygon

SQUARE = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])


class TestFallbackPath:
    def test_single_process_matches_scalar(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:3000], ys[:3000]
        got = parallel_cpu_select(xs, ys, SQUARE, processes=1)
        expected = cpu_select(xs, ys, SQUARE)
        assert got.tolist() == sorted(expected.tolist())

    def test_empty_input(self):
        got = parallel_cpu_select(
            np.array([]), np.array([]), SQUARE, processes=1
        )
        assert got.tolist() == []

    def test_single_polygon_arg_accepted(self):
        got = parallel_cpu_select(
            np.array([50.0]), np.array([50.0]), SQUARE, processes=1
        )
        assert got.tolist() == [0]


class TestPoolPath:
    def test_two_workers_match_scalar(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:4000], ys[:4000]
        got = parallel_cpu_select(xs, ys, SQUARE, processes=2)
        expected = sorted(cpu_select(xs, ys, SQUARE).tolist())
        assert got.tolist() == expected

    def test_multi_polygon_modes(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:2000], ys[:2000]
        other = Polygon([(60, 60), (95, 60), (95, 95), (60, 95)])
        any_result = parallel_cpu_select(
            xs, ys, [SQUARE, other], mode="any", processes=2
        )
        all_result = parallel_cpu_select(
            xs, ys, [SQUARE, other], mode="all", processes=2
        )
        assert len(all_result) <= len(any_result)
        seq = parallel_cpu_select(xs, ys, [SQUARE, other], mode="any",
                                  processes=1)
        assert any_result.tolist() == seq.tolist()
