"""Tests for the scalar CPU baseline."""

import numpy as np

from repro.baselines.cpu_pip import (
    cpu_select,
    cpu_select_multi,
    point_in_polygon_scalar,
)
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon

SQUARE = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
HOLED = Polygon(
    [(10, 10), (90, 10), (90, 90), (10, 90)],
    holes=[[(40, 40), (60, 40), (60, 60), (40, 60)]],
)


class TestScalarPip:
    def test_inside_outside(self):
        assert point_in_polygon_scalar(50, 50, SQUARE)
        assert not point_in_polygon_scalar(5, 5, SQUARE)

    def test_hole(self):
        assert not point_in_polygon_scalar(50, 50, HOLED)
        assert point_in_polygon_scalar(20, 20, HOLED)


class TestCpuSelect:
    def test_matches_vectorized(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:2000], ys[:2000]
        got = set(cpu_select(xs, ys, SQUARE).tolist())
        expected = set(np.nonzero(points_in_polygon(xs, ys, SQUARE))[0].tolist())
        assert got == expected

    def test_with_holes(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:2000], ys[:2000]
        got = set(cpu_select(xs, ys, HOLED).tolist())
        expected = set(np.nonzero(points_in_polygon(xs, ys, HOLED))[0].tolist())
        assert got == expected

    def test_empty_input(self):
        assert cpu_select(np.array([]), np.array([]), SQUARE).tolist() == []


class TestCpuSelectMulti:
    POLYS = [
        SQUARE,
        Polygon([(60, 60), (95, 60), (95, 95), (60, 95)]),
    ]

    def test_disjunction(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:2000], ys[:2000]
        got = set(cpu_select_multi(xs, ys, self.POLYS, mode="any").tolist())
        expected = set(
            np.nonzero(
                points_in_polygon(xs, ys, self.POLYS[0])
                | points_in_polygon(xs, ys, self.POLYS[1])
            )[0].tolist()
        )
        assert got == expected

    def test_conjunction(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:2000], ys[:2000]
        got = set(cpu_select_multi(xs, ys, self.POLYS, mode="all").tolist())
        expected = set(
            np.nonzero(
                points_in_polygon(xs, ys, self.POLYS[0])
                & points_in_polygon(xs, ys, self.POLYS[1])
            )[0].tolist()
        )
        assert got == expected

    def test_single_polygon_equivalence(self, uniform_cloud):
        xs, ys = uniform_cloud
        xs, ys = xs[:500], ys[:500]
        assert cpu_select_multi(xs, ys, [SQUARE]).tolist() == cpu_select(
            xs, ys, SQUARE
        ).tolist()
