"""Tests for the traditional-GPU (vectorized PIP) baseline."""

import numpy as np

from repro.baselines.gpu_baseline import (
    gpu_baseline_select,
    gpu_baseline_select_multi,
)
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon

SQUARE = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
OTHER = Polygon([(60, 60), (95, 60), (95, 95), (60, 95)])


class TestSingle:
    def test_matches_reference(self, uniform_cloud):
        xs, ys = uniform_cloud
        got = set(gpu_baseline_select(xs, ys, SQUARE).tolist())
        expected = set(np.nonzero(points_in_polygon(xs, ys, SQUARE))[0].tolist())
        assert got == expected

    def test_batching_equivalence(self, uniform_cloud):
        xs, ys = uniform_cloud
        whole = gpu_baseline_select(xs, ys, SQUARE, batch=10**9)
        chunked = gpu_baseline_select(xs, ys, SQUARE, batch=1000)
        assert whole.tolist() == chunked.tolist()

    def test_empty_input(self):
        assert gpu_baseline_select(
            np.array([]), np.array([]), SQUARE
        ).tolist() == []


class TestMulti:
    def test_disjunction(self, uniform_cloud):
        xs, ys = uniform_cloud
        got = set(
            gpu_baseline_select_multi(xs, ys, [SQUARE, OTHER], mode="any")
            .tolist()
        )
        expected = set(
            np.nonzero(
                points_in_polygon(xs, ys, SQUARE)
                | points_in_polygon(xs, ys, OTHER)
            )[0].tolist()
        )
        assert got == expected

    def test_conjunction(self, uniform_cloud):
        xs, ys = uniform_cloud
        got = set(
            gpu_baseline_select_multi(xs, ys, [SQUARE, OTHER], mode="all")
            .tolist()
        )
        expected = set(
            np.nonzero(
                points_in_polygon(xs, ys, SQUARE)
                & points_in_polygon(xs, ys, OTHER)
            )[0].tolist()
        )
        assert got == expected

    def test_no_polygons(self, uniform_cloud):
        xs, ys = uniform_cloud
        assert gpu_baseline_select_multi(xs, ys, []).tolist() == []

    def test_batched_multi(self, uniform_cloud):
        xs, ys = uniform_cloud
        whole = gpu_baseline_select_multi(xs, ys, [SQUARE, OTHER])
        chunked = gpu_baseline_select_multi(
            xs, ys, [SQUARE, OTHER], batch=777
        )
        assert whole.tolist() == chunked.tolist()
