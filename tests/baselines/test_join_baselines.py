"""Tests for join-then-aggregate baselines."""

import numpy as np
import pytest

from repro.baselines.join_baselines import (
    indexed_join_aggregate,
    nested_loop_join,
    nested_loop_join_aggregate,
    rtree_filter_candidates,
)
from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon

POLYS = [
    Polygon([(10, 10), (40, 10), (40, 40), (10, 40)]),
    Polygon([(30, 30), (70, 30), (70, 70), (30, 70)]),  # overlaps first
]


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(81)
    return (
        rng.uniform(0, 100, 4000),
        rng.uniform(0, 100, 4000),
        rng.uniform(0, 10, 4000),
    )


class TestNestedLoopJoin:
    def test_pairs_match_reference(self, cloud):
        xs, ys, _ = cloud
        pairs = nested_loop_join(xs, ys, POLYS)
        truth = sorted(
            (int(i), pid)
            for pid, poly in enumerate(POLYS)
            for i in np.nonzero(points_in_polygon(xs, ys, poly))[0]
        )
        assert pairs == truth

    def test_custom_ids(self):
        pairs = nested_loop_join(
            np.array([20.0]), np.array([20.0]), POLYS, polygon_ids=[7, 8]
        )
        assert pairs == [(0, 7)]


class TestJoinAggregates:
    @pytest.mark.parametrize("aggregate", ["count", "sum", "avg", "min", "max"])
    def test_nested_loop_aggregates(self, cloud, aggregate):
        xs, ys, values = cloud
        result = nested_loop_join_aggregate(
            xs, ys, POLYS, values=values, aggregate=aggregate
        )
        for pid, poly in enumerate(POLYS):
            inside = points_in_polygon(xs, ys, poly)
            sel = values[inside]
            expected = {
                "count": float(inside.sum()),
                "sum": float(sel.sum()),
                "avg": float(sel.mean()),
                "min": float(sel.min()),
                "max": float(sel.max()),
            }[aggregate]
            assert result[pid] == pytest.approx(expected)

    def test_indexed_matches_nested_loop(self, cloud):
        xs, ys, values = cloud
        a = nested_loop_join_aggregate(xs, ys, POLYS, values=values,
                                       aggregate="sum")
        b = indexed_join_aggregate(xs, ys, POLYS, values=values,
                                   aggregate="sum")
        for pid in a:
            assert a[pid] == pytest.approx(b[pid])

    def test_indexed_empty_polygon(self, cloud):
        xs, ys, _ = cloud
        far = Polygon([(500, 500), (510, 500), (510, 510), (500, 510)])
        result = indexed_join_aggregate(xs, ys, [far], aggregate="count")
        assert result[0] == 0.0

    def test_unknown_aggregate_raises(self, cloud):
        xs, ys, _ = cloud
        with pytest.raises(ValueError):
            nested_loop_join_aggregate(xs, ys, POLYS, aggregate="median")


class TestRtreeFilter:
    def test_filter_matches_brute_force(self, cloud):
        xs, ys, _ = cloud
        box = BoundingBox(25, 25, 60, 75)
        got = rtree_filter_candidates(xs, ys, box)
        expected = np.nonzero(
            (xs >= 25) & (xs <= 60) & (ys >= 25) & (ys <= 75)
        )[0]
        assert got.tolist() == sorted(expected.tolist())
