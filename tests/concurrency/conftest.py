"""Shared fixtures for the concurrency battery.

Everything here hammers *one* engine/session from many threads, so the
fixtures produce deterministic inputs (fixed seeds) and helpers for
barrier-synchronized thread starts — every thread blocks on the
barrier, then all of them hit the shared structure in the same
instant, maximizing the chance that a latent race actually fires.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon


@pytest.fixture(scope="session")
def window() -> BoundingBox:
    return BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture(scope="session")
def cloud() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(7)
    n = 8_000
    return rng.uniform(0, 100, n), rng.uniform(0, 100, n)


@pytest.fixture(scope="session")
def polygons() -> list[Polygon]:
    """Eight distinct constraint rectangles (distinct cache keys)."""
    return [
        Polygon([(5 + 8 * i, 5), (35 + 8 * i, 5),
                 (35 + 8 * i, 80), (5 + 8 * i, 80)])
        for i in range(8)
    ]


def run_threads(n_threads: int, target, *args):
    """Start *n_threads* running ``target(thread_index, barrier, *args)``
    behind one barrier; join them and re-raise the first failure."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []
    lock = threading.Lock()

    def wrapped(index: int) -> None:
        try:
            target(index, barrier, *args)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,), name=f"hammer-{i}")
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
