"""BufferPool under contention: no buffer serves two live evaluations.

The pool recycles dense ``(H, W, 9)`` textures between queries.  If
two threads could ever pop the same buffer, both evaluations would
rasterize into one texture and silently corrupt each other — the worst
kind of concurrency bug, because results stay plausible.  The tracking
subclass below turns that into a hard failure at the exact handout.
"""

from __future__ import annotations

import threading


from repro.core.expressions import BufferPool
from repro.core.canvas import Canvas
from repro.engine import QueryEngine
from repro.geometry.bbox import BoundingBox

from tests.concurrency.conftest import run_threads


class TrackingPool(BufferPool):
    """A BufferPool that fails the instant a live buffer is re-handed.

    ``live`` holds the ids of buffers currently checked out; an
    acquire returning a buffer already in the set is the corruption
    the lock exists to prevent.
    """

    def __init__(self, max_entries: int = 8) -> None:
        super().__init__(max_entries)
        self.live: set[int] = set()
        self.double_handouts = 0
        self.handouts = 0
        self._track_lock = threading.Lock()

    def acquire_shape(self, window, height, width, device):
        buffer = super().acquire_shape(window, height, width, device)
        if buffer is not None:
            with self._track_lock:
                self.handouts += 1
                if id(buffer) in self.live:
                    self.double_handouts += 1
                self.live.add(id(buffer))
        return buffer

    def release(self, canvas) -> None:
        with self._track_lock:
            self.live.discard(id(canvas))
        super().release(canvas)


class TestPoolExclusivity:
    def test_raw_pool_no_double_handout(self):
        """Direct hammer: 8 threads cycling acquire/release on one
        shape never receive a buffer someone else still holds."""
        pool = TrackingPool(max_entries=4)
        window = BoundingBox(0, 0, 10, 10)

        def hammer(index, barrier):
            barrier.wait()
            for _ in range(200):
                buffer = pool.acquire_shape(tuple(window), 16, 16, "cpu")
                if buffer is None:
                    buffer = Canvas(window, 16, "cpu")
                # Touch the buffer so a shared handout would interleave.
                buffer.texture.data[0, 0, 0] = index
                assert buffer.texture.data[0, 0, 0] == index
                pool.release(buffer)

        run_threads(8, hammer)
        assert pool.double_handouts == 0
        assert pool.handouts > 0  # buffers actually recycled

    def test_engine_pool_exclusive_under_parallel_knn(self, cloud, window):
        """Engine-level stress: parallel kNN probe loops recycle pooled
        frames heavily; the tracking pool proves exclusivity."""
        engine = QueryEngine(max_workers=4)
        engine.buffer_pool = TrackingPool(8)
        xs, ys = cloud

        def hammer(index, barrier):
            barrier.wait()
            for repeat in range(2):
                engine.knn(
                    xs, ys, (20.0 + 7 * index, 30.0 + 5 * repeat), 5,
                    window=window, resolution=128,
                    force_plan="canvas-distance-probes",
                )

        run_threads(6, hammer)
        assert engine.buffer_pool.double_handouts == 0

    def test_pool_count_consistent_after_hammer(self):
        """The pool's entry count never goes negative or exceeds the
        cap, even when releases race acquires."""
        pool = BufferPool(max_entries=4)
        window = BoundingBox(0, 0, 10, 10)
        seed_canvases = [Canvas(window, 8, "cpu") for _ in range(8)]

        def hammer(index, barrier):
            barrier.wait()
            for i in range(300):
                got = pool.acquire_shape(tuple(window), 8, 8, "cpu")
                pool.release(got if got is not None
                             else seed_canvases[index])

        run_threads(8, hammer)
        assert 0 <= len(pool) <= 4
