"""Parallel ``execute_batch``: bit-identical to serial, attributed.

The batch entry point is the first place the engine overlaps real
work, so this suite pins the contract down hard: same results, same
plan choices, same hit/miss split as serial execution — regardless of
worker count, member mix, or completion order — plus per-member
timing/worker attribution in the report.
"""

from __future__ import annotations

import pytest

from repro.engine import BatchQuery, QueryEngine


def make_batch(cloud, polygons, window, n_members=16):
    """A deterministic mixed batch: repeated selections (shared
    constraint sets), an aggregation, a distance query and a knn."""
    xs, ys = cloud
    members = []
    for i in range(n_members - 3):
        poly = polygons[i % 4]  # 4 distinct recipes, each repeated
        members.append(
            BatchQuery.selection(xs, ys, [poly], window=window,
                                 resolution=128)
        )
    members.append(
        BatchQuery.aggregation(xs, ys, polygons[:3], window=window,
                               resolution=128)
    )
    members.append(
        BatchQuery.distance(xs, ys, (50.0, 50.0), 20.0, window=window,
                            resolution=128)
    )
    members.append(BatchQuery.knn(xs, ys, (30.0, 40.0), 5, window=window,
                                  resolution=128))
    return members


def outcome_fingerprint(outcome):
    """The comparable payload of one member outcome."""
    if hasattr(outcome, "ids"):
        return ("sel", outcome.ids.tobytes(), outcome.n_candidates,
                outcome.n_exact_tests)
    if hasattr(outcome, "groups"):
        return ("agg", outcome.groups.tobytes(), outcome.values.tobytes(),
                outcome.aggregate)
    raise AssertionError(f"unexpected outcome {type(outcome).__name__}")


class TestBitIdentical:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_parallel_matches_serial(self, cloud, polygons, window, workers):
        serial = QueryEngine().execute_batch(
            make_batch(cloud, polygons, window)
        )
        parallel = QueryEngine(max_workers=workers).execute_batch(
            make_batch(cloud, polygons, window)
        )
        assert [outcome_fingerprint(o) for o in serial.results] == [
            outcome_fingerprint(o) for o in parallel.results
        ]
        # Same plan choices: the planning sweep resolves cache-aware
        # pricing up front, so completion order cannot flip a plan.
        assert serial.report.plans == parallel.report.plans
        # Same cache traffic: single-flight turns racing misses into
        # (1 miss + k hits), exactly the serial split.
        assert serial.report.cache_hits == parallel.report.cache_hits
        assert serial.report.cache_misses == parallel.report.cache_misses
        assert serial.report.shared_constraint_sets == (
            parallel.report.shared_constraint_sets
        )

    def test_repeated_runs_are_stable(self, cloud, polygons, window):
        """Ten parallel runs on one engine: all bit-identical."""
        engine = QueryEngine(max_workers=4)
        fingerprints = [
            [outcome_fingerprint(o)
             for o in engine.execute_batch(
                 make_batch(cloud, polygons, window)).results]
            for _ in range(10)
        ]
        assert all(fp == fingerprints[0] for fp in fingerprints)


class TestAttribution:
    def test_member_report_covers_every_member(self, cloud, polygons, window):
        engine = QueryEngine(max_workers=4)
        outcome = engine.execute_batch(make_batch(cloud, polygons, window))
        report = outcome.report
        assert report.max_workers == 4
        assert len(report.members) == report.n_queries
        assert [m.index for m in report.members] == list(
            range(report.n_queries)
        )
        for member, (kind, plan) in zip(report.members, report.plans):
            assert member.kind == kind
            assert member.plan == plan
            assert member.execution_s >= 0.0
        workers_used = {m.worker for m in report.members}
        assert all(w.startswith("repro-batch") for w in workers_used)
        assert len(workers_used) > 1  # the batch actually spread out

    def test_serial_engine_reports_one_worker(self, cloud, polygons, window):
        outcome = QueryEngine().execute_batch(
            make_batch(cloud, polygons, window)
        )
        assert outcome.report.max_workers == 1
        assert len({m.worker for m in outcome.report.members}) == 1

    def test_describe_mentions_members(self, cloud, polygons, window):
        outcome = QueryEngine(max_workers=2).execute_batch(
            make_batch(cloud, polygons, window, n_members=4)
        )
        text = outcome.report.describe()
        assert "member[0]" in text and "2 worker(s)" in text


class TestOptOut:
    def test_parallel_false_members_run_on_caller(self, cloud, polygons,
                                                  window):
        import threading

        xs, ys = cloud
        members = [
            BatchQuery.selection(xs, ys, [polygons[i % 4]], window=window,
                                 resolution=128)
            for i in range(6)
        ]
        members.append(BatchQuery(
            "distance",
            dict(xs=xs, ys=ys, center=(50.0, 50.0), radius=15.0,
                 window=window, resolution=128),
            parallel=False,
        ))
        outcome = QueryEngine(max_workers=4).execute_batch(members)
        opt_out = outcome.report.members[-1]
        assert opt_out.worker == threading.current_thread().name
        pooled = outcome.report.members[:-1]
        assert all(m.worker.startswith("repro-batch") for m in pooled)

    def test_all_opt_out_runs_serially(self, cloud, polygons, window):
        xs, ys = cloud
        members = [
            BatchQuery("selection",
                       dict(xs=xs, ys=ys, polygons=[polygons[0]],
                            window=window, resolution=128),
                       parallel=False)
            for _ in range(3)
        ]
        outcome = QueryEngine(max_workers=4).execute_batch(members)
        assert outcome.report.max_workers == 1


class TestValidation:
    def test_bad_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            QueryEngine(max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            QueryEngine().execute_batch([], max_workers=0)

    def test_unknown_kind_still_rejected(self, cloud, window):
        xs, ys = cloud
        with pytest.raises(ValueError, match="unknown batch query kind"):
            QueryEngine(max_workers=4).execute_batch(
                [BatchQuery("nope", dict(xs=xs, ys=ys, window=window))]
            )

    def test_member_error_propagates(self, cloud, window):
        xs, ys = cloud
        members = [
            BatchQuery.selection(xs, ys, [], window=window, resolution=64)
        ]
        with pytest.raises(ValueError, match="at least one constraint"):
            QueryEngine(max_workers=4).execute_batch(members * 2)
