"""Spec-digest result cache: warm hits, invalidation, explain, threads.

The acceptance contract: warm hits are bit-identical to cold runs and
visible in ``explain``; ``register`` invalidates; entries are frozen;
``file:`` refs bypass; the cache is safe to hit from many threads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    AggregateSpec,
    ConstraintSpec,
    DatasetRegistry,
    GeometryData,
    ResultCache,
    SelectSpec,
    Session,
)
from repro.engine import QueryEngine
from repro.geometry.primitives import Polygon

from tests.concurrency.conftest import run_threads


def select_spec(seed=0):
    return SelectSpec(
        dataset=f"synthetic:uniform?n=4000&seed={seed}",
        constraints=[ConstraintSpec.rect((10, 10), (70, 60))],
        resolution=128,
    )


def cached_session(**kwargs) -> Session:
    return Session(engine=QueryEngine(),
                   result_cache_max_bytes=8 * 1024 * 1024, **kwargs)


class TestWarmHits:
    def test_warm_hit_is_bit_identical_and_shared(self):
        session = cached_session()
        spec = select_spec()
        cold = session.run(spec)
        warm = session.run(spec)
        assert warm is cold  # the entry itself, not a recompute
        assert (warm.ids == cold.ids).all()
        stats = session.result_cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_hit_skips_the_engine(self):
        engine = QueryEngine()
        session = Session(engine=engine,
                          result_cache_max_bytes=8 * 1024 * 1024)
        spec = select_spec()
        session.run(spec)
        executed_before = engine.cache.stats().builds
        session.run(spec)
        # No new canvas work: the warm run never reached the engine's
        # planner or cache.
        assert engine.cache.stats().builds == executed_before

    def test_hit_visible_in_explain(self):
        session = cached_session()
        spec = select_spec()
        cold_text = session.explain(spec)  # also warms the cache
        warm_text = session.explain(spec)
        assert "result-cache-hit" not in cold_text
        assert "result-cache-hit" in warm_text
        assert "spec-digest result cache" in warm_text

    def test_hit_recorded_in_take_reports(self):
        session = cached_session()
        spec = select_spec()
        session.run(spec)
        session.take_reports()
        session.run(spec)
        reports, produced = session.take_reports()
        assert produced == 1
        assert reports[0].plan == "result-cache-hit"

    def test_dict_and_object_forms_share_an_entry(self):
        session = cached_session()
        spec = select_spec()
        cold = session.run(spec.to_dict())
        warm = session.run(spec)
        assert warm is cold


class TestKeying:
    def test_semantic_change_misses(self):
        session = cached_session()
        a = session.run(select_spec(seed=0))
        b = session.run(select_spec(seed=1))
        assert session.result_cache.stats().hits == 0
        assert not (len(a.ids) == len(b.ids)
                    and (a.ids == b.ids).all())

    def test_register_invalidates(self):
        registry = DatasetRegistry()
        rng = np.random.default_rng(3)
        registry.register("pts", (rng.random(500) * 100,
                                  rng.random(500) * 100))
        session = Session(registry, engine=QueryEngine(),
                          result_cache_max_bytes=8 * 1024 * 1024)
        spec = SelectSpec(dataset="pts",
                          constraints=[ConstraintSpec.rect((0, 0), (50, 50))],
                          resolution=128)
        first = session.run(spec)
        registry.register("pts", (rng.random(500) * 100,
                                  rng.random(500) * 100))
        second = session.run(spec)  # must recompute on the new data
        assert session.result_cache.stats().hits == 0
        assert second is not first

    def test_file_refs_bypass(self, tmp_path):
        csv = tmp_path / "pts.csv"
        csv.write_text(
            "geometry\n" + "\n".join(
                f'"POINT ({i} {i})"' for i in range(20)
            )
        )
        session = cached_session()
        spec = SelectSpec(dataset=f"file:{csv}",
                          constraints=[ConstraintSpec.rect((0, 0), (10, 10))],
                          resolution=64)
        session.run(spec)
        session.run(spec)
        stats = session.result_cache.stats()
        assert stats.hits == 0 and stats.misses == 0  # never consulted

    def test_runtime_knobs_bypass(self):
        session = cached_session()
        spec = select_spec()
        session.run(spec, force_plan="per-polygon-pip")
        session.run(spec, force_plan="per-polygon-pip")
        stats = session.result_cache.stats()
        assert stats.hits == 0 and stats.misses == 0


class TestEntryIntegrity:
    def test_cached_result_is_frozen(self):
        session = cached_session()
        result = session.run(select_spec())
        with pytest.raises(ValueError):
            result.ids[0] = 999

    def test_aggregate_results_cache_too(self):
        session = cached_session()
        polys = [Polygon([(10, 10), (50, 10), (50, 50), (10, 50)]),
                 Polygon([(50, 50), (90, 50), (90, 90), (50, 90)])]
        spec = AggregateSpec(dataset="taxi:pickups?n=3000",
                             polygons=GeometryData(polys),
                             aggregate="count", resolution=128)
        cold = session.run(spec)
        warm = session.run(spec)
        assert warm is cold
        assert (warm.groups == cold.groups).all()
        with pytest.raises(ValueError):
            warm.values[0] = -1.0

    def test_byte_budget_evicts(self):
        cache = ResultCache(capacity=1024, max_bytes=1)
        cache.put(("a",), [(1, 2)] * 10)
        cache.put(("b",), [(3, 4)] * 10)
        assert cache.stats().size == 1  # the budget held
        assert cache.stats().evictions == 1

    def test_list_results_copy_per_hit(self):
        cache = ResultCache()
        cache.put(("pairs",), [(1, 2), (3, 4)])
        hit, first = cache.get(("pairs",))
        assert hit
        first.append((9, 9))  # a caller mutating its copy...
        _, second = cache.get(("pairs",))
        assert second == [(1, 2), (3, 4)]  # ...cannot poison the entry


class TestThreaded:
    def test_many_threads_one_compute(self):
        """8 threads x 4 repeats on one spec: every result identical,
        and the engine executed at most a thread-count of times (each
        thread's first miss may overlap before the first put lands)."""
        engine = QueryEngine()
        session = Session(engine=engine,
                          result_cache_max_bytes=8 * 1024 * 1024)
        spec = select_spec()
        results = {}

        def hammer(index, barrier):
            barrier.wait()
            for repeat in range(4):
                results[(index, repeat)] = session.run(spec)

        run_threads(8, hammer)
        fingerprints = {r.ids.tobytes() for r in results.values()}
        assert len(fingerprints) == 1
        stats = session.result_cache.stats()
        assert stats.hits >= 8 * 4 - 8  # at most one miss per thread
        assert stats.misses <= 8
