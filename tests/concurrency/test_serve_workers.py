"""Threaded serve: interleaved requests, responses matched in order.

The serve contract under ``--workers N``: output line *k* answers
non-blank input line *k*, bad lines answer in-band without killing the
loop, and one shared session serves every worker safely.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ConstraintSpec,
    KnnSpec,
    SelectSpec,
    Session,
    default_serve_session,
    serve_lines,
)
from repro.engine import QueryEngine


def tagged_request_lines(n=24):
    """Distinguishable requests: each one's answer reveals which
    request produced it (distinct k for knn, distinct seeds for
    selects), plus interleaved malformed lines and blanks."""
    lines = []
    expectations = []  # (kind, expected marker)
    for i in range(n):
        which = i % 4
        if which == 0:
            k = 1 + (i % 7)
            lines.append(json.dumps(KnnSpec(
                dataset="synthetic:uniform?n=3000&seed=1",
                query_point=(50.0, 50.0), k=k, resolution=128,
            ).to_dict()))
            expectations.append(("knn", k))
        elif which == 1:
            seed = i
            lines.append(json.dumps(SelectSpec(
                dataset=f"synthetic:uniform?n=2000&seed={seed}",
                constraints=[ConstraintSpec.rect((0, 0), (60, 60))],
                resolution=128,
            ).to_dict()))
            expectations.append(("select", seed))
        elif which == 2:
            lines.append("{ this is not json")
            expectations.append(("bad", None))
        else:
            lines.append("")  # blank: skipped, no response
            expectations.append(("blank", None))
    return lines, expectations


def reference_matches(expectations):
    """Serial ground truth for the select members, keyed by seed."""
    session = Session(engine=QueryEngine())
    matches = {}
    for kind, marker in expectations:
        if kind == "select" and marker not in matches:
            result = session.run(SelectSpec(
                dataset=f"synthetic:uniform?n=2000&seed={marker}",
                constraints=[ConstraintSpec.rect((0, 0), (60, 60))],
                resolution=128,
            ))
            matches[marker] = len(result.ids)
    return matches


class TestServeWorkers:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_interleaved_stream_matches_requests(self, workers):
        lines, expectations = tagged_request_lines()
        responses = list(serve_lines(iter(lines), workers=workers))
        non_blank = [e for e in expectations if e[0] != "blank"]
        assert len(responses) == len(non_blank)
        matches = reference_matches(expectations)
        for raw, (kind, marker) in zip(responses, non_blank):
            payload = json.loads(raw)
            if kind == "bad":
                assert payload["ok"] is False
                assert "bad JSON" in payload["error"]
            elif kind == "knn":
                assert payload["ok"] is True
                # k neighbours — the response proves which request
                # produced it.
                assert payload["result"]["matched"] == marker
            else:  # select
                assert payload["ok"] is True
                assert payload["result"]["matched"] == matches[marker]

    def test_threaded_equals_serial_output(self):
        lines, _ = tagged_request_lines()
        serial = list(serve_lines(iter(lines), workers=1))
        threaded = list(serve_lines(iter(lines), workers=4))

        def stable(raw):
            payload = json.loads(raw)
            payload.pop("report", None)  # timings differ run to run
            return payload

        assert [stable(r) for r in serial] == [stable(r) for r in threaded]

    def test_batch_requests_work_threaded(self):
        spec = SelectSpec(
            dataset="synthetic:uniform?n=2000&seed=5",
            constraints=[ConstraintSpec.rect((0, 0), (50, 50))],
            resolution=128,
        ).to_dict()
        lines = [json.dumps({"batch": [spec, spec]})] * 6
        responses = [
            json.loads(r)
            for r in serve_lines(iter(lines), workers=3)
        ]
        assert all(r["ok"] for r in responses)
        matched = {
            tuple(res["matched"] for res in r["results"])
            for r in responses
        }
        assert len(matched) == 1  # all six identical

    def test_result_cache_session_serves_hits(self):
        session = default_serve_session(
            result_cache_max_bytes=8 * 1024 * 1024
        )
        spec = json.dumps(SelectSpec(
            dataset="synthetic:uniform?n=2000&seed=9",
            constraints=[ConstraintSpec.rect((0, 0), (40, 40))],
            resolution=128,
        ).to_dict())
        responses = [
            json.loads(r)
            for r in serve_lines(iter([spec] * 8), session, workers=4)
        ]
        matched = {r["result"]["matched"] for r in responses}
        assert len(matched) == 1
        plans = [r["report"]["plan"] for r in responses]
        assert "result-cache-hit" in plans
        stats = session.result_cache.stats()
        assert stats.hits >= 1

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            list(serve_lines(iter([]), workers=0))
