"""N threads x M repeated specs against ONE session: the core battery.

Every thread runs the same deterministic spec mix through a single
shared :class:`Session` (barrier-synchronized start), then the suite
asserts what the concurrency layer promises:

- bit-identical results vs a serial reference run;
- exactly one canvas build per unique constraint (single-flight);
- ``take_reports`` attribution correct per thread — each thread sees
  exactly its own reports, in its own order, never a neighbour's.
"""

from __future__ import annotations


from repro.api import ConstraintSpec, KnnSpec, SelectSpec, Session
from repro.engine import QueryEngine

from tests.concurrency.conftest import run_threads

N_THREADS = 8
M_REPEATS = 3


def spec_mix():
    """Deterministic specs: 4 distinct selections + 1 knn, repeated."""
    selects = [
        SelectSpec(
            dataset=f"synthetic:uniform?n=4000&seed={seed}",
            constraints=[ConstraintSpec.rect((10 + seed, 10),
                                             (60 + seed, 70))],
            resolution=128,
        )
        for seed in range(4)
    ]
    knn = KnnSpec(dataset="synthetic:uniform?n=4000&seed=0",
                  query_point=(50.0, 50.0), k=7, resolution=128)
    return selects + [knn]


def fingerprint(result) -> tuple:
    return (result.ids.tobytes(), int(result.n_candidates),
            int(result.n_exact_tests))


class TestSessionHammer:
    def test_bit_identical_and_single_flight(self):
        serial_engine = QueryEngine()
        serial_session = Session(engine=serial_engine)
        reference = {
            i: fingerprint(serial_session.run(spec))
            for i, spec in enumerate(spec_mix())
        }

        engine = QueryEngine()
        session = Session(engine=engine)
        observed: dict[tuple[int, int, int], tuple] = {}

        def hammer(index, barrier):
            barrier.wait()
            for repeat in range(M_REPEATS):
                for i, spec in enumerate(spec_mix()):
                    observed[(index, repeat, i)] = fingerprint(
                        session.run(spec)
                    )

        run_threads(N_THREADS, hammer)

        assert len(observed) == N_THREADS * M_REPEATS * len(spec_mix())
        for (_, _, i), fp in observed.items():
            assert fp == reference[i]

        # Single-flight: however many threads and repeats hammered the
        # shared cache, each unique constraint built exactly as often
        # as one serial pass over the spec mix built it — once per key.
        assert engine.cache.stats().builds == serial_engine.cache.stats().builds

    def test_take_reports_attribution_per_thread(self):
        """Each thread's take_reports returns exactly its own stream."""
        engine = QueryEngine(history=128)
        session = Session(engine=engine)
        specs = spec_mix()
        per_thread: dict[int, tuple[list, int]] = {}

        def hammer(index, barrier):
            session.take_reports()  # anchor this thread before the race
            barrier.wait()
            # Each thread runs a *different number* of queries so a
            # cross-thread mixup cannot cancel out numerically.
            n_queries = 1 + index
            for i in range(n_queries):
                session.run(specs[i % len(specs)])
            per_thread[index] = session.take_reports()

        run_threads(N_THREADS, hammer)

        for index, (reports, produced) in per_thread.items():
            assert produced == 1 + index
            assert len(reports) == 1 + index
            # knn probes aside, every report here is a selection —
            # and each one was recorded by this thread's own run loop.
            for report in reports:
                assert report.query in ("selection", "knn")

        # The engine's global tally saw everything exactly once.
        assert engine.report_count >= sum(
            1 + i for i in range(N_THREADS)
        )

    def test_bounded_history_tally_still_true_per_thread(self):
        """A thread overflowing the bounded history still gets the true
        produced count (len(reports) < produced)."""
        engine = QueryEngine(history=4)
        session = Session(engine=engine)
        spec = spec_mix()[0]

        def hammer(index, barrier):
            session.take_reports()
            barrier.wait()
            for _ in range(6):
                session.run(spec)
            reports, produced = session.take_reports()
            assert produced == 6
            assert len(reports) == 4  # bounded deque forgot the rest

        run_threads(4, hammer)
