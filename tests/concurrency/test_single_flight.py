"""Single-flight canvas cache: one build per key, however many racers.

Regression for the double-build race the cache used to document
outright ("concurrent misses on the same key may build twice"): the
builder is instrumented to *block until both threads have missed*, so
without single-flight the old code is guaranteed — not just likely —
to rasterize twice.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import QueryEngine
from repro.engine.cache import CanvasCache

from tests.concurrency.conftest import run_threads


class TestSingleFlight:
    def test_simultaneous_misses_build_once(self):
        """Two threads miss the same key at the same instant; the
        builder runs once and both share the identical object."""
        cache = CanvasCache(capacity=4)
        builds = []

        def builder():
            builds.append(threading.current_thread().name)
            # Linger so the second miss arrives while this build is
            # still in flight (the old racy window).
            time.sleep(0.05)
            return object()

        results = {}

        def hammer(index, barrier):
            barrier.wait()
            results[index] = cache.get_or_build(("k",), builder)

        run_threads(2, hammer)
        assert len(builds) == 1
        assert results[0] is results[1]
        stats = cache.stats()
        assert stats.builds == 1
        assert stats.misses == 1  # the leader
        assert stats.hits == 1  # the waiter shares, counted as a hit
        assert stats.single_flight_waits == 1

    def test_many_threads_many_keys(self):
        """16 threads x 4 keys: builds == unique keys exactly."""
        cache = CanvasCache(capacity=16)
        build_count = {"n": 0}
        lock = threading.Lock()

        def make_builder(key):
            def builder():
                with lock:
                    build_count["n"] += 1
                time.sleep(0.01)
                return ("value", key)
            return builder

        def hammer(index, barrier):
            barrier.wait()
            for round_ in range(8):
                key = (index + round_) % 4
                value = cache.get_or_build((key,), make_builder(key))
                assert value == ("value", key)

        run_threads(16, hammer)
        assert build_count["n"] == 4
        assert cache.stats().builds == 4

    def test_failed_build_releases_waiters(self):
        """A raising builder must not wedge the waiters: they re-elect
        a leader and retry."""
        cache = CanvasCache(capacity=4)
        attempts = []
        lock = threading.Lock()

        def builder():
            with lock:
                attempts.append(threading.current_thread().name)
                first = len(attempts) == 1
            time.sleep(0.02)
            if first:
                raise RuntimeError("synthetic build failure")
            return "built"

        outcomes = {}

        def hammer(index, barrier):
            barrier.wait()
            try:
                outcomes[index] = cache.get_or_build(("k",), builder)
            except RuntimeError:
                outcomes[index] = "raised"

        run_threads(2, hammer)
        # One thread saw the failure (or both retried serially); the
        # value eventually lands and no thread hangs.
        assert "built" in outcomes.values()
        assert cache.stats().builds == 1

    def test_engine_constraint_canvas_single_flight(
        self, cloud, polygons, window
    ):
        """The engine seam: N threads requesting the same constraint
        canvas rasterize it exactly once (stats().builds)."""
        engine = QueryEngine()
        xs, ys = cloud
        canvases = {}

        def hammer(index, barrier):
            barrier.wait()
            canvases[index] = engine.constraint_canvas(
                polygons[:3], window, 128
            )

        run_threads(8, hammer)
        first = canvases[0]
        assert all(c is first for c in canvases.values())
        stats = engine.cache.stats()
        assert stats.builds == 1
        assert stats.misses == 1
        assert stats.hits == 7


class TestFrozenSharedEntries:
    def test_waiters_get_frozen_canvas(self, polygons, window):
        """Every sharer of a single-flight build gets the frozen entry:
        writing into it raises instead of corrupting later hits."""
        engine = QueryEngine()
        canvas = engine.constraint_canvas(polygons[:2], window, 64)
        with pytest.raises(ValueError):
            # repro-lint: disable=cached-out -- test asserts the frozen entry raises
            canvas.texture.data[0, 0, 0] = 1.0


class TestLeaderFailureInjection:
    """Satellite of the resilience PR: a *deterministically* injected
    builder fault (the fault harness, not a hand-rigged builder) must
    release every waiter, re-elect exactly one new leader, and leave
    the stats consistent."""

    def test_injected_leader_failure_releases_and_reelects(self):
        from repro.testing import FaultInjected, FaultPlan, FaultRule, inject

        cache = CanvasCache(capacity=4)
        builds = []

        def builder():
            builds.append(threading.current_thread().name)
            time.sleep(0.02)  # hold the flight open so waiters pile up
            return object()

        results = {}
        failures = []

        def hammer(index, barrier):
            barrier.wait()
            try:
                results[index] = cache.get_or_build(("k",), builder)
            except FaultInjected as exc:
                failures.append(exc)

        # The first builder call at the seam dies before building;
        # every retry proceeds normally.
        with inject(FaultPlan(FaultRule(site="cache.builder", at={1}))):
            run_threads(8, hammer)

        # Exactly one thread (the first leader) saw the injected fault;
        # everyone else was released, re-elected one new leader, and
        # shares the one successfully built value.
        assert len(failures) == 1
        assert len(results) == 7
        first = next(iter(results.values()))
        assert all(value is first for value in results.values())
        assert len(builds) == 1  # the failed leader never reached builder()
        stats = cache.stats()
        assert stats.builds == 1
        # The key is clean: no wedged in-flight entry, a later call hits.
        assert cache.get_or_build(("k",), builder) is first
        assert len(builds) == 1
        assert cache.stats().hits == stats.hits + 1

    def test_all_leaders_fail_no_waiter_hangs(self):
        from repro.testing import FaultInjected, FaultPlan, FaultRule, inject

        cache = CanvasCache(capacity=4)

        def builder():  # pragma: no cover - the fault fires first
            return object()

        outcomes = {}

        def hammer(index, barrier):
            barrier.wait()
            try:
                cache.get_or_build(("k",), builder)
            except FaultInjected:
                outcomes[index] = "raised"
            else:
                outcomes[index] = "built"

        # Every builder attempt dies: each racer eventually becomes a
        # leader, fails, and unwinds — nobody hangs, nothing caches.
        with inject(FaultPlan(
            FaultRule(site="cache.builder", probability=1.0, seed=3)
        )):
            run_threads(6, hammer)

        assert set(outcomes.values()) == {"raised"}
        assert len(outcomes) == 6
        stats = cache.stats()
        assert stats.builds == 0
        assert stats.bytes_used == 0
