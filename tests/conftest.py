"""Shared fixtures: deterministic point clouds, polygons and windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.data.polygons import hand_drawn_polygon
from repro.data.taxi import generate_taxi_trips


@pytest.fixture(scope="session")
def unit_window() -> BoundingBox:
    return BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture(scope="session")
def uniform_cloud(unit_window) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(42)
    n = 20_000
    return (
        rng.uniform(unit_window.xmin, unit_window.xmax, n),
        rng.uniform(unit_window.ymin, unit_window.ymax, n),
    )


@pytest.fixture(scope="session")
def concave_polygon() -> Polygon:
    """A concave pentagon used across selection tests."""
    return Polygon([(20, 20), (60, 25), (70, 60), (40, 80), (15, 55), (35, 45)])


@pytest.fixture(scope="session")
def holed_polygon() -> Polygon:
    """A square with a square hole."""
    return Polygon(
        [(10, 10), (90, 10), (90, 90), (10, 90)],
        holes=[[(40, 40), (60, 40), (60, 60), (40, 60)]],
    )


@pytest.fixture(scope="session")
def star_polygons() -> list[Polygon]:
    """Five hand-drawn-like polygons of varying complexity."""
    return [
        hand_drawn_polygon(
            n_vertices=8 + 8 * i, irregularity=0.1 + 0.15 * i,
            seed=i, center=(50, 50), radius=35,
        )
        for i in range(5)
    ]


@pytest.fixture(scope="session")
def taxi_trips():
    return generate_taxi_trips(10_000, seed=11)
