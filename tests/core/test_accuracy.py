"""Hybrid boundary refinement (Section 5.1) (A2)."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.core import algebra
from repro.core.accuracy import exact_candidate_mask, refine_point_samples
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.masks import mask_point_in_any_polygon

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)
SQUARE = Polygon([(20.0, 20.0), (80.0, 20.0), (80.0, 80.0), (20.0, 80.0)])


def _masked_candidates(xs, ys, polygon, resolution):
    constraint = Canvas.from_polygon(polygon, WINDOW, resolution=resolution)
    cs = CanvasSet.from_points(np.asarray(xs, float), np.asarray(ys, float))
    blended = algebra.blend(cs, constraint, PIP_MERGE)
    return algebra.mask(blended, mask_point_in_any_polygon(1.0))


class TestRefinement:
    def test_false_positives_on_boundary_removed(self):
        # At a coarse resolution, a point just outside the polygon's
        # edge shares a pixel with the boundary and passes the raster
        # mask; refinement must remove it.
        xs = [19.2, 50.0]
        ys = [50.0, 50.0]
        candidates = _masked_candidates(xs, ys, SQUARE, resolution=32)
        assert candidates.n_samples == 2  # both pass the raster stage
        refined, n_tests = refine_point_samples(candidates, [SQUARE])
        assert refined.keys.tolist() == [1]
        assert n_tests >= 1

    def test_interior_points_never_tested(self):
        xs = [50.0, 51.0, 52.0]
        ys = [50.0, 51.0, 52.0]
        candidates = _masked_candidates(xs, ys, SQUARE, resolution=512)
        refined, n_tests = refine_point_samples(candidates, [SQUARE])
        assert n_tests == 0
        assert refined.n_samples == 3

    def test_empty_input(self):
        refined, n_tests = refine_point_samples(CanvasSet.empty(), [SQUARE])
        assert refined.is_empty() and n_tests == 0

    def test_polygons_default_to_hybrid_index(self):
        xs = [19.2]
        ys = [50.0]
        candidates = _masked_candidates(xs, ys, SQUARE, resolution=32)
        # No explicit polygon list: the hybrid index supplies it.
        refined, n_tests = refine_point_samples(candidates)
        assert refined.is_empty()
        assert n_tests == 1

    def test_min_containing_conjunction(self):
        other = Polygon([(40.0, 20.0), (95.0, 20.0), (95.0, 80.0), (40.0, 80.0)])
        # Boundary point of SQUARE that is inside `other` only.
        xs = [81.0]
        ys = [50.0]
        candidates = _masked_candidates(xs, ys, SQUARE, resolution=16)
        if candidates.n_samples:
            refined, _ = refine_point_samples(
                candidates, [SQUARE, other], min_containing=2
            )
            assert refined.is_empty()


class TestCandidateSplit:
    def test_split_masks_partition(self):
        xs = np.linspace(15, 85, 40)
        ys = np.full(40, 50.0)
        candidates = _masked_candidates(xs, ys, SQUARE, resolution=64)
        certain, uncertain = exact_candidate_mask(candidates)
        assert (certain ^ uncertain).all()
        assert certain.sum() + uncertain.sum() == candidates.n_samples


class TestResolutionInvariance:
    @pytest.mark.parametrize("resolution", [16, 64, 256, 1024])
    def test_exact_at_every_resolution(self, resolution):
        rng = np.random.default_rng(71)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        from repro.geometry.predicates import points_in_polygon

        candidates = _masked_candidates(xs, ys, SQUARE, resolution=resolution)
        refined, _ = refine_point_samples(candidates, [SQUARE])
        truth = set(np.nonzero(points_in_polygon(xs, ys, SQUARE))[0].tolist())
        assert set(refined.keys.tolist()) == truth

    def test_coarser_resolution_needs_more_tests(self):
        rng = np.random.default_rng(72)
        xs = rng.uniform(0, 100, 5000)
        ys = rng.uniform(0, 100, 5000)
        tests_by_resolution = []
        for resolution in (32, 128, 512):
            candidates = _masked_candidates(xs, ys, SQUARE,
                                            resolution=resolution)
            _, n_tests = refine_point_samples(candidates, [SQUARE])
            tests_by_resolution.append(n_tests)
        assert tests_by_resolution[0] > tests_by_resolution[2]
