"""Tests for the fundamental operators: laws and closure."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.geometry.transforms import AffineTransform
from repro.core import algebra
from repro.core.blendfuncs import PIP_MERGE, POLY_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.masks import NotNull, mask_point_in_any_polygon
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    channel,
)

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)
SQUARE = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])


def _point_canvas(xs, ys, **kwargs):
    return Canvas.from_points(
        np.asarray(xs, float), np.asarray(ys, float), WINDOW,
        resolution=100, **kwargs,
    )


class TestGeometricTransform:
    def test_affine_translation_dense(self):
        canvas = _point_canvas([10.0], [10.0])
        moved = algebra.geometric_transform(
            canvas, AffineTransform.translation(30, 40)
        )
        assert isinstance(moved, Canvas)
        _, valid = moved.sample(40, 50)
        assert valid[DIM_POINT]
        _, old = moved.sample(10, 10)
        assert not old[DIM_POINT]

    def test_affine_rotation_dense_polygon(self):
        canvas = Canvas.from_polygon(SQUARE, WINDOW, resolution=100)
        rotated = algebra.geometric_transform(
            canvas, AffineTransform.rotation(np.pi / 2, center=(50, 50))
        )
        # The square is symmetric under this rotation: coverage holds.
        _, valid = rotated.sample(50, 50)
        assert valid[DIM_AREA]

    def test_callable_gamma_dense(self):
        canvas = _point_canvas([10.0], [10.0])
        moved = algebra.geometric_transform(
            canvas, lambda xs, ys: (xs + 50.0, ys)
        )
        _, valid = moved.sample(60, 10)
        assert valid[DIM_POINT]

    def test_sparse_positions_rewritten(self):
        cs = CanvasSet.from_points(np.array([1.0]), np.array([2.0]))
        out = algebra.geometric_transform(
            cs, AffineTransform.translation(10, 20)
        )
        assert isinstance(out, CanvasSet)
        assert (out.xs[0], out.ys[0]) == (11.0, 22.0)

    def test_value_gamma_groups_by_id(self):
        """γc(s) = (s[2][0], 0) groups samples by their polygon id."""
        cs = CanvasSet.from_points(
            np.array([1.0, 2.0, 3.0]), np.array([1.0, 1.0, 1.0])
        )
        # Stamp area ids 5, 5, 7 on the three samples.
        cs.data[:, channel(DIM_AREA, FIELD_ID)] = [5.0, 5.0, 7.0]
        cs.valid[:, DIM_AREA] = True

        def gamma(data, valid):
            return data[:, channel(DIM_AREA, FIELD_ID)] + 0.5, np.full(3, 0.5)

        moved = algebra.geometric_transform_by_value(cs, gamma)
        assert isinstance(moved, CanvasSet)
        assert moved.xs.tolist() == [5.5, 5.5, 7.5]


class TestValueTransform:
    def test_dense_fragment_pass(self):
        canvas = _point_canvas([10.0], [10.0])

        def bump_count(xs, ys, data, valid):
            out = data.copy()
            out[..., channel(DIM_POINT, FIELD_COUNT)] += 1.0
            return out, valid

        out = algebra.value_transform(canvas, bump_count)
        assert isinstance(out, Canvas)
        data, _ = out.sample(10, 10)
        assert data[channel(DIM_POINT, FIELD_COUNT)] == 2.0

    def test_dense_receives_world_coordinates(self):
        canvas = Canvas(WINDOW, resolution=10)
        seen = {}

        def probe(xs, ys, data, valid):
            seen["x_range"] = (float(xs.min()), float(xs.max()))
            return data, valid

        algebra.value_transform(canvas, probe)
        assert seen["x_range"] == (5.0, 95.0)

    def test_sparse(self):
        cs = CanvasSet.from_points(np.array([1.0]), np.array([1.0]))

        def nullify(xs, ys, data, valid):
            return data, np.zeros_like(valid)

        out = algebra.value_transform(cs, nullify)
        assert isinstance(out, CanvasSet)
        assert not out.valid.any()


class TestMask:
    def test_dense_mask_nulls_nonmatching(self):
        canvas = _point_canvas([10.0, 50.0], [10.0, 50.0])
        constraint = Canvas.from_polygon(SQUARE, WINDOW, resolution=100)
        blended = algebra.blend(canvas, constraint, PIP_MERGE)
        masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
        assert isinstance(masked, Canvas)
        _, v_in = masked.sample(50, 50)
        _, v_out = masked.sample(10, 10)
        assert v_in[DIM_POINT] and not v_out.any()

    def test_mask_idempotent(self):
        canvas = _point_canvas([50.0], [50.0])
        pred = NotNull(DIM_POINT)
        once = algebra.mask(canvas, pred)
        twice = algebra.mask(once, pred)
        assert isinstance(once, Canvas) and isinstance(twice, Canvas)
        assert np.array_equal(once.texture.data, twice.texture.data)
        assert np.array_equal(once.texture.valid, twice.texture.valid)

    def test_sparse_mask_filters(self):
        cs = CanvasSet.from_points(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        cs.valid[1, DIM_POINT] = False
        out = algebra.mask(cs, NotNull(DIM_POINT))
        assert isinstance(out, CanvasSet)
        assert out.n_samples == 1


class TestBlend:
    def test_dense_dense_requires_compatibility(self):
        a = Canvas(WINDOW, resolution=32)
        b = Canvas(WINDOW, resolution=64)
        with pytest.raises(ValueError):
            algebra.blend(a, b, PIP_MERGE)

    def test_dense_dense_merges(self):
        pts = _point_canvas([50.0], [50.0])
        constraint = Canvas.from_polygon(SQUARE, WINDOW, resolution=100)
        out = algebra.blend(pts, constraint, PIP_MERGE)
        assert isinstance(out, Canvas)
        data, valid = out.sample(50, 50)
        assert valid[DIM_POINT] and valid[DIM_AREA]

    def test_closure_output_types(self):
        """Every operator yields a canvas (set) — the algebra is closed."""
        pts_sparse = CanvasSet.from_points(np.array([50.0]), np.array([50.0]))
        constraint = Canvas.from_polygon(SQUARE, WINDOW, resolution=64)
        blended = algebra.blend(pts_sparse, constraint, PIP_MERGE)
        masked = algebra.mask(blended, NotNull(DIM_POINT))
        moved = algebra.geometric_transform(
            masked, AffineTransform.translation(1, 1)
        )
        assert isinstance(moved, CanvasSet)

    def test_multiway_blend_fold(self):
        c1 = Canvas.from_polygon(SQUARE, WINDOW, resolution=64, record_id=1)
        c2 = Canvas.from_polygon(
            Polygon([(10, 10), (40, 10), (40, 40), (10, 40)]),
            WINDOW, resolution=64, record_id=2,
        )
        out = algebra.multiway_blend([c1, c2], POLY_MERGE)
        data, valid = out.sample(30, 30)  # overlap of both squares
        assert data[channel(DIM_AREA, FIELD_COUNT)] == 2.0

    def test_multiway_blend_empty_raises(self):
        with pytest.raises(ValueError):
            algebra.multiway_blend([], POLY_MERGE)


class TestDissect:
    def test_one_sample_per_nonnull_pixel(self):
        canvas = _point_canvas([10.0, 50.0], [10.0, 50.0])
        pieces = algebra.dissect(canvas)
        assert pieces.n_samples == 2
        assert pieces.valid[:, DIM_POINT].all()

    def test_dissect_accumulate_roundtrip(self):
        """D then B*[+] back into the same frame preserves totals."""
        canvas = _point_canvas(
            [10.0, 10.2, 50.0], [10.0, 10.2, 50.0],
            values=np.array([1.0, 2.0, 4.0]),
        )
        pieces = algebra.dissect(canvas)
        acc = pieces.accumulate_by_position(
            WINDOW, (canvas.height, canvas.width)
        )
        total_before = canvas.field(DIM_POINT, FIELD_COUNT).sum()
        total_after = acc.field(DIM_POINT, FIELD_COUNT).sum()
        assert total_before == total_after == 3.0

    def test_map_canvas_constant_gamma(self):
        canvas = _point_canvas([10.0, 90.0], [10.0, 90.0])
        aligned = algebra.map_canvas(
            canvas, algebra.constant_gamma(50.0, 50.0)
        )
        assert isinstance(aligned, CanvasSet)
        assert (aligned.xs == 50.0).all()
        assert (aligned.ys == 50.0).all()


class TestUtilityOperators:
    def test_circ(self):
        c = algebra.circ((50, 50), 10, WINDOW, resolution=64)
        _, valid = c.sample(50, 50)
        assert valid[DIM_AREA]

    def test_rect(self):
        c = algebra.rect((10, 10), (30, 30), WINDOW, resolution=64)
        _, valid = c.sample(20, 20)
        assert valid[DIM_AREA]

    def test_halfspace(self):
        c = algebra.halfspace(0, 1, -50, WINDOW, resolution=64)  # y < 50
        _, v_low = c.sample(50, 20)
        _, v_high = c.sample(50, 80)
        assert v_low[DIM_AREA] and not v_high[DIM_AREA]
