"""Property-based algebraic laws of the operators.

Section 3's design claims, checked as properties: closure, the
identity behaviour of the empty canvas under blending, associativity
consequences for multiway blends, transform composition, and
mask/blend commutation where it must hold.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.geometry.transforms import AffineTransform
from repro.core import algebra
from repro.core.blendfuncs import AGG_ADD, PIP_MERGE, POLY_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.masks import NotNull, mask_point_in_any_polygon
from repro.core.objectinfo import DIM_AREA, DIM_POINT, FIELD_COUNT, channel

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)

coords = st.lists(
    st.tuples(st.floats(1, 99), st.floats(1, 99)),
    min_size=1, max_size=40,
)


def _points_canvas(pts):
    xs = np.array([p[0] for p in pts])
    ys = np.array([p[1] for p in pts])
    return Canvas.from_points(xs, ys, WINDOW, resolution=64)


def _square(x0, y0, size):
    return Polygon([
        (x0, y0), (x0 + size, y0), (x0 + size, y0 + size), (x0, y0 + size),
    ])


class TestEmptyCanvasIdentity:
    @given(coords)
    @settings(max_examples=30, deadline=None)
    def test_blend_with_empty_preserves_nonnull(self, pts):
        """Blending with the empty canvas adds no information."""
        canvas = _points_canvas(pts)
        empty = canvas.blank_like()
        out = algebra.blend(canvas, empty, AGG_ADD)
        assert isinstance(out, Canvas)
        np.testing.assert_array_equal(
            out.texture.valid, canvas.texture.valid
        )
        # The + blend zeroes the id field by definition (Section 4.3);
        # counts and values must be untouched.
        for ch in (channel(DIM_POINT, 1), channel(DIM_POINT, 2)):
            np.testing.assert_allclose(
                out.texture.data[:, :, ch], canvas.texture.data[:, :, ch]
            )

    @given(coords)
    @settings(max_examples=30, deadline=None)
    def test_mask_of_empty_is_empty(self, pts):
        empty = _points_canvas(pts).blank_like()
        out = algebra.mask(empty, NotNull(DIM_POINT))
        assert isinstance(out, Canvas)
        assert out.is_empty()


class TestMultiwayBlendRegrouping:
    @given(
        st.lists(
            st.tuples(st.floats(5, 60), st.floats(5, 60), st.floats(5, 30)),
            min_size=2, max_size=5,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_associative_fold_groupings_agree(self, squares):
        """⊕ is associative: left and right folds agree on counts
        (Section 3.2's optimizer-freedom claim)."""
        canvases = [
            Canvas.from_polygon(_square(x, y, s), WINDOW, resolution=64,
                                record_id=i + 1)
            for i, (x, y, s) in enumerate(squares)
        ]
        left = algebra.multiway_blend(canvases, POLY_MERGE)
        right = canvases[-1].copy()
        for other in reversed(canvases[:-1]):
            right = algebra.blend(right, other, POLY_MERGE)
        cnt = channel(DIM_AREA, FIELD_COUNT)
        np.testing.assert_allclose(
            left.texture.data[:, :, cnt], right.texture.data[:, :, cnt]
        )
        np.testing.assert_array_equal(
            left.texture.valid[:, :, DIM_AREA],
            right.texture.valid[:, :, DIM_AREA],
        )


class TestTransformComposition:
    @given(
        st.floats(-20, 20), st.floats(-20, 20),
        st.floats(-20, 20), st.floats(-20, 20),
        coords,
    )
    @settings(max_examples=30, deadline=None)
    def test_sparse_translation_composes(self, dx1, dy1, dx2, dy2, pts):
        """G[t2](G[t1](C)) == G[t2 ∘ t1](C) on canvas sets."""
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        cs = CanvasSet.from_points(xs, ys)
        t1 = AffineTransform.translation(dx1, dy1)
        t2 = AffineTransform.translation(dx2, dy2)
        stepwise = algebra.geometric_transform(
            algebra.geometric_transform(cs, t1), t2
        )
        composed = algebra.geometric_transform(cs, t2 @ t1)
        assert isinstance(stepwise, CanvasSet)
        assert isinstance(composed, CanvasSet)
        np.testing.assert_allclose(stepwise.xs, composed.xs, atol=1e-9)
        np.testing.assert_allclose(stepwise.ys, composed.ys, atol=1e-9)

    @given(coords)
    @settings(max_examples=20, deadline=None)
    def test_identity_transform_is_noop_sparse(self, pts):
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        cs = CanvasSet.from_points(xs, ys)
        out = algebra.geometric_transform(cs, AffineTransform.identity())
        assert isinstance(out, CanvasSet)
        np.testing.assert_array_equal(out.xs, cs.xs)
        np.testing.assert_array_equal(out.ys, cs.ys)


class TestMaskProperties:
    @given(coords, st.floats(10, 50), st.floats(10, 50), st.floats(5, 40))
    @settings(max_examples=20, deadline=None)
    def test_mask_monotone(self, pts, x0, y0, size):
        """Masked output's non-null set is a subset of the input's."""
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        cs = CanvasSet.from_points(xs, ys)
        constraint = Canvas.from_polygon(
            _square(x0, y0, size), WINDOW, resolution=64
        )
        blended = algebra.blend(cs, constraint, PIP_MERGE)
        masked = algebra.mask(blended, mask_point_in_any_polygon(1.0))
        assert isinstance(blended, CanvasSet)
        assert isinstance(masked, CanvasSet)
        assert masked.n_samples <= blended.n_samples
        assert set(masked.keys.tolist()) <= set(blended.keys.tolist())

    @given(coords)
    @settings(max_examples=20, deadline=None)
    def test_dissect_preserves_sample_count(self, pts):
        """D(C) yields exactly one member canvas per non-null point."""
        canvas = _points_canvas(pts)
        pieces = algebra.dissect(canvas)
        assert pieces.n_samples == canvas.texture.nonnull_count()
