"""Tests for the paper's blend functions ⊙, ⊕ and +."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blendfuncs import AGG_ADD, PAPER_MODES, PIP_MERGE, POLY_MERGE
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    Info,
    channel,
    triple_values,
)


def _sample(point=None, line=None, area=None):
    values, groups = triple_values(point=point, line=line, area=area)
    return values[None, :], groups[None, :]


class TestPipMerge:
    """The ⊙ of Section 4.1: s[0] from left, s[2] from right."""

    def test_takes_point_from_left_area_from_right(self):
        d1, v1 = _sample(point=Info(id=5, count=1, value=2.0))
        d2, v2 = _sample(area=Info(id=1, count=1))
        d, v = PIP_MERGE(d1, v1, d2, v2)
        assert v[0, DIM_POINT] and v[0, DIM_AREA]
        assert d[0, channel(DIM_POINT, 0)] == 5.0
        assert d[0, channel(DIM_AREA, 0)] == 1.0

    def test_line_slot_always_null(self):
        d1, v1 = _sample(point=Info(id=1), line=Info(id=1))
        d2, v2 = _sample(line=Info(id=2), area=Info(id=2))
        _, v = PIP_MERGE(d1, v1, d2, v2)
        assert not v[0, DIM_LINE]

    def test_right_point_slot_ignored(self):
        d1, v1 = _sample()
        d2, v2 = _sample(point=Info(id=9), area=Info(id=2))
        d, v = PIP_MERGE(d1, v1, d2, v2)
        assert not v[0, DIM_POINT]
        assert v[0, DIM_AREA]


class TestPolyMerge:
    """The ⊕ of Section 4.1: left id/value, counts added."""

    def test_counts_add(self):
        d1, v1 = _sample(area=Info(id=3, count=1, value=7.0))
        d2, v2 = _sample(area=Info(id=1, count=1))
        d, v = POLY_MERGE(d1, v1, d2, v2)
        assert d[0, channel(DIM_AREA, 1)] == 2.0
        assert d[0, channel(DIM_AREA, 0)] == 3.0  # left id kept
        assert d[0, channel(DIM_AREA, 2)] == 7.0  # left value kept

    def test_singleton_right_passes_through(self):
        d1, v1 = _sample()
        d2, v2 = _sample(area=Info(id=4, count=1))
        d, v = POLY_MERGE(d1, v1, d2, v2)
        assert v[0, DIM_AREA]
        assert d[0, channel(DIM_AREA, 0)] == 4.0
        assert d[0, channel(DIM_AREA, 1)] == 1.0

    def test_null_both_stays_null(self):
        d1, v1 = _sample()
        d2, v2 = _sample()
        _, v = POLY_MERGE(d1, v1, d2, v2)
        assert not v.any()

    @given(
        st.integers(0, 5), st.integers(0, 5), st.integers(0, 5),
        st.booleans(), st.booleans(), st.booleans(),
    )
    @settings(max_examples=60)
    def test_associative_in_count(self, c1, c2, c3, a1, a2, a3):
        def mk(count, on):
            return _sample(area=Info(id=1, count=count) if on else None)

        d1, v1 = mk(c1, a1)
        d2, v2 = mk(c2, a2)
        d3, v3 = mk(c3, a3)
        left = POLY_MERGE(*POLY_MERGE(d1, v1, d2, v2), d3, v3)
        right = POLY_MERGE(d1, v1, *POLY_MERGE(d2, v2, d3, v3))
        cnt = channel(DIM_AREA, 1)
        assert left[0][0, cnt] == right[0][0, cnt]
        assert (left[1] == right[1]).all()


class TestAggAdd:
    """The + of Section 4.3: point count/value sums, right area slot."""

    def test_counts_and_values_sum(self):
        d1, v1 = _sample(point=Info(id=1, count=2, value=10.0))
        d2, v2 = _sample(point=Info(id=2, count=3, value=5.0))
        d, v = AGG_ADD(d1, v1, d2, v2)
        assert d[0, channel(DIM_POINT, 1)] == 5.0
        assert d[0, channel(DIM_POINT, 2)] == 15.0
        assert d[0, channel(DIM_POINT, 0)] == 0.0  # id zeroed per paper

    def test_area_slot_from_right(self):
        d1, v1 = _sample(point=Info(id=1), area=Info(id=7, count=1))
        d2, v2 = _sample(point=Info(id=2), area=Info(id=9, count=1))
        d, v = AGG_ADD(d1, v1, d2, v2)
        assert d[0, channel(DIM_AREA, 0)] == 9.0

    def test_area_slot_survives_null_right(self):
        d1, v1 = _sample(point=Info(id=1), area=Info(id=7, count=1))
        d2, v2 = _sample(point=Info(id=2))
        d, v = AGG_ADD(d1, v1, d2, v2)
        assert v[0, DIM_AREA]
        assert d[0, channel(DIM_AREA, 0)] == 7.0

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.floats(-10, 10)),
                 min_size=2, max_size=6),
    )
    @settings(max_examples=40)
    def test_fold_order_independent_for_sums(self, items):
        """Summing point slots is fold-order independent (associativity
        licenses the optimizer's regrouping, Section 3.2)."""
        samples = [
            _sample(point=Info(id=0, count=c, value=val))
            for c, val in items
        ]

        def fold(seq):
            d, v = seq[0]
            for d2, v2 in seq[1:]:
                d, v = AGG_ADD(d, v, d2, v2)
            return d

        forward = fold(samples)
        backward = fold(samples[::-1])
        cnt, val = channel(DIM_POINT, 1), channel(DIM_POINT, 2)
        assert forward[0, cnt] == backward[0, cnt]
        assert forward[0, val] == pytest.approx(backward[0, val])


class TestRegistry:
    def test_paper_modes_named(self):
        assert set(PAPER_MODES) == {
            "pip-merge", "line-merge", "poly-merge", "agg-add",
        }
        assert PAPER_MODES["poly-merge"].associative
