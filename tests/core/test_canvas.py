"""Tests for the dense canvas."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import (
    GeometryCollection,
    LineString,
    Point,
    Polygon,
)
from repro.gpu.device import Device
from repro.core.canvas import Canvas
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
)

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


class TestConstruction:
    def test_empty_canvas_is_empty(self):
        canvas = Canvas.empty(WINDOW, resolution=64)
        assert canvas.is_empty()

    def test_degenerate_window_raises(self):
        with pytest.raises(ValueError):
            Canvas(BoundingBox(0, 0, 0, 10), 64)

    def test_resolution_int_respects_aspect(self):
        canvas = Canvas(BoundingBox(0, 0, 100, 50), resolution=128)
        assert canvas.width == 128
        assert canvas.height == 64

    def test_resolution_tuple(self):
        canvas = Canvas(WINDOW, resolution=(32, 64))
        assert (canvas.height, canvas.width) == (32, 64)


class TestCoordinateMapping:
    def test_world_pixel_roundtrip(self):
        canvas = Canvas(WINDOW, resolution=100)
        xs, ys = canvas.pixel_to_world(np.array([0]), np.array([0]))
        assert (xs[0], ys[0]) == (0.5, 0.5)
        px, py = canvas.world_to_pixel(xs, ys)
        assert (px[0], py[0]) == (0.5, 0.5)

    def test_pixel_center_grids_shape(self):
        canvas = Canvas(WINDOW, resolution=(10, 20))
        gx, gy = canvas.pixel_center_grids()
        assert gx.shape == (10, 20) and gy.shape == (10, 20)
        assert gx[0, 0] == canvas.window.xmin + 0.5 * canvas.dx


class TestDrawPoints:
    def test_accumulate_counts(self):
        canvas = Canvas(WINDOW, resolution=10)
        canvas.draw_points(
            np.array([5.0, 5.0, 50.0]), np.array([5.0, 5.0, 50.0])
        )
        assert canvas.field(DIM_POINT, FIELD_COUNT)[0, 0] == 2.0
        assert canvas.field(DIM_POINT, FIELD_COUNT)[5, 5] == 1.0

    def test_values_summed(self):
        canvas = Canvas(WINDOW, resolution=10)
        canvas.draw_points(
            np.array([5.0, 5.0]), np.array([5.0, 5.0]),
            values=np.array([2.0, 3.0]),
        )
        assert canvas.field(DIM_POINT, FIELD_VALUE)[0, 0] == 5.0

    def test_out_of_window_points_dropped(self):
        canvas = Canvas(WINDOW, resolution=10)
        canvas.draw_points(np.array([-5.0, 500.0]), np.array([5.0, 5.0]))
        assert canvas.is_empty()

    def test_sample_at_point(self):
        canvas = Canvas(WINDOW, resolution=10)
        canvas.draw_points(np.array([25.0]), np.array([35.0]),
                           ids=np.array([42]))
        data, valid = canvas.sample(25.0, 35.0)
        assert valid[DIM_POINT]
        assert data[0] == 42.0


class TestDrawPolygon:
    def test_interior_and_boundary(self):
        canvas = Canvas(WINDOW, resolution=100)
        poly = Polygon([(10, 10), (60, 10), (60, 60), (10, 60)])
        canvas.draw_polygon(poly, record_id=7)
        data, valid = canvas.sample(30, 30)
        assert valid[DIM_AREA]
        assert data[DIM_AREA * 3 + FIELD_ID] == 7.0
        # The boundary ribbon is flagged.
        px, py = canvas.world_to_pixel(np.array([10.0]), np.array([30.0]))
        assert canvas.boundary[int(py[0]), int(px[0])]
        # Hybrid index remembers the vector polygon.
        assert canvas.geometries[7] is poly

    def test_hole_is_null(self):
        canvas = Canvas(WINDOW, resolution=200)
        poly = Polygon(
            [(10, 10), (90, 10), (90, 90), (10, 90)],
            holes=[[(40, 40), (60, 40), (60, 60), (40, 60)]],
        )
        canvas.draw_polygon(poly, record_id=1)
        _, valid_mid = canvas.sample(50, 50)
        assert not valid_mid[DIM_AREA]
        _, valid_ring = canvas.sample(20, 20)
        assert valid_ring[DIM_AREA]

    def test_accumulate_count_for_overlaps(self):
        canvas = Canvas(WINDOW, resolution=100)
        canvas.draw_polygon(
            Polygon([(10, 10), (60, 10), (60, 60), (10, 60)]), 1,
            accumulate_count=True,
        )
        canvas.draw_polygon(
            Polygon([(30, 30), (80, 30), (80, 80), (30, 80)]), 2,
            accumulate_count=True,
        )
        data, _ = canvas.sample(45, 45)  # overlap region
        assert data[DIM_AREA * 3 + FIELD_COUNT] == 2.0
        data, _ = canvas.sample(15, 15)  # only polygon 1
        assert data[DIM_AREA * 3 + FIELD_COUNT] == 1.0


class TestDrawLineAndCollection:
    def test_linestring_conservative(self):
        canvas = Canvas(WINDOW, resolution=50)
        line = LineString([(5, 5), (95, 5)])
        canvas.draw_linestring(line, record_id=3)
        data, valid = canvas.sample(50, 5)
        assert valid[DIM_LINE]
        assert data[DIM_LINE * 3 + FIELD_ID] == 3.0

    def test_figure3_heterogeneous_object(self):
        """All primitives of one object share its id (Figure 3)."""
        obj = GeometryCollection([
            Polygon([(10, 10), (30, 10), (30, 30), (10, 30)]),
            LineString([(30, 20), (60, 20)]),
            Point(70, 20),
        ])
        canvas = Canvas(WINDOW, resolution=100)
        canvas.draw_geometry(obj, record_id=9)
        d_area, v_area = canvas.sample(20, 20)
        d_line, v_line = canvas.sample(45, 20)
        d_point, v_point = canvas.sample(70, 20)
        assert v_area[DIM_AREA] and d_area[DIM_AREA * 3 + FIELD_ID] == 9.0
        assert v_line[DIM_LINE] and d_line[DIM_LINE * 3 + FIELD_ID] == 9.0
        assert v_point[DIM_POINT] and d_point[DIM_POINT * 3 + FIELD_ID] == 9.0


class TestUtilityCanvases:
    def test_circle_coverage(self):
        canvas = Canvas.circle((50, 50), 20, WINDOW, resolution=200)
        _, v_in = canvas.sample(50, 50)
        _, v_out = canvas.sample(90, 90)
        assert v_in[DIM_AREA] and not v_out[DIM_AREA]

    def test_circle_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Canvas.circle((0, 0), -1, WINDOW)

    def test_rectangle(self):
        canvas = Canvas.rectangle((20, 20), (60, 40), WINDOW, resolution=100)
        _, v_in = canvas.sample(40, 30)
        _, v_out = canvas.sample(40, 60)
        assert v_in[DIM_AREA] and not v_out[DIM_AREA]

    def test_rectangle_degenerate_raises(self):
        with pytest.raises(ValueError):
            Canvas.rectangle((1, 1), (1, 5), WINDOW)

    def test_halfspace(self):
        # x - 50 < 0: left half of the window.
        canvas = Canvas.halfspace(1, 0, -50, WINDOW, resolution=100)
        _, v_left = canvas.sample(20, 50)
        _, v_right = canvas.sample(80, 50)
        assert v_left[DIM_AREA] and not v_right[DIM_AREA]

    def test_halfspace_degenerate_raises(self):
        with pytest.raises(ValueError):
            Canvas.halfspace(0, 0, 1, WINDOW)


class TestCopying:
    def test_copy_independent(self):
        canvas = Canvas(WINDOW, resolution=16)
        canvas.draw_points(np.array([5.0]), np.array([5.0]))
        clone = canvas.copy()
        clone.texture.clear()
        assert not canvas.is_empty()

    def test_blank_like_matches_frame(self):
        canvas = Canvas(WINDOW, resolution=(16, 32),
                        device=Device.integrated())
        blank = canvas.blank_like()
        assert blank.compatible_with(canvas)
        assert blank.device == canvas.device
        assert blank.is_empty()
