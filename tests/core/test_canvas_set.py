"""Tests for the sparse canvas-set representation."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.objectinfo import (
    DIM_AREA,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
)

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


class TestFromPoints:
    def test_one_sample_per_record(self):
        cs = CanvasSet.from_points(
            np.array([1.0, 2.0]), np.array([3.0, 4.0])
        )
        assert cs.n_samples == 2 and cs.n_records == 2
        assert cs.valid[:, DIM_POINT].all()
        assert not cs.valid[:, DIM_AREA].any()

    def test_ids_and_values(self):
        cs = CanvasSet.from_points(
            np.array([1.0]), np.array([2.0]),
            ids=np.array([42]), values=np.array([3.5]),
        )
        assert cs.field(DIM_POINT, FIELD_ID)[0] == 42.0
        assert cs.field(DIM_POINT, FIELD_VALUE)[0] == 3.5
        assert cs.field(DIM_POINT, FIELD_COUNT)[0] == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            CanvasSet.from_points(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty(self):
        cs = CanvasSet.empty()
        assert cs.is_empty()
        assert cs.n_records == 0


class TestFromPolygons:
    def test_samples_cover_polygon(self):
        frame = Canvas(WINDOW, resolution=100)
        poly = Polygon([(10, 10), (40, 10), (40, 40), (10, 40)])
        cs = CanvasSet.from_polygons([poly], frame, ids=[5])
        assert cs.n_records == 1
        assert (cs.keys == 5).all()
        assert cs.valid[:, DIM_AREA].all()
        # Roughly (30/1)^2 = 900 interior pixels at 1-unit pixels.
        assert 800 <= cs.n_samples <= 1100
        assert cs.boundary.any() and not cs.boundary.all()
        assert cs.geometries[5] is poly

    def test_empty_polygon_list(self):
        assert CanvasSet.from_polygons([], Canvas(WINDOW, 10)).is_empty()


class TestBlendGather:
    def test_gather_inside_polygon(self):
        constraint = Canvas.from_polygon(
            Polygon([(20, 20), (80, 20), (80, 80), (20, 80)]),
            WINDOW, resolution=100, record_id=1,
        )
        cs = CanvasSet.from_points(
            np.array([50.0, 5.0]), np.array([50.0, 5.0])
        )
        out = cs.blend_with_canvas(constraint, PIP_MERGE)
        assert out.valid[0, DIM_AREA]       # inside: area slot filled
        assert not out.valid[1, DIM_AREA]   # outside: still null
        assert out.valid[0, DIM_POINT]      # point slot preserved
        assert out.field(DIM_AREA, FIELD_ID)[0] == 1.0

    def test_out_of_window_point_gathers_null(self):
        constraint = Canvas.from_polygon(
            Polygon([(20, 20), (80, 20), (80, 80), (20, 80)]),
            WINDOW, resolution=64,
        )
        cs = CanvasSet.from_points(np.array([500.0]), np.array([500.0]))
        out = cs.blend_with_canvas(constraint, PIP_MERGE)
        assert not out.valid[0, DIM_AREA]

    def test_boundary_flag_propagates(self):
        constraint = Canvas.from_polygon(
            Polygon([(20, 20), (80, 20), (80, 80), (20, 80)]),
            WINDOW, resolution=50,
        )
        cs = CanvasSet.from_points(np.array([20.0]), np.array([50.0]))
        out = cs.blend_with_canvas(constraint, PIP_MERGE)
        assert out.boundary[0]

    def test_geometries_merged(self):
        poly = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
        constraint = Canvas.from_polygon(poly, WINDOW, resolution=32,
                                         record_id=3)
        cs = CanvasSet.from_points(np.array([50.0]), np.array([50.0]))
        out = cs.blend_with_canvas(constraint, PIP_MERGE)
        assert out.geometries[3] is poly


class TestTransforms:
    def test_filter_rows(self):
        cs = CanvasSet.from_points(
            np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0, 3.0])
        )
        out = cs.filter_rows(np.array([True, False, True]))
        assert out.n_samples == 2
        assert out.keys.tolist() == [0, 2]

    def test_transform_positions(self):
        cs = CanvasSet.from_points(np.array([1.0]), np.array([2.0]))
        out = cs.transform_positions(np.array([10.0]), np.array([20.0]))
        assert (out.xs[0], out.ys[0]) == (10.0, 20.0)
        # Original untouched (value semantics).
        assert (cs.xs[0], cs.ys[0]) == (1.0, 2.0)

    def test_map_values(self):
        cs = CanvasSet.from_points(np.array([1.0]), np.array([2.0]),
                                   values=np.array([5.0]))

        def double_value(xs, ys, data, valid):
            out = data.copy()
            out[:, 2] *= 2.0
            return out, valid

        out = cs.map_values(double_value)
        assert out.field(DIM_POINT, FIELD_VALUE)[0] == 10.0

    def test_concat(self):
        a = CanvasSet.from_points(np.array([1.0]), np.array([1.0]),
                                  ids=np.array([0]))
        b = CanvasSet.from_points(np.array([2.0]), np.array([2.0]),
                                  ids=np.array([1]))
        ab = a.concat(b)
        assert ab.n_samples == 2
        assert ab.keys.tolist() == [0, 1]


class TestAccumulate:
    def test_scatter_add_counts_and_values(self):
        cs = CanvasSet.from_points(
            np.array([0.5, 0.5, 2.5]), np.array([0.5, 0.5, 0.5]),
            values=np.array([1.0, 2.0, 4.0]),
        )
        acc = cs.accumulate_by_position(
            BoundingBox(0, 0, 4, 1), resolution=(1, 4)
        )
        counts = acc.field(DIM_POINT, FIELD_COUNT)[0]
        values = acc.field(DIM_POINT, FIELD_VALUE)[0]
        assert counts.tolist() == [2.0, 0.0, 1.0, 0.0]
        assert values.tolist() == [3.0, 0.0, 4.0, 0.0]

    def test_out_of_window_samples_dropped(self):
        cs = CanvasSet.from_points(np.array([99.0]), np.array([0.5]))
        acc = cs.accumulate_by_position(
            BoundingBox(0, 0, 4, 1), resolution=(1, 4)
        )
        assert acc.is_empty()
