"""Tests for expression trees and plan diagrams."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.core.blendfuncs import PIP_MERGE, POLY_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.expressions import (
    AccumulateNode,
    BlendNode,
    InputNode,
    MaskNode,
    MultiwayBlendNode,
    UtilityNode,
    render_plan,
)
from repro.core.masks import mask_point_in_any_polygon
from repro.core.objectinfo import DIM_AREA, DIM_POINT, FIELD_COUNT, FIELD_ID, channel

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)
SQUARE = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])


def _points_node():
    return InputNode(
        CanvasSet.from_points(
            np.array([50.0, 5.0]), np.array([50.0, 5.0])
        ),
        name="CP",
    )


def _query_node():
    return InputNode(
        Canvas.from_polygon(SQUARE, WINDOW, resolution=64), name="CQ"
    )


class TestEvaluation:
    def test_figure5_selection_plan(self):
        """M[Mp'](B[⊙](CP, CQ)) evaluates to the selected points."""
        plan = _points_node().blend(_query_node(), PIP_MERGE).mask(
            mask_point_in_any_polygon(1.0)
        )
        result = plan.evaluate()
        assert isinstance(result, CanvasSet)
        assert result.keys.tolist() == [0]  # only the (50, 50) point

    def test_fluent_equals_explicit(self):
        explicit = MaskNode(
            mask_point_in_any_polygon(1.0),
            BlendNode(PIP_MERGE, _points_node(), _query_node()),
        )
        fluent = _points_node().blend(_query_node(), PIP_MERGE).mask(
            mask_point_in_any_polygon(1.0)
        )
        a = explicit.evaluate()
        b = fluent.evaluate()
        assert a.keys.tolist() == b.keys.tolist()

    def test_blend_right_must_be_dense(self):
        bad = BlendNode(PIP_MERGE, _points_node(), _points_node())
        with pytest.raises(TypeError):
            bad.evaluate()

    def test_multiway_blend_node(self):
        c1 = InputNode(
            Canvas.from_polygon(SQUARE, WINDOW, resolution=64, record_id=1)
        )
        c2 = InputNode(
            Canvas.from_polygon(
                Polygon([(10, 10), (40, 10), (40, 40), (10, 40)]),
                WINDOW, resolution=64, record_id=2,
            )
        )
        merged = MultiwayBlendNode(POLY_MERGE, [c1, c2]).evaluate()
        assert isinstance(merged, Canvas)
        data, _ = merged.sample(30, 30)
        assert data[channel(DIM_AREA, FIELD_COUNT)] == 2.0

    def test_multiway_requires_children(self):
        with pytest.raises(ValueError):
            MultiwayBlendNode(POLY_MERGE, [])

    def test_utility_node(self):
        node = UtilityNode(
            "Circ",
            lambda: Canvas.circle((50, 50), 10, WINDOW, resolution=64),
            params="(50,50), 10",
        )
        canvas = node.evaluate()
        assert isinstance(canvas, Canvas)
        assert "Circ[(50,50), 10]()" == node.label()

    def test_accumulate_node_counts(self):
        """The Figure 7 aggregation tail as a node."""
        selected = _points_node().blend(_query_node(), PIP_MERGE).mask(
            mask_point_in_any_polygon(1.0)
        )

        def gamma(data, valid):
            gx = data[:, channel(DIM_AREA, FIELD_ID)] + 0.5
            return gx, np.full_like(gx, 0.5)

        acc_node = AccumulateNode(
            gamma, BoundingBox(0, 0, 2, 1), (1, 2), selected
        )
        acc = acc_node.evaluate()
        assert isinstance(acc, Canvas)
        assert acc.field(DIM_POINT, FIELD_COUNT)[0, 1] == 1.0


class TestPlanDiagrams:
    def test_render_matches_figure5_shape(self):
        plan = _points_node().blend(_query_node(), PIP_MERGE).mask(
            mask_point_in_any_polygon(1.0)
        )
        text = render_plan(plan)
        lines = text.splitlines()
        assert lines[0].startswith("M[")
        assert "B[pip-merge]" in text
        assert "CP" in text and "CQ" in text
        assert "└─" in text and "├─" in text

    def test_render_nested_multiway(self):
        """Figure 8(b): constraints blended before the point blend."""
        constraints = MultiwayBlendNode(
            POLY_MERGE, [_query_node(), _query_node()]
        )
        plan = _points_node().blend(constraints, POLY_MERGE)
        text = render_plan(plan)
        assert "B*[poly-merge] (n=2)" in text
        # Children are indented under the multiway node.
        multiway_line = next(
            i for i, line in enumerate(text.splitlines())
            if "B*[poly-merge]" in line
        )
        child_line = text.splitlines()[multiway_line + 1]
        assert child_line.startswith("   ") or "│" in child_line

    def test_labels_for_transform_nodes(self):
        node = _points_node().transform_by_value(
            lambda d, v: (d[:, 0], d[:, 0])
        )
        assert "S3→R2" in node.label()
        node2 = _points_node().transform(lambda xs, ys: (xs, ys))
        assert "R2→R2" in node2.label()
