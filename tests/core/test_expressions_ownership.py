"""Ownership-aware expression evaluation vs the legacy copying evaluator.

The acceptance bar of the buffer-pool refactor: random expression trees
evaluated with an :class:`EvalContext` must be *bit-identical* to the
legacy value-semantics evaluation, owned dense intermediates must cost
zero full-texture copies, and cached leaves must come through untouched.
"""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.core.blendfuncs import PIP_MERGE, POLY_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.expressions import (
    BufferPool,
    EvalContext,
    InputNode,
    MultiwayBlendNode,
    Node,
)
from repro.core.masks import FieldCompare, NotNull, mask_point_in_any_polygon
from repro.core.objectinfo import DIM_AREA, FIELD_COUNT

WINDOW = BoundingBox(0.0, 0.0, 10.0, 10.0)
RES = 32


# ----------------------------------------------------------------------
# Deterministic random trees
# ----------------------------------------------------------------------
def _leaf_canvas(rng: np.random.Generator, record_id: int) -> Canvas:
    kind = rng.integers(0, 3)
    if kind == 0:
        cx, cy = rng.uniform(2, 8, 2)
        r = rng.uniform(1, 3)
        pts = [
            (cx + r * np.cos(t), cy + r * np.sin(t))
            for t in np.linspace(0, 2 * np.pi, 5, endpoint=False)
        ]
        from repro.geometry.primitives import Polygon

        return Canvas.from_polygon(Polygon(pts), WINDOW, RES,
                                   record_id=record_id)
    if kind == 1:
        cx, cy = rng.uniform(2, 8, 2)
        return Canvas.circle((cx, cy), rng.uniform(1, 3), WINDOW, RES,
                             record_id=record_id)
    return Canvas.halfspace(
        rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-5, 5),
        WINDOW, RES, record_id=record_id,
    )


def _scale_values(factor: float):
    def f(gx, gy, data, valid):
        return data * factor, valid.copy()

    return f


def _random_spec(rng: np.random.Generator, depth: int):
    """A nested op spec; leaves record their (seed, owned) identity."""
    if depth == 0 or rng.random() < 0.25:
        return ("leaf", int(rng.integers(0, 2 ** 31)), bool(rng.random() < 0.5))
    op = rng.choice(["blend", "mask", "vt", "multi"])
    if op == "blend":
        return ("blend", _random_spec(rng, depth - 1),
                ("leaf", int(rng.integers(0, 2 ** 31)),
                 bool(rng.random() < 0.5)))
    if op == "mask":
        return ("mask", int(rng.integers(0, 2)), _random_spec(rng, depth - 1))
    if op == "vt":
        return ("vt", float(rng.uniform(0.5, 2.0)),
                _random_spec(rng, depth - 1))
    n = int(rng.integers(2, 4))
    return ("multi", tuple(_random_spec(rng, depth - 1) for _ in range(n)))


def _build(spec, owned_enabled: bool, cached_leaves: list[Canvas],
           counter=[0]) -> Node:
    """Materialize the spec with fresh leaf canvases.

    Every build call with the same spec produces bit-identical leaves
    (the leaf seed is part of the spec), so legacy and ownership-aware
    evaluations see the same inputs.  Cached (non-owned) leaves are
    recorded so tests can assert they were not mutated.
    """
    kind = spec[0]
    if kind == "leaf":
        _, seed, owned = spec
        leaf_rng = np.random.default_rng(seed)
        record_id = int(leaf_rng.integers(1, 50))
        canvas = _leaf_canvas(leaf_rng, record_id)
        is_owned = owned and owned_enabled
        if not is_owned:
            cached_leaves.append(canvas)
        return InputNode(canvas, name=f"C{record_id}", owned=is_owned)
    if kind == "blend":
        left = _build(spec[1], owned_enabled, cached_leaves)
        right = _build(spec[2], owned_enabled, cached_leaves)
        return left.blend(right, POLY_MERGE)
    if kind == "mask":
        predicate = (
            NotNull(DIM_AREA) if spec[1] == 0
            else FieldCompare(DIM_AREA, FIELD_COUNT, ">=", 1.0)
        )
        return _build(spec[2], owned_enabled, cached_leaves).mask(predicate)
    if kind == "vt":
        return _build(spec[2], owned_enabled, cached_leaves).value_transform(
            _scale_values(spec[1]), name=f"x{spec[1]:.2f}"
        )
    return MultiwayBlendNode(
        POLY_MERGE, [_build(s, owned_enabled, cached_leaves) for s in spec[1]]
    )


def _assert_canvas_equal(a: Canvas, b: Canvas) -> None:
    np.testing.assert_array_equal(a.texture.data, b.texture.data)
    np.testing.assert_array_equal(a.texture.valid, b.texture.valid)
    np.testing.assert_array_equal(a.boundary, b.boundary)
    assert set(a.geometries) == set(b.geometries)


def _snapshot(canvas: Canvas):
    return (
        canvas.texture.data.copy(), canvas.texture.valid.copy(),
        canvas.boundary.copy(),
    )


class TestRandomTreeEquivalence:
    """Property-style: ownership-aware == legacy, bit for bit."""

    @pytest.mark.parametrize("seed", range(12))
    def test_dense_trees_bit_identical(self, seed):
        rng = np.random.default_rng(1000 + seed)
        spec = _random_spec(rng, depth=int(rng.integers(1, 4)))

        legacy = _build(spec, owned_enabled=False, cached_leaves=[]).evaluate()
        cached: list[Canvas] = []
        ctx = EvalContext()
        tree = _build(spec, owned_enabled=True, cached_leaves=cached)
        snapshots = [_snapshot(c) for c in cached]
        result = tree.evaluate(ctx)

        assert isinstance(legacy, Canvas) and isinstance(result, Canvas)
        _assert_canvas_equal(legacy, result)
        # Cached (shared) leaves must come through untouched.
        for canvas, (data, valid, boundary) in zip(cached, snapshots):
            np.testing.assert_array_equal(canvas.texture.data, data)
            np.testing.assert_array_equal(canvas.texture.valid, valid)
            np.testing.assert_array_equal(canvas.boundary, boundary)

    @pytest.mark.parametrize("seed", range(6))
    def test_sparse_selection_trees_bit_identical(self, seed):
        """CP blend+mask trees (the engine's selection shape)."""
        rng = np.random.default_rng(2000 + seed)
        n = 200
        xs = rng.uniform(0, 10, n)
        ys = rng.uniform(0, 10, n)
        spec = _random_spec(rng, depth=2)

        def run(owned_enabled, ctx):
            dense = _build(spec, owned_enabled, cached_leaves=[])
            tree = InputNode(
                CanvasSet.from_points(xs, ys), name="CP"
            ).blend(dense, PIP_MERGE).mask(mask_point_in_any_polygon(1.0))
            return tree.evaluate(ctx)

        legacy = run(False, None)
        ownership = run(True, EvalContext())
        assert isinstance(legacy, CanvasSet)
        assert isinstance(ownership, CanvasSet)
        np.testing.assert_array_equal(legacy.keys, ownership.keys)
        np.testing.assert_array_equal(legacy.data, ownership.data)
        np.testing.assert_array_equal(legacy.valid, ownership.valid)
        np.testing.assert_array_equal(legacy.boundary, ownership.boundary)


class TestOwnershipCounters:
    def test_owned_chain_pays_zero_copies(self):
        """A chain over one owned leaf runs wholly in place."""
        rng = np.random.default_rng(7)
        canvas = _leaf_canvas(rng, record_id=1)
        ctx = EvalContext()
        tree = InputNode(canvas, owned=True).mask(
            NotNull(DIM_AREA)
        ).value_transform(_scale_values(2.0)).mask(
            FieldCompare(DIM_AREA, FIELD_COUNT, ">=", 1.0)
        )
        result = tree.evaluate(ctx)
        assert result is canvas  # in place end to end
        assert ctx.counters.full_copies == 0
        assert ctx.counters.allocations == 0
        assert ctx.counters.inplace_ops == 3

    def test_cached_leaf_costs_one_copy(self):
        rng = np.random.default_rng(8)
        canvas = _leaf_canvas(rng, record_id=1)
        ctx = EvalContext()
        result = InputNode(canvas).mask(NotNull(DIM_AREA)).evaluate(ctx)
        assert result is not canvas
        assert ctx.counters.full_copies == 1
        assert ctx.counters.allocations == 1
        # A chain over the cached leaf pays the one copy up front, then
        # every later operator runs in place on the owned intermediate.
        ctx2 = EvalContext()
        chained = InputNode(canvas).mask(NotNull(DIM_AREA)).value_transform(
            _scale_values(2.0)
        ).evaluate(ctx2)
        assert ctx2.counters.full_copies == 1
        assert ctx2.counters.inplace_ops == 1
        legacy = InputNode(canvas).mask(NotNull(DIM_AREA)).value_transform(
            _scale_values(2.0)
        ).evaluate()
        _assert_canvas_equal(chained, legacy)

    def test_multiway_fold_recycles_consumed_children(self):
        rng = np.random.default_rng(9)
        leaves = [_leaf_canvas(rng, record_id=i + 1) for i in range(3)]
        pool = BufferPool()
        ctx = EvalContext(pool)
        tree = MultiwayBlendNode(
            POLY_MERGE,
            [InputNode(c, owned=True) for c in leaves],
        )
        result = tree.evaluate(ctx)
        assert result is leaves[0]
        assert ctx.counters.full_copies == 0
        # The two consumed children were released into the pool.
        assert len(pool) == 2

    def test_pool_reuse_across_evaluations(self):
        rng = np.random.default_rng(10)
        pool = BufferPool()
        for i in range(3):
            canvas = _leaf_canvas(rng, record_id=1)
            ctx = EvalContext(pool)
            InputNode(canvas).mask(NotNull(DIM_AREA)).evaluate(ctx)
            if i == 0:
                assert ctx.counters.allocations == 1
        # Nothing was released (results stay live), so no reuses yet;
        # released buffers do get reacquired:
        canvas = _leaf_canvas(rng, record_id=2)
        ctx = EvalContext(pool)
        out = InputNode(canvas).mask(NotNull(DIM_AREA)).evaluate(ctx)
        ctx.release(out)
        ctx2 = EvalContext(pool)
        before = len(pool)
        assert before >= 1
        InputNode(canvas).mask(NotNull(DIM_AREA)).evaluate(ctx2)
        assert ctx2.counters.pool_reuses == 1
        assert len(pool) == before - 1

    def test_ledger_holds_references_against_id_reuse(self):
        """The ownership ledger must keep owned canvases alive: a bare
        id() set would let a dead owned canvas's address be recycled by
        a fresh CACHED canvas, which would then be mutated in place."""
        import weakref

        rng = np.random.default_rng(13)
        canvas = _leaf_canvas(rng, record_id=1)
        ctx = EvalContext()
        ctx.mark_owned(canvas)
        ref = weakref.ref(canvas)
        del canvas
        assert ref() is not None  # ledger keeps it alive -> no id reuse
        fresh = _leaf_canvas(rng, record_id=2)
        assert not ctx.is_owned(fresh)

    def test_sparse_blend_releases_owned_right_operand(self):
        """Gathers copy what they read, so an owned dense operand of a
        sparse blend is dead afterwards and must recycle."""
        rng = np.random.default_rng(14)
        pool = BufferPool()
        ctx = EvalContext(pool)
        dense = _leaf_canvas(rng, record_id=1)
        tree = InputNode(
            CanvasSet.from_points(np.array([5.0]), np.array([5.0])),
            name="CP",
        ).blend(InputNode(dense, owned=True), PIP_MERGE)
        tree.evaluate(ctx)
        assert len(pool) == 1
        assert not ctx.is_owned(dense)

    def test_legacy_evaluate_untouched_by_default(self):
        """No ctx: value semantics, leaves never mutated."""
        rng = np.random.default_rng(11)
        canvas = _leaf_canvas(rng, record_id=1)
        data, valid, boundary = _snapshot(canvas)
        InputNode(canvas, owned=True).mask(NotNull(DIM_AREA)).evaluate()
        np.testing.assert_array_equal(canvas.texture.data, data)
        np.testing.assert_array_equal(canvas.texture.valid, valid)
        np.testing.assert_array_equal(canvas.boundary, boundary)
