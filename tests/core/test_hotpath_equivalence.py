"""PR 2 exact-equivalence suites: the rewritten hot paths must agree
bit-for-bit with the strategies they replaced.

- bbox-clipped rasterization vs a full-grid fill of the same polygon;
- scatter-gather RasterJoin vs the legacy per-polygon plan;
- in-place (``out=``) algebra operators vs their copying defaults.
"""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.gpu.rasterizer import ring_boundary_cells
from repro.gpu.scanline import parity_fill
from repro.core import algebra
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.masks import NotNull, mask_point_in_any_polygon
from repro.core.objectinfo import DIM_POINT
from repro.core.rasterjoin import (
    PolygonCoverage,
    polygon_coverage_cells,
    raster_join_aggregate,
    raster_join_aggregate_legacy,
)

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


def _polys():
    """Overlapping districts, one off-window spill, one with a hole."""
    polys = [
        hand_drawn_polygon(n_vertices=14, irregularity=0.35, seed=i,
                           center=(30 + 8 * i, 45 + 4 * (i % 3)), radius=24)
        for i in range(5)
    ]
    polys.append(Polygon([(-30, -30), (55, -30), (55, 55), (-30, 55)]))
    polys.append(Polygon(
        [(10, 10), (90, 10), (90, 90), (10, 90)],
        holes=[[(30, 30), (60, 30), (60, 60), (30, 60)]],
    ))
    return polys


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(41)
    n = 20_000
    return (
        rng.uniform(0, 100, n),
        rng.uniform(0, 100, n),
        rng.uniform(-3.0, 7.0, n),
    )


class TestClippedRasterization:
    """``draw_polygon`` fills only the clipped bbox but must produce the
    exact full-frame canvas."""

    @pytest.mark.parametrize("resolution", [97, 256])
    @pytest.mark.parametrize("poly_index", [0, 5, 6])
    def test_draw_polygon_matches_fullframe_fill(self, resolution, poly_index):
        poly = _polys()[poly_index]
        canvas = Canvas.from_polygon(poly, WINDOW, resolution, record_id=3)

        # Full-grid reference: unclipped fill + boundary, frame-wide writes.
        ref = Canvas(WINDOW, resolution)
        rings = [ref._ring_pixels(poly.shell)]
        rings.extend(ref._ring_pixels(h) for h in poly.holes)
        interior = parity_fill(rings, ref.height, ref.width)
        brows, bcols = [], []
        for ring_px in rings:
            br, bc = ring_boundary_cells(ring_px, ref.height, ref.width)
            brows.append(br)
            bcols.append(bc)
        covered = interior.copy()
        covered[np.concatenate(brows), np.concatenate(bcols)] = True

        assert np.array_equal(canvas.valid(2), covered)
        assert np.array_equal(
            canvas.boundary[np.concatenate(brows), np.concatenate(bcols)],
            np.ones(len(np.concatenate(brows)), dtype=bool),
        )
        assert canvas.boundary.sum() == len(np.concatenate(brows))

    def test_parity_fill_clip_is_a_slice_of_the_full_fill(self):
        poly = _polys()[1]
        ref = Canvas(WINDOW, 128)
        rings = [ref._ring_pixels(poly.shell)]
        full = parity_fill(rings, 128, 128)
        for clip in [(0, 128, 0, 128), (10, 90, 20, 70), (0, 5, 0, 128),
                     (60, 61, 60, 61), (120, 140, -10, 40)]:
            r0 = max(clip[0], 0)
            r1 = min(clip[1], 128)
            c0 = max(clip[2], 0)
            c1 = min(clip[3], 128)
            clipped = parity_fill(rings, 128, 128, clip=clip)
            assert clipped.shape == (max(r1 - r0, 0), max(c1 - c0, 0))
            assert np.array_equal(clipped, full[r0:r1, c0:c1])

    def test_offgrid_polygon_is_empty_but_indexed(self):
        poly = Polygon([(200, 200), (240, 200), (240, 240)])
        canvas = Canvas.from_polygon(poly, WINDOW, 64, record_id=9)
        assert canvas.is_empty()
        assert 9 in canvas.geometries

    def test_coverage_cells_match_dense_constraint_canvas(self):
        for poly in _polys():
            coverage = polygon_coverage_cells(poly, WINDOW, 128)
            dense = Canvas.from_polygon(poly, WINDOW, 128)
            rows, cols = np.nonzero(dense.valid(2))
            assert np.array_equal(coverage.flat, rows * dense.width + cols)
            assert (coverage.height, coverage.width) == (128, 128)


class TestScatterGatherRasterJoin:
    @pytest.mark.parametrize("aggregate", ["count", "sum", "avg"])
    @pytest.mark.parametrize("resolution", [97, 256])
    def test_bit_identical_to_legacy(self, cloud, aggregate, resolution):
        xs, ys, values = cloud
        polys = _polys()
        ids = [7, 3, 11, 0, 5, 2, 9]  # permuted, non-contiguous
        new = raster_join_aggregate(
            xs, ys, polys, values=values, aggregate=aggregate,
            polygon_ids=ids, window=WINDOW, resolution=resolution,
        )
        legacy = raster_join_aggregate_legacy(
            xs, ys, polys, values=values, aggregate=aggregate,
            polygon_ids=ids, window=WINDOW, resolution=resolution,
        )
        assert np.array_equal(new.groups, legacy.groups)
        assert np.array_equal(new.values, legacy.values)

    def test_default_window_matches_legacy(self, cloud):
        xs, ys, _ = cloud
        polys = _polys()[:3]
        new = raster_join_aggregate(xs, ys, polys, resolution=128)
        legacy = raster_join_aggregate_legacy(xs, ys, polys, resolution=128)
        assert np.array_equal(new.values, legacy.values)

    def test_rectangular_resolution_matches_legacy(self, cloud):
        xs, ys, _ = cloud
        window = BoundingBox(0.0, 0.0, 100.0, 50.0)
        polys = _polys()[:3]
        new = raster_join_aggregate(
            xs, ys, polys, window=window, resolution=(64, 256)
        )
        legacy = raster_join_aggregate_legacy(
            xs, ys, polys, window=window, resolution=(64, 256)
        )
        assert np.array_equal(new.values, legacy.values)

    def test_mismatched_ids_length_raises(self, cloud):
        xs, ys, _ = cloud
        with pytest.raises(ValueError, match="one-to-one"):
            raster_join_aggregate(xs, ys, _polys()[:3], polygon_ids=[1, 2])

    def test_duplicate_ids_raise(self, cloud):
        xs, ys, _ = cloud
        with pytest.raises(ValueError, match="duplicate polygon_ids"):
            raster_join_aggregate(
                xs, ys, _polys()[:3], polygon_ids=[4, 7, 4]
            )

    def test_coverage_provider_shape_mismatch_raises(self, cloud):
        xs, ys, _ = cloud
        bad = PolygonCoverage(
            flat=np.empty(0, dtype=np.int64), height=32, width=32
        )
        with pytest.raises(ValueError, match="coverage provider"):
            raster_join_aggregate(
                xs, ys, _polys()[:1], window=WINDOW, resolution=128,
                coverage_provider=lambda poly, pid: bad,
            )

    def test_coverage_provider_is_consulted_per_polygon(self, cloud):
        xs, ys, _ = cloud
        polys = _polys()[:3]
        calls = []

        def provider(poly, pid):
            calls.append(pid)
            return polygon_coverage_cells(poly, WINDOW, 128)

        viaprov = raster_join_aggregate(
            xs, ys, polys, polygon_ids=[5, 1, 3], window=WINDOW,
            resolution=128, coverage_provider=provider,
        )
        plain = raster_join_aggregate(
            xs, ys, polys, polygon_ids=[5, 1, 3], window=WINDOW,
            resolution=128,
        )
        assert calls == [5, 1, 3]
        assert np.array_equal(viaprov.values, plain.values)


class TestInPlaceAlgebra:
    """``out=`` operators must agree exactly with the copying defaults."""

    @pytest.fixture()
    def operands(self, cloud):
        xs, ys, values = cloud
        points = Canvas.from_points(
            xs[:5000], ys[:5000], WINDOW, 128, values=values[:5000]
        )
        constraint = Canvas.from_polygon(_polys()[0], WINDOW, 128)
        return points, constraint

    @staticmethod
    def _same(a: Canvas, b: Canvas) -> bool:
        return (
            np.array_equal(a.texture.data, b.texture.data)
            and np.array_equal(a.texture.valid, b.texture.valid)
            and np.array_equal(a.boundary, b.boundary)
            and a.geometries.keys() == b.geometries.keys()
        )

    def test_blend_out_left(self, operands):
        points, constraint = operands
        expected = algebra.blend(points, constraint, PIP_MERGE)
        scratch = points.copy()
        result = algebra.blend(scratch, constraint, PIP_MERGE, out=scratch)
        assert result is scratch
        assert self._same(result, expected)

    def test_blend_out_scratch_canvas(self, operands):
        points, constraint = operands
        expected = algebra.blend(points, constraint, PIP_MERGE)
        scratch = points.blank_like()
        result = algebra.blend(points, constraint, PIP_MERGE, out=scratch)
        assert result is scratch
        assert self._same(result, expected)
        # The left operand stays untouched.
        assert not points.texture.valid[:, :, 2].any()

    def test_blend_out_right_operand_rejected(self, operands):
        points, constraint = operands
        with pytest.raises(ValueError, match="right blend operand"):
            algebra.blend(points, constraint, PIP_MERGE, out=constraint)

    def test_blend_out_incompatible_rejected(self, operands):
        points, constraint = operands
        other = Canvas(WINDOW, 64)
        with pytest.raises(ValueError, match="window/resolution"):
            algebra.blend(points, constraint, PIP_MERGE, out=other)

    def test_mask_in_place(self, operands):
        points, constraint = operands
        blended = algebra.blend(points, constraint, PIP_MERGE)
        expected = algebra.mask(blended, mask_point_in_any_polygon(1.0))
        result = algebra.mask(
            blended, mask_point_in_any_polygon(1.0), out=blended
        )
        assert result is blended
        assert self._same(result, expected)

    def test_value_transform_in_place(self, operands):
        points, _ = operands

        def bump(gx, gy, data, valid):
            return data + gx[..., None] * 0.0 + 1.0, valid

        expected = algebra.value_transform(points, bump)
        scratch = points.copy()
        result = algebra.value_transform(scratch, bump, out=scratch)
        assert result is scratch
        assert self._same(result, expected)

    def test_value_transform_fresh_output_keeps_boundary_and_index(self):
        constraint = Canvas.from_polygon(_polys()[0], WINDOW, 64, record_id=4)

        def keep(gx, gy, data, valid):
            return data, valid

        out = algebra.value_transform(constraint, keep)
        assert out is not constraint
        assert np.array_equal(out.boundary, constraint.boundary)
        assert 4 in out.geometries

    def test_sparse_operands_reject_out(self, operands):
        points, constraint = operands
        sparse = CanvasSet.from_points(np.array([1.0]), np.array([2.0]))
        with pytest.raises(ValueError, match="dense"):
            algebra.blend(sparse, constraint, PIP_MERGE, out=constraint)
        with pytest.raises(ValueError, match="dense"):
            algebra.mask(sparse, NotNull(DIM_POINT), out=points)
        with pytest.raises(ValueError, match="dense"):
            algebra.value_transform(sparse, lambda *a: (a[2], a[3]), out=points)

    def test_multiway_blend_does_not_mutate_inputs(self, operands):
        points, constraint = operands
        snapshot = constraint.texture.data.copy()
        from repro.core.blendfuncs import POLY_MERGE

        algebra.multiway_blend([constraint, constraint, constraint], POLY_MERGE)
        assert np.array_equal(constraint.texture.data, snapshot)


class TestPixelGridMemoization:
    def test_grids_cached_and_correct(self):
        canvas = Canvas(WINDOW, 32)
        gx1, gy1 = canvas.pixel_center_grids()
        gx2, gy2 = canvas.pixel_center_grids()
        assert gx1 is gx2 and gy1 is gy2
        xs, ys = canvas.pixel_to_world(
            np.arange(canvas.height)[:, None].repeat(canvas.width, axis=1),
            np.arange(canvas.width)[None, :].repeat(canvas.height, axis=0),
        )
        assert np.array_equal(gx1, xs)
        assert np.array_equal(gy1, ys)

    def test_copy_shares_the_cached_grids(self):
        canvas = Canvas(WINDOW, 16)
        gx, _ = canvas.pixel_center_grids()
        dup = canvas.copy()
        assert dup.pixel_center_grids()[0] is gx
