"""Tests for mask predicates."""

import numpy as np
import pytest

from repro.core.masks import (
    FieldCompare,
    IsNull,
    Lambda,
    NotNull,
    mask_point_in_all_polygons,
    mask_point_in_any_polygon,
    mask_point_in_polygon,
    mask_polygon_intersection,
)
from repro.core.objectinfo import DIM_AREA, DIM_POINT, Info, triple_values


def _rows(*specs):
    data = []
    valid = []
    for spec in specs:
        d, v = triple_values(**spec)
        data.append(d)
        valid.append(v)
    return np.stack(data), np.stack(valid)


class TestAtoms:
    def test_not_null(self):
        data, valid = _rows({"point": Info(id=1)}, {})
        assert NotNull(DIM_POINT).test(data, valid).tolist() == [True, False]

    def test_is_null(self):
        data, valid = _rows({"point": Info(id=1)}, {})
        assert IsNull(DIM_POINT).test(data, valid).tolist() == [False, True]

    def test_field_compare_implies_valid(self):
        # A null tuple never satisfies a comparison, even if channels
        # happen to hold a matching (zero) value.
        data, valid = _rows({"area": Info(id=0, count=0)}, {})
        pred = FieldCompare(DIM_AREA, 1, "==", 0)
        assert pred.test(data, valid).tolist() == [True, False]

    def test_all_operators(self):
        data, valid = _rows({"area": Info(id=5, count=3)})
        for op, expected in [
            ("==", False), ("!=", True), ("<", False),
            ("<=", False), (">", True), (">=", True),
        ]:
            assert FieldCompare(DIM_AREA, 1, op, 2).test(data, valid)[0] == expected

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            FieldCompare(DIM_AREA, 1, "~=", 2)

    def test_lambda_escape_hatch(self):
        data, valid = _rows({"point": Info(id=1)}, {"point": Info(id=2)})
        pred = Lambda(lambda d, v: d[..., 0] > 1.5, "id > 1.5")
        assert pred.test(data, valid).tolist() == [False, True]
        assert pred.describe() == "id > 1.5"


class TestCombinators:
    def test_and_or_not(self):
        data, valid = _rows(
            {"point": Info(id=1), "area": Info(id=1, count=1)},
            {"point": Info(id=2)},
            {"area": Info(id=1, count=1)},
        )
        p = NotNull(DIM_POINT)
        a = NotNull(DIM_AREA)
        assert (p & a).test(data, valid).tolist() == [True, False, False]
        assert (p | a).test(data, valid).tolist() == [True, True, True]
        assert (~p).test(data, valid).tolist() == [False, False, True]

    def test_describe_composes(self):
        pred = NotNull(0) & ~IsNull(2)
        text = pred.describe()
        assert "and" in text and "not" in text


class TestPaperMasks:
    def test_mp_point_in_polygon(self):
        """Mp: s[0] != ∅ and s[2][0] == 1."""
        data, valid = _rows(
            {"point": Info(id=3), "area": Info(id=1, count=1)},  # hit
            {"point": Info(id=4)},                               # no polygon
            {"area": Info(id=1, count=1)},                       # no point
        )
        got = mask_point_in_polygon(1.0).test(data, valid)
        assert got.tolist() == [True, False, False]

    def test_my_polygon_intersection(self):
        """My: s[2][1] == 2."""
        data, valid = _rows(
            {"area": Info(id=1, count=2)},
            {"area": Info(id=1, count=1)},
            {},
        )
        got = mask_polygon_intersection(2.0).test(data, valid)
        assert got.tolist() == [True, False, False]

    def test_mp_prime_disjunction(self):
        """Mp': s[0] != ∅ and s[2][1] >= 1 — valid for 1..n polygons."""
        data, valid = _rows(
            {"point": Info(id=1), "area": Info(id=1, count=1)},
            {"point": Info(id=2), "area": Info(id=2, count=3)},
            {"point": Info(id=3)},
        )
        got = mask_point_in_any_polygon(1.0).test(data, valid)
        assert got.tolist() == [True, True, False]

    def test_conjunction_mask(self):
        data, valid = _rows(
            {"point": Info(id=1), "area": Info(id=1, count=2)},
            {"point": Info(id=2), "area": Info(id=1, count=1)},
        )
        got = mask_point_in_all_polygons(2.0).test(data, valid)
        assert got.tolist() == [True, False]


class TestGridShapes:
    def test_masks_work_on_pixel_grids(self):
        """Predicates accept (H, W, ...) arrays, not just rows."""
        d, v = triple_values(point=Info(id=1), area=Info(id=1, count=1))
        data = np.tile(d, (4, 5, 1))
        valid = np.tile(v, (4, 5, 1))
        valid[0, 0, :] = False
        got = mask_point_in_any_polygon(1.0).test(data, valid)
        assert got.shape == (4, 5)
        assert not got[0, 0]
        assert got[1:].all()
