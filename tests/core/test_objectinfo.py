"""Tests for the S^3 object-information layout."""

import pytest

from repro.core.objectinfo import (
    DIM_AREA,
    DIM_LINE,
    DIM_POINT,
    FIELD_COUNT,
    FIELD_ID,
    FIELD_VALUE,
    Info,
    N_CHANNELS,
    N_GROUPS,
    channel,
    format_triple,
    triple_values,
)


class TestChannelLayout:
    def test_nine_channels_three_groups(self):
        assert N_CHANNELS == 9 and N_GROUPS == 3

    def test_channel_indices_distinct(self):
        indices = {
            channel(d, f)
            for d in (DIM_POINT, DIM_LINE, DIM_AREA)
            for f in (FIELD_ID, FIELD_COUNT, FIELD_VALUE)
        }
        assert indices == set(range(9))

    def test_channel_arithmetic(self):
        assert channel(DIM_POINT, FIELD_ID) == 0
        assert channel(DIM_AREA, FIELD_VALUE) == 8

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            channel(3, 0)

    def test_invalid_field_raises(self):
        with pytest.raises(ValueError):
            channel(0, 5)


class TestInfo:
    def test_defaults(self):
        info = Info(id=7)
        assert info.as_array().tolist() == [7.0, 1.0, 0.0]

    def test_explicit_fields(self):
        info = Info(id=3, count=2, value=1.5)
        assert info.as_array().tolist() == [3.0, 2.0, 1.5]


class TestTripleValues:
    def test_all_null(self):
        values, groups = triple_values()
        assert (values == 0).all()
        assert not groups.any()

    def test_point_slot_only(self):
        values, groups = triple_values(point=Info(id=4, value=2.0))
        assert groups.tolist() == [True, False, False]
        assert values[channel(DIM_POINT, FIELD_ID)] == 4.0
        assert values[channel(DIM_POINT, FIELD_VALUE)] == 2.0
        assert values[channel(DIM_AREA, FIELD_ID)] == 0.0

    def test_mixed_dimensions(self):
        values, groups = triple_values(
            point=Info(id=1), line=Info(id=1), area=Info(id=1)
        )
        assert groups.all()


class TestFormatting:
    def test_format_with_nulls(self):
        values, groups = triple_values(point=Info(id=2, count=1, value=0))
        text = format_triple(values, groups)
        assert "s[0]=(2, 1, 0)" in text
        assert "s[1]=∅" in text
        assert "s[2]=∅" in text
