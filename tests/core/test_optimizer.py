"""Cost-based plan choice (Section 7) (A3)."""

import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.core.optimizer import (
    CostModel,
    aggregation_plans,
    choose_aggregation_plan,
    choose_selection_plan,
    explain,
    selection_plans,
)


def _polys(n, vertices=24):
    return [
        hand_drawn_polygon(n_vertices=vertices, seed=i, center=(50, 50),
                           radius=30)
        for i in range(n)
    ]


class TestSelectionPlans:
    def test_two_candidates(self):
        plans = selection_plans(10_000, _polys(1), (512, 512))
        assert {p.name for p in plans} == {"blended-canvas", "per-polygon-pip"}

    def test_sorted_cheapest_first(self):
        plans = selection_plans(10_000, _polys(1), (512, 512))
        assert plans[0].cost <= plans[1].cost

    def test_small_input_prefers_pip(self):
        """Tiny point sets don't amortize rasterizing the frame."""
        choice = choose_selection_plan(50, _polys(1), (2048, 2048))
        assert choice.name == "per-polygon-pip"

    def test_large_input_prefers_blended(self):
        choice = choose_selection_plan(50_000_000, _polys(1), (512, 512))
        assert choice.name == "blended-canvas"

    def test_more_polygons_push_toward_blended(self):
        """The crossover moves left as constraints multiply — the
        Figure 9(c) effect."""
        def crossover_points(polys):
            lo, hi = 1, 1 << 36
            while lo < hi:
                mid = (lo + hi) // 2
                if choose_selection_plan(mid, polys, (512, 512)).name == (
                    "blended-canvas"
                ):
                    hi = mid
                else:
                    lo = mid + 1
            return lo

        assert crossover_points(_polys(8)) < crossover_points(_polys(1))

    def test_complex_polygons_push_toward_blended(self):
        simple = crossover = choose_selection_plan(
            200_000, _polys(1, vertices=6), (512, 512)
        )
        complex_choice = choose_selection_plan(
            200_000, _polys(1, vertices=600), (512, 512)
        )
        # With 600 edges the PIP cost explodes; blended must win at
        # least as often as with 6 edges.
        if simple.name == "blended-canvas":
            assert complex_choice.name == "blended-canvas"


class TestAggregationPlans:
    def test_two_candidates(self):
        plans = aggregation_plans(100_000, _polys(4), (512, 512))
        assert {p.name for p in plans} == {"rasterjoin", "join-then-aggregate"}

    def test_many_points_prefer_rasterjoin(self):
        choice = choose_aggregation_plan(100_000_000, _polys(16), (256, 256))
        assert choice.name == "rasterjoin"

    def test_few_points_prefer_join_then_aggregate(self):
        choice = choose_aggregation_plan(100, _polys(2), (1024, 1024))
        assert choice.name == "join-then-aggregate"


class TestDegenerateWorkloads:
    """Zero-point / zero-polygon workloads must fail loudly instead of
    silently ranking zero-cost plans."""

    @pytest.mark.parametrize("plans", [selection_plans, aggregation_plans])
    def test_zero_points_raise(self, plans):
        with pytest.raises(ValueError, match="at least one point"):
            plans(0, _polys(1), (256, 256))

    @pytest.mark.parametrize("plans", [selection_plans, aggregation_plans])
    def test_negative_points_raise(self, plans):
        with pytest.raises(ValueError, match="at least one point"):
            plans(-5, _polys(1), (256, 256))

    @pytest.mark.parametrize("plans", [selection_plans, aggregation_plans])
    def test_zero_polygons_raise(self, plans):
        with pytest.raises(ValueError, match="at least one polygon"):
            plans(1_000, [], (256, 256))


class TestExplain:
    def test_renders_table(self):
        plans = selection_plans(10_000, _polys(2), (256, 256))
        text = explain(plans)
        lines = text.splitlines()
        assert "plan" in lines[0] and "est. cost" in lines[0]
        assert len(lines) == 3

    def test_custom_cost_model(self):
        expensive_gather = CostModel(gather=1000.0)
        choice = choose_selection_plan(
            10_000, _polys(1), (64, 64), model=expensive_gather
        )
        assert choice.name == "per-polygon-pip"

    def test_empty_plan_list(self):
        """No candidates must not crash ``max()`` — report it instead."""
        assert explain([]) == "no candidate plans"


class TestBboxAwareCosts:
    """With a window, raster costs track clipped-bbox footprints."""

    def test_small_bbox_cheapens_blended_plan(self):
        from repro.geometry.bbox import BoundingBox

        window = BoundingBox(0, 0, 1000, 1000)
        small = _polys(4)  # radius 30 around (50, 50): ~0.4% of the frame
        with_window = {
            p.name: p.cost
            for p in selection_plans(10_000, small, (512, 512), window=window)
        }
        without = {
            p.name: p.cost
            for p in selection_plans(10_000, small, (512, 512))
        }
        assert with_window["blended-canvas"] < without["blended-canvas"]
        assert with_window["per-polygon-pip"] == without["per-polygon-pip"]

    def test_small_bboxes_cheapen_rasterjoin(self):
        from repro.geometry.bbox import BoundingBox

        window = BoundingBox(0, 0, 1000, 1000)
        costs = {
            p.name: p.cost
            for p in aggregation_plans(50_000, _polys(8), (512, 512),
                                       window=window)
        }
        fallback = {
            p.name: p.cost
            for p in aggregation_plans(50_000, _polys(8), (512, 512))
        }
        assert costs["rasterjoin"] < fallback["rasterjoin"]
        assert costs["join-then-aggregate"] < fallback["join-then-aggregate"]

    def test_offwindow_polygon_contributes_nothing(self):
        from repro.geometry.bbox import BoundingBox
        from repro.core.optimizer import _bbox_pixel_fraction

        # A window fully inside the polygon's bbox clips the fraction to 1.
        window = BoundingBox(40, 40, 60, 60)
        inside = _polys(1)  # bbox ~ (20..80) x (20..80)
        assert _bbox_pixel_fraction(inside, window) == pytest.approx(1.0)
        outside = _polys(1)
        shifted = BoundingBox(500, 500, 510, 510)
        assert _bbox_pixel_fraction(outside, shifted) == 0.0
        assert _bbox_pixel_fraction(inside, None) == 1.0
