"""The plan library evaluates to the same results as the query API."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.expressions import render_plan
from repro.core.objectinfo import DIM_POINT, FIELD_COUNT
from repro.core.plans import (
    count_plan,
    distance_selection_plan,
    polygon_selection_plan,
    selection_plan,
)

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(131)
    return rng.uniform(0, 100, 3000), rng.uniform(0, 100, 3000)


@pytest.fixture(scope="module")
def pentagon():
    return Polygon([(20, 20), (70, 25), (75, 65), (45, 85), (15, 55)])


class TestSelectionPlan:
    def test_single_polygon_is_figure5(self, cloud, pentagon):
        xs, ys = cloud
        plan = selection_plan(xs, ys, pentagon, WINDOW, resolution=256)
        text = render_plan(plan)
        assert text.splitlines()[0].startswith("M[")
        assert "B[pip-merge]" in text and "CP" in text and "CQ1" in text
        assert "B*[" not in text  # single constraint: no multiway blend

    def test_multi_polygon_is_figure8b(self, cloud, pentagon):
        xs, ys = cloud
        other = Polygon([(50, 50), (90, 50), (90, 90), (50, 90)])
        plan = selection_plan(xs, ys, [pentagon, other], WINDOW,
                              resolution=256)
        assert "B*[poly-merge] (n=2)" in render_plan(plan)

    def test_evaluates_to_candidates(self, cloud, pentagon):
        xs, ys = cloud
        plan = selection_plan(xs, ys, pentagon, WINDOW, resolution=512)
        out = plan.evaluate()
        assert isinstance(out, CanvasSet)
        truth = set(np.nonzero(points_in_polygon(xs, ys, pentagon))[0]
                    .tolist())
        got = set(out.keys.tolist())
        # The plan output is the pre-refinement candidate set:
        # a superset of the truth, off only by boundary pixels.
        assert truth <= got
        assert len(got) - len(truth) < 0.05 * max(len(truth), 1) + 10

    def test_empty_constraints_raise(self, cloud):
        xs, ys = cloud
        with pytest.raises(ValueError):
            selection_plan(xs, ys, [], WINDOW)


class TestPolygonSelectionPlan:
    def test_figure6_shape_and_result(self, pentagon):
        data = [
            Polygon([(30, 30), (40, 30), (40, 40), (30, 40)]),   # overlaps
            Polygon([(90, 90), (95, 90), (95, 95), (90, 95)]),   # disjoint
        ]
        plan = polygon_selection_plan(data, pentagon, WINDOW, resolution=256)
        text = render_plan(plan)
        assert "B[poly-merge]" in text and "CY" in text
        out = plan.evaluate()
        assert isinstance(out, CanvasSet)
        assert set(out.keys.tolist()) == {0}


class TestCountPlan:
    def test_count_read_at_slot(self, cloud, pentagon):
        xs, ys = cloud
        plan = count_plan(xs, ys, pentagon, WINDOW, resolution=512)
        acc = plan.evaluate()
        assert isinstance(acc, Canvas)
        counted = float(acc.field(DIM_POINT, FIELD_COUNT)[0, 1])
        truth = int(points_in_polygon(xs, ys, pentagon).sum())
        # Pre-refinement plan: within the boundary-pixel margin.
        assert abs(counted - truth) <= 0.05 * truth + 10

    def test_diagram_mentions_aggregation_tail(self, cloud, pentagon):
        xs, ys = cloud
        plan = count_plan(xs, ys, pentagon, WINDOW, resolution=64)
        assert "B*[+] ∘ G[γc]" in render_plan(plan)


class TestDistancePlan:
    def test_circ_utility_leaf(self, cloud):
        xs, ys = cloud
        plan = distance_selection_plan(xs, ys, (50, 50), 15, WINDOW,
                                       resolution=512)
        assert "Circ[(50,50), 15]()" in render_plan(plan)
        out = plan.evaluate()
        truth = set(
            np.nonzero(np.hypot(xs - 50, ys - 50) <= 15)[0].tolist()
        )
        got = set(out.keys.tolist())
        assert truth <= got
