"""Stored procedures: convex hull and spatial skyline (Section 4.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.procedures import convex_hull_query, spatial_skyline


class TestConvexHullQuery:
    def test_square_corners(self):
        xs = np.array([0.0, 4.0, 4.0, 0.0, 2.0])
        ys = np.array([0.0, 0.0, 4.0, 4.0, 2.0])
        hull, on_hull = convex_hull_query(xs, ys)
        assert hull.area == pytest.approx(16.0)
        assert on_hull.tolist() == [0, 1, 2, 3]

    def test_all_points_contained(self):
        rng = np.random.default_rng(7)
        xs = rng.uniform(0, 100, 300)
        ys = rng.uniform(0, 100, 300)
        hull, _ = convex_hull_query(xs, ys)
        for i in range(0, 300, 7):
            assert hull.contains_point(xs[i], ys[i])

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            convex_hull_query(np.array([0.0, 1.0]), np.array([0.0, 1.0]))

    def test_collinear_raises(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            convex_hull_query(xs, xs)


class TestSpatialSkyline:
    def test_single_query_point_is_nearest_neighbor(self):
        """With |Q| = 1 the skyline degenerates to the 1-NN."""
        rng = np.random.default_rng(8)
        xs = rng.uniform(0, 100, 200)
        ys = rng.uniform(0, 100, 200)
        q = np.array([[40.0, 60.0]])
        skyline = spatial_skyline(xs, ys, q)
        d = np.hypot(xs - 40, ys - 60)
        assert skyline.tolist() == [int(np.argmin(d))]

    def test_two_query_points_manual(self):
        # Points on a line between the two query points are skyline;
        # a point dominated in both distances is not.
        xs = np.array([2.0, 5.0, 8.0, 5.0])
        ys = np.array([0.0, 0.0, 0.0, 9.0])
        q = np.array([[0.0, 0.0], [10.0, 0.0]])
        skyline = spatial_skyline(xs, ys, q)
        assert set(skyline.tolist()) == {0, 1, 2}

    def test_no_skyline_point_dominated(self):
        rng = np.random.default_rng(9)
        xs = rng.uniform(0, 100, 150)
        ys = rng.uniform(0, 100, 150)
        q = np.array([[20.0, 20.0], [80.0, 30.0], [50.0, 90.0]])
        skyline = set(spatial_skyline(xs, ys, q).tolist())
        dists = np.hypot(
            xs[:, None] - q[None, :, 0], ys[:, None] - q[None, :, 1]
        )
        # Brute-force the definition.
        for i in range(150):
            dominated = any(
                (dists[j] <= dists[i]).all() and (dists[j] < dists[i]).any()
                for j in range(150) if j != i
            )
            assert (i in skyline) == (not dominated)

    def test_empty_points(self):
        q = np.array([[0.0, 0.0]])
        assert spatial_skyline(np.array([]), np.array([]), q).tolist() == []

    def test_bad_query_shape_raises(self):
        with pytest.raises(ValueError):
            spatial_skyline(np.array([1.0]), np.array([1.0]),
                            np.zeros((2, 3)))
        with pytest.raises(ValueError):
            spatial_skyline(np.array([1.0]), np.array([1.0]),
                            np.zeros((0, 2)))

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_skyline_contains_per_query_nearest(self, seed):
        """Every query point's nearest neighbor is never dominated."""
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0, 50, 80)
        ys = rng.uniform(0, 50, 80)
        q = rng.uniform(0, 50, (3, 2))
        skyline = set(spatial_skyline(xs, ys, q).tolist())
        for qx, qy in q:
            nearest = int(np.argmin(np.hypot(xs - qx, ys - qy)))
            d = np.hypot(xs - qx, ys - qy)
            # Ties could allow an equally-near dominator; skip ties.
            if (d == d[nearest]).sum() == 1:
                assert nearest in skyline
