"""Aggregation queries (Figure 7 and Section 4.3) vs ground truth (E8, E9)."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon
from repro.core.queries import aggregate_over_select, join_aggregate


@pytest.fixture(scope="module")
def cloud_with_values():
    rng = np.random.default_rng(31)
    xs = rng.uniform(0, 100, 5000)
    ys = rng.uniform(0, 100, 5000)
    values = rng.uniform(1, 10, 5000)
    return xs, ys, values


@pytest.fixture(scope="module")
def districts():
    return [
        hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=i,
                           center=(30 + 20 * i, 50), radius=16)
        for i in range(3)
    ]


class TestAggregateOverSelect:
    def test_count(self, cloud_with_values, concave_polygon):
        xs, ys, _ = cloud_with_values
        count = aggregate_over_select(xs, ys, concave_polygon,
                                      aggregate="count", resolution=512)
        truth = int(points_in_polygon(xs, ys, concave_polygon).sum())
        assert count == truth

    def test_sum(self, cloud_with_values, concave_polygon):
        xs, ys, values = cloud_with_values
        total = aggregate_over_select(
            xs, ys, concave_polygon, values=values,
            aggregate="sum", resolution=512,
        )
        inside = points_in_polygon(xs, ys, concave_polygon)
        assert total == pytest.approx(float(values[inside].sum()))

    def test_avg(self, cloud_with_values, concave_polygon):
        xs, ys, values = cloud_with_values
        avg = aggregate_over_select(
            xs, ys, concave_polygon, values=values,
            aggregate="avg", resolution=512,
        )
        inside = points_in_polygon(xs, ys, concave_polygon)
        assert avg == pytest.approx(float(values[inside].mean()))

    def test_min_max(self, cloud_with_values, concave_polygon):
        xs, ys, values = cloud_with_values
        inside = points_in_polygon(xs, ys, concave_polygon)
        mn = aggregate_over_select(xs, ys, concave_polygon, values=values,
                                   aggregate="min", resolution=256)
        mx = aggregate_over_select(xs, ys, concave_polygon, values=values,
                                   aggregate="max", resolution=256)
        assert mn == pytest.approx(float(values[inside].min()))
        assert mx == pytest.approx(float(values[inside].max()))

    def test_empty_selection_count_zero(self, cloud_with_values):
        xs, ys, _ = cloud_with_values
        faraway = Polygon([(500, 500), (510, 500), (510, 510), (500, 510)])
        count = aggregate_over_select(xs, ys, faraway, resolution=64)
        assert count == 0.0

    def test_unsupported_aggregate_raises(self, cloud_with_values,
                                          concave_polygon):
        xs, ys, _ = cloud_with_values
        with pytest.raises(ValueError):
            aggregate_over_select(xs, ys, concave_polygon,
                                  aggregate="median", resolution=64)


class TestJoinAggregate:
    def test_group_by_count(self, cloud_with_values, districts):
        xs, ys, _ = cloud_with_values
        result = join_aggregate(xs, ys, districts, aggregate="count",
                                resolution=512)
        for pid, poly in enumerate(districts):
            truth = int(points_in_polygon(xs, ys, poly).sum())
            assert result.as_dict()[pid] == truth

    def test_group_by_sum(self, cloud_with_values, districts):
        xs, ys, values = cloud_with_values
        result = join_aggregate(xs, ys, districts, values=values,
                                aggregate="sum", resolution=512)
        for pid, poly in enumerate(districts):
            inside = points_in_polygon(xs, ys, poly)
            assert result.as_dict()[pid] == pytest.approx(
                float(values[inside].sum())
            )

    def test_custom_polygon_ids(self, cloud_with_values, districts):
        xs, ys, _ = cloud_with_values
        result = join_aggregate(
            xs, ys, districts, aggregate="count",
            polygon_ids=[10, 20, 30], resolution=256,
        )
        assert result.groups.tolist() == [10, 20, 30]

    def test_overlapping_districts_count_in_both(self):
        xs = np.array([50.0])
        ys = np.array([50.0])
        polys = [
            Polygon([(40, 40), (60, 40), (60, 60), (40, 60)]),
            Polygon([(45, 45), (65, 45), (65, 65), (45, 65)]),
        ]
        result = join_aggregate(xs, ys, polys, aggregate="count",
                                resolution=128)
        assert result.values.tolist() == [1.0, 1.0]

    def test_result_len_and_dict(self, cloud_with_values, districts):
        xs, ys, _ = cloud_with_values
        result = join_aggregate(xs, ys, districts, resolution=128)
        assert len(result) == 3
        assert set(result.as_dict()) == {0, 1, 2}
