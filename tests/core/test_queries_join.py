"""Join queries (Type I/II/III) vs brute-force ground truth (E10)."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.predicates import (
    points_in_polygon,
    polygon_intersects_polygon,
)
from repro.geometry.primitives import Polygon
from repro.core.queries import (
    distance_join,
    spatial_join_points_polygons,
    spatial_join_polygons_polygons,
)


@pytest.fixture(scope="module")
def small_cloud():
    rng = np.random.default_rng(21)
    return rng.uniform(0, 100, 3000), rng.uniform(0, 100, 3000)


@pytest.fixture(scope="module")
def neighborhood_polys():
    return [
        hand_drawn_polygon(n_vertices=10, irregularity=0.25, seed=i,
                           center=(25 + 25 * (i % 3), 25 + 25 * (i // 3)),
                           radius=14)
        for i in range(6)
    ]


class TestTypeIJoin:
    def test_matches_brute_force(self, small_cloud, neighborhood_polys):
        xs, ys = small_cloud
        pairs = spatial_join_points_polygons(
            xs, ys, neighborhood_polys, resolution=512
        )
        truth = sorted(
            (int(i), pid)
            for pid, poly in enumerate(neighborhood_polys)
            for i in np.nonzero(points_in_polygon(xs, ys, poly))[0]
        )
        assert pairs == truth

    def test_overlapping_polygons_produce_multiple_pairs(self):
        xs = np.array([50.0])
        ys = np.array([50.0])
        polys = [
            Polygon([(40, 40), (60, 40), (60, 60), (40, 60)]),
            Polygon([(45, 45), (65, 45), (65, 65), (45, 65)]),
        ]
        pairs = spatial_join_points_polygons(xs, ys, polys, resolution=128)
        assert pairs == [(0, 0), (0, 1)]

    def test_custom_ids(self):
        xs = np.array([50.0])
        ys = np.array([50.0])
        polys = [Polygon([(40, 40), (60, 40), (60, 60), (40, 60)])]
        pairs = spatial_join_points_polygons(
            xs, ys, polys, point_ids=np.array([7]), polygon_ids=[99],
            resolution=64,
        )
        assert pairs == [(7, 99)]

    def test_empty_inputs(self):
        pairs = spatial_join_points_polygons(
            np.array([1.0]), np.array([1.0]), [], resolution=64
        )
        assert pairs == []


class TestTypeIIJoin:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        left = [
            hand_drawn_polygon(n_vertices=8, seed=i,
                               center=(rng.uniform(15, 85), rng.uniform(15, 85)),
                               radius=8)
            for i in range(8)
        ]
        right = [
            hand_drawn_polygon(n_vertices=8, seed=100 + i,
                               center=(rng.uniform(15, 85), rng.uniform(15, 85)),
                               radius=12)
            for i in range(4)
        ]
        pairs = spatial_join_polygons_polygons(left, right, resolution=512)
        truth = sorted(
            (li, ri)
            for ri, rp in enumerate(right)
            for li, lp in enumerate(left)
            if polygon_intersects_polygon(lp, rp)
        )
        assert pairs == truth


class TestTypeIIIDistanceJoin:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(6)
        lx = rng.uniform(0, 50, 400)
        ly = rng.uniform(0, 50, 400)
        rx = rng.uniform(0, 50, 5)
        ry = rng.uniform(0, 50, 5)
        d = 6.0
        pairs = distance_join(lx, ly, rx, ry, d, resolution=512)
        truth = sorted(
            (int(i), j)
            for j in range(len(rx))
            for i in np.nonzero(np.hypot(lx - rx[j], ly - ry[j]) <= d)[0]
        )
        assert pairs == truth

    def test_zero_matches(self):
        pairs = distance_join(
            np.array([0.0]), np.array([0.0]),
            np.array([50.0]), np.array([50.0]),
            1.0, resolution=64,
        )
        assert pairs == []
