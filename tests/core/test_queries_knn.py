"""kNN via concentric circles (Section 4.4) vs the k-d tree oracle (E11)."""

import numpy as np
import pytest

from repro.index.kdtree import KDTree
from repro.core.queries import knn


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(41)
    return rng.uniform(0, 100, 2000), rng.uniform(0, 100, 2000)


class TestKnn:
    @pytest.mark.parametrize("k", [1, 5, 10, 50])
    def test_matches_kdtree(self, cloud, k):
        xs, ys = cloud
        query = (47.0, 53.0)
        result = knn(xs, ys, query, k, resolution=512)
        tree = KDTree(np.stack([xs, ys], axis=1))
        expected = {item for item, _ in tree.nearest(*query, k=k)}
        assert set(result.ids.tolist()) == expected

    def test_query_point_outside_cloud(self, cloud):
        xs, ys = cloud
        result = knn(xs, ys, (-20.0, -20.0), 3, resolution=256)
        d = np.hypot(xs + 20, ys + 20)
        assert set(result.ids.tolist()) == set(np.argsort(d)[:3].tolist())

    def test_k_equals_n(self):
        xs = np.array([1.0, 2.0, 3.0])
        ys = np.array([1.0, 2.0, 3.0])
        result = knn(xs, ys, (0.0, 0.0), 3, resolution=64)
        assert set(result.ids.tolist()) == {0, 1, 2}

    def test_invalid_k_raises(self, cloud):
        xs, ys = cloud
        with pytest.raises(ValueError):
            knn(xs, ys, (50, 50), 0)
        with pytest.raises(ValueError):
            knn(xs, ys, (50, 50), len(xs) + 1)

    def test_duplicate_distance_ties_resolved(self):
        """Four symmetric points with k=2: exactly two must come back
        (the paper's ϵ-perturbation total-order assumption)."""
        xs = np.array([1.0, -1.0, 0.0, 0.0, 5.0])
        ys = np.array([0.0, 0.0, 1.0, -1.0, 5.0])
        result = knn(xs, ys, (0.0, 0.0), 2, resolution=128)
        assert len(result.ids) == 2
        assert set(result.ids.tolist()) <= {0, 1, 2, 3}

    def test_clustered_points(self):
        rng = np.random.default_rng(7)
        xs = np.concatenate([rng.normal(20, 1, 500), rng.normal(80, 1, 500)])
        ys = np.concatenate([rng.normal(20, 1, 500), rng.normal(80, 1, 500)])
        result = knn(xs, ys, (20.0, 20.0), 25, resolution=512)
        # All results must come from the nearby cluster.
        assert (result.ids < 500).all()
        tree = KDTree(np.stack([xs, ys], axis=1))
        expected = {item for item, _ in tree.nearest(20.0, 20.0, k=25)}
        assert set(result.ids.tolist()) == expected
