"""Polyline selection: the 1-primitive path of the algebra.

Section 4: "It is straightforward to express similar queries for other
types of spatial data sets with lines" — this is that query, exact
against the segment-polygon brute-force predicate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.predicates import linestring_intersects_polygon
from repro.geometry.primitives import LineString, Polygon
from repro.core.queries import polygonal_select_lines


def _random_lines(rng, n, span=100.0, segments=4):
    lines = []
    for _ in range(n):
        start = rng.uniform(0, span, 2)
        steps = rng.normal(0, span * 0.06, (segments, 2))
        pts = np.vstack([start, start + np.cumsum(steps, axis=0)])
        lines.append(LineString(np.clip(pts, 0, span)))
    return lines


@pytest.fixture(scope="module")
def road_network():
    return _random_lines(np.random.default_rng(121), 120)


@pytest.fixture(scope="module")
def district():
    return hand_drawn_polygon(n_vertices=14, irregularity=0.3, seed=5,
                              center=(50, 50), radius=30)


class TestSelectLines:
    def test_exact_vs_brute_force(self, road_network, district):
        result = polygonal_select_lines(road_network, district,
                                        resolution=512)
        truth = {
            i for i, line in enumerate(road_network)
            if linestring_intersects_polygon(line.coords, district)
        }
        assert set(result.ids.tolist()) == truth

    def test_low_resolution_still_exact(self, road_network, district):
        fine = polygonal_select_lines(road_network, district, resolution=512)
        coarse = polygonal_select_lines(road_network, district, resolution=48)
        assert coarse.ids.tolist() == fine.ids.tolist()

    def test_line_fully_inside(self, district):
        p = district.representative_point()
        inside_line = LineString([(p.x, p.y), (p.x + 0.5, p.y + 0.5)])
        result = polygonal_select_lines([inside_line], district,
                                        resolution=256)
        assert result.ids.tolist() == [0]

    def test_line_crossing_without_interior_vertex(self):
        # A segment whose endpoints are outside but which crosses the
        # polygon: coverage + refinement must still catch it.
        square = Polygon([(40, 40), (60, 40), (60, 60), (40, 60)])
        crossing = LineString([(0, 50), (100, 50)])
        missing = LineString([(0, 90), (100, 90)])
        result = polygonal_select_lines([crossing, missing], square,
                                        resolution=128)
        assert result.ids.tolist() == [0]

    def test_custom_ids(self, district):
        p = district.representative_point()
        line = LineString([(p.x, p.y), (p.x + 1, p.y)])
        result = polygonal_select_lines([line], district, ids=[77],
                                        resolution=128)
        assert result.ids.tolist() == [77]

    def test_empty_result(self):
        square = Polygon([(40, 40), (60, 40), (60, 60), (40, 60)])
        line = LineString([(0, 0), (10, 10)])
        result = polygonal_select_lines([line], square, resolution=128)
        assert len(result.ids) == 0

    def test_approximate_mode(self, road_network, district):
        approx = polygonal_select_lines(road_network, district,
                                        resolution=512, exact=False)
        exact = polygonal_select_lines(road_network, district,
                                       resolution=512)
        # Conservative coverage: approximate is a superset.
        assert set(exact.ids.tolist()) <= set(approx.ids.tolist())

    @given(st.integers(0, 60))
    @settings(max_examples=10, deadline=None)
    def test_random_property(self, seed):
        rng = np.random.default_rng(seed)
        lines = _random_lines(rng, 25)
        poly = hand_drawn_polygon(
            n_vertices=10, irregularity=0.4, seed=seed,
            center=(50, 50), radius=35,
        )
        result = polygonal_select_lines(lines, poly, resolution=256)
        truth = {
            i for i, line in enumerate(lines)
            if linestring_intersects_polygon(line.coords, poly)
        }
        assert set(result.ids.tolist()) == truth


class TestLinePredicates:
    def test_vertex_inside(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert linestring_intersects_polygon([(5, 5), (20, 20)], square)

    def test_crossing_only(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert linestring_intersects_polygon([(-5, 5), (15, 5)], square)

    def test_disjoint(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert not linestring_intersects_polygon([(20, 20), (30, 30)], square)

    def test_inside_hole_not_intersecting(self):
        holed = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(3, 3), (7, 3), (7, 7), (3, 7)]],
        )
        assert not linestring_intersects_polygon([(4, 4), (6, 6)], holed)
        # Crossing the hole wall does touch the polygon.
        assert linestring_intersects_polygon([(4, 4), (8, 8)], holed)
