"""Heterogeneous-object selection (Figures 1 & 3): one expression,
any geometry type."""

import numpy as np
import pytest

from repro.geometry.predicates import (
    linestring_intersects_polygon,
    point_in_polygon,
    polygon_intersects_polygon,
)
from repro.geometry.primitives import (
    GeometryCollection,
    LineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.core.queries import polygonal_select_objects

QUERY = Polygon([(30, 30), (70, 30), (70, 70), (30, 70)])


class TestMixedRecords:
    def test_each_type_dispatches(self):
        records = [
            Point(50, 50),                                     # inside
            Point(5, 5),                                       # outside
            LineString([(0, 50), (100, 50)]),                  # crosses
            LineString([(0, 90), (100, 90)]),                  # misses
            Polygon([(60, 60), (80, 60), (80, 80), (60, 80)]),  # overlaps
            Polygon([(85, 85), (95, 85), (95, 95), (85, 95)]),  # disjoint
        ]
        result = polygonal_select_objects(records, QUERY, resolution=256)
        assert result.ids.tolist() == [0, 2, 4]

    def test_figure3_object_selected_via_any_primitive(self):
        """A complex object (two polygons + line + point, one id) is
        selected when any primitive touches the query."""
        complex_object = GeometryCollection([
            Polygon([(0, 45), (10, 45), (10, 55), (0, 55)]),   # outside
            LineString([(10, 50), (40, 50)]),                  # reaches in
            Point(5, 50),                                      # outside
        ])
        lonely_object = GeometryCollection([
            Point(5, 5),
            LineString([(0, 0), (10, 10)]),
        ])
        result = polygonal_select_objects(
            [complex_object, lonely_object], QUERY, resolution=256
        )
        assert result.ids.tolist() == [0]

    def test_multi_variants(self):
        records = [
            MultiPoint([(5, 5), (50, 50)]),        # one member inside
            MultiPoint([(5, 5), (10, 90)]),        # all outside
            MultiPolygon([
                Polygon([(0, 0), (5, 0), (5, 5), (0, 5)]),
                Polygon([(40, 40), (45, 40), (45, 45), (40, 45)]),
            ]),                                     # second member inside
        ]
        result = polygonal_select_objects(records, QUERY, resolution=256)
        assert result.ids.tolist() == [0, 2]

    def test_custom_ids(self):
        result = polygonal_select_objects(
            [Point(50, 50), Point(5, 5)], QUERY, ids=[700, 800],
            resolution=128,
        )
        assert result.ids.tolist() == [700]

    def test_ids_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            polygonal_select_objects([Point(0, 0)], QUERY, ids=[1, 2])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            polygonal_select_objects(["not a geometry"], QUERY)

    def test_randomized_against_per_type_truth(self):
        rng = np.random.default_rng(141)
        records = []
        for i in range(60):
            kind = i % 3
            cx, cy = rng.uniform(0, 100, 2)
            if kind == 0:
                records.append(Point(cx, cy))
            elif kind == 1:
                dx, dy = rng.uniform(-15, 15, 2)
                records.append(LineString([(cx, cy), (cx + dx, cy + dy)]))
            else:
                r = rng.uniform(2, 8)
                records.append(Polygon([
                    (cx - r, cy - r), (cx + r, cy - r),
                    (cx + r, cy + r), (cx - r, cy + r),
                ]))
        result = polygonal_select_objects(records, QUERY, resolution=512)
        truth = set()
        for i, geom in enumerate(records):
            if isinstance(geom, Point):
                hit = point_in_polygon(geom.x, geom.y, QUERY)
            elif isinstance(geom, LineString):
                hit = linestring_intersects_polygon(geom.coords, QUERY)
            else:
                hit = polygon_intersects_polygon(geom, QUERY)
            if hit:
                truth.add(i)
        assert set(result.ids.tolist()) == truth
