"""Origin-destination double-constraint selection (Fig. 8a) (E13)."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.data.taxi import generate_taxi_trips
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon
from repro.core.queries import od_select


@pytest.fixture(scope="module")
def od_data():
    rng = np.random.default_rng(51)
    n = 4000
    return (
        rng.uniform(0, 100, n), rng.uniform(0, 100, n),
        rng.uniform(0, 100, n), rng.uniform(0, 100, n),
    )


@pytest.fixture(scope="module")
def q1():
    return hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=1,
                              center=(30, 35), radius=20)


@pytest.fixture(scope="module")
def q2():
    return hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=2,
                              center=(70, 65), radius=22)


def _truth(ox, oy, dx, dy, q1, q2):
    return set(
        np.nonzero(
            points_in_polygon(ox, oy, q1) & points_in_polygon(dx, dy, q2)
        )[0].tolist()
    )


class TestOdSelect:
    def test_matches_brute_force(self, od_data, q1, q2):
        ox, oy, dx, dy = od_data
        result = od_select(ox, oy, dx, dy, q1, q2, resolution=512)
        assert set(result.ids.tolist()) == _truth(ox, oy, dx, dy, q1, q2)

    def test_empty_when_constraints_disjoint_from_data(self, od_data):
        ox, oy, dx, dy = od_data
        far1 = Polygon([(500, 500), (510, 500), (510, 510), (500, 510)])
        far2 = Polygon([(600, 600), (610, 600), (610, 610), (600, 610)])
        result = od_select(ox, oy, dx, dy, far1, far2, resolution=64)
        assert len(result.ids) == 0

    def test_custom_ids(self, q1, q2):
        # One trip from inside q1 to inside q2.
        p1 = q1.representative_point()
        p2 = q2.representative_point()
        result = od_select(
            np.array([p1.x, 0.0]), np.array([p1.y, 0.0]),
            np.array([p2.x, 0.0]), np.array([p2.y, 0.0]),
            q1, q2, ids=np.array([111, 222]), resolution=256,
        )
        assert result.ids.tolist() == [111]

    def test_on_taxi_trips(self, q1, q2):
        trips = generate_taxi_trips(3000, seed=3)
        # Rescale constraints into the taxi window.
        from repro.data.polygons import rescale_to_box
        from repro.geometry.bbox import BoundingBox

        qa = rescale_to_box(q1, BoundingBox(2, 5, 12, 20))
        qb = rescale_to_box(q2, BoundingBox(8, 20, 18, 35))
        result = od_select(
            trips.pickup_x, trips.pickup_y,
            trips.dropoff_x, trips.dropoff_y,
            qa, qb, resolution=512,
        )
        truth = _truth(
            trips.pickup_x, trips.pickup_y,
            trips.dropoff_x, trips.dropoff_y, qa, qb,
        )
        assert set(result.ids.tolist()) == truth

    def test_order_of_constraints_matters(self, od_data, q1, q2):
        """Origin in q1 AND dest in q2 differs from the swap."""
        ox, oy, dx, dy = od_data
        forward = od_select(ox, oy, dx, dy, q1, q2, resolution=256)
        swapped = od_select(ox, oy, dx, dy, q2, q1, resolution=256)
        t_forward = _truth(ox, oy, dx, dy, q1, q2)
        t_swapped = _truth(ox, oy, dx, dy, q2, q1)
        assert set(forward.ids.tolist()) == t_forward
        assert set(swapped.ids.tolist()) == t_swapped
