"""Selection queries vs brute-force ground truth (E6, E7, E14)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.predicates import (
    points_in_polygon,
    polygon_intersects_polygon,
)
from repro.geometry.primitives import Polygon
from repro.gpu.device import Device
from repro.core.queries import (
    distance_select,
    halfspace_select,
    multi_polygonal_select,
    polygonal_select_points,
    polygonal_select_polygons,
    range_select,
)


def _truth(xs, ys, polygon):
    return set(np.nonzero(points_in_polygon(xs, ys, polygon))[0].tolist())


class TestPolygonalSelectPoints:
    def test_exact_vs_brute_force(self, uniform_cloud, concave_polygon):
        xs, ys = uniform_cloud
        result = polygonal_select_points(xs, ys, concave_polygon,
                                         resolution=512)
        assert set(result.ids.tolist()) == _truth(xs, ys, concave_polygon)

    def test_exact_with_holes(self, uniform_cloud, holed_polygon):
        xs, ys = uniform_cloud
        result = polygonal_select_points(xs, ys, holed_polygon,
                                         resolution=512)
        assert set(result.ids.tolist()) == _truth(xs, ys, holed_polygon)

    def test_low_resolution_still_exact(self, uniform_cloud, concave_polygon):
        """Exactness must not depend on texture size — only speed does
        (the paper's hybrid-accuracy claim)."""
        xs, ys = uniform_cloud
        result = polygonal_select_points(xs, ys, concave_polygon,
                                         resolution=48)
        assert set(result.ids.tolist()) == _truth(xs, ys, concave_polygon)

    def test_approximate_mode_close(self, uniform_cloud, concave_polygon):
        xs, ys = uniform_cloud
        exact = polygonal_select_points(xs, ys, concave_polygon,
                                        resolution=512)
        approx = polygonal_select_points(xs, ys, concave_polygon,
                                         resolution=512, exact=False)
        n = len(exact.ids)
        assert abs(len(approx.ids) - n) <= max(0.02 * n, 8)
        assert approx.n_exact_tests == 0

    def test_custom_ids_respected(self, concave_polygon):
        xs = np.array([40.0, 5.0])
        ys = np.array([50.0, 5.0])
        result = polygonal_select_points(
            xs, ys, concave_polygon, ids=np.array([100, 200]),
            resolution=128,
        )
        assert result.ids.tolist() == [100]

    def test_integrated_device_same_result(self, uniform_cloud, concave_polygon):
        xs, ys = uniform_cloud
        discrete = polygonal_select_points(
            xs, ys, concave_polygon, resolution=256,
            device=Device.discrete(),
        )
        integrated = polygonal_select_points(
            xs, ys, concave_polygon, resolution=256,
            device=Device.integrated(tile_rows=16),
        )
        assert discrete.ids.tolist() == integrated.ids.tolist()

    def test_no_polygons_raises(self, uniform_cloud):
        xs, ys = uniform_cloud
        with pytest.raises(ValueError):
            polygonal_select_points(xs, ys, [], resolution=64)

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_random_polygons_property(self, seed):
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0, 100, 2000)
        ys = rng.uniform(0, 100, 2000)
        poly = hand_drawn_polygon(
            n_vertices=int(rng.integers(5, 30)),
            irregularity=float(rng.uniform(0, 0.8)),
            seed=seed, center=(50, 50), radius=40,
        )
        result = polygonal_select_points(xs, ys, poly, resolution=256)
        assert set(result.ids.tolist()) == _truth(xs, ys, poly)


class TestMultiPolygonSelect:
    def test_disjunction(self, uniform_cloud, star_polygons):
        xs, ys = uniform_cloud
        polys = star_polygons[:3]
        result = multi_polygonal_select(xs, ys, polys, mode="any",
                                        resolution=512)
        truth = set()
        for p in polys:
            truth |= _truth(xs, ys, p)
        assert set(result.ids.tolist()) == truth

    def test_conjunction(self, uniform_cloud, star_polygons):
        xs, ys = uniform_cloud
        polys = star_polygons[:3]
        result = multi_polygonal_select(xs, ys, polys, mode="all",
                                        resolution=512)
        truth = _truth(xs, ys, polys[0])
        for p in polys[1:]:
            truth &= _truth(xs, ys, p)
        assert set(result.ids.tolist()) == truth

    def test_single_polygon_equals_plain_select(self, uniform_cloud,
                                                concave_polygon):
        """Mp' with one polygon reproduces Mp (Section 5.1)."""
        xs, ys = uniform_cloud
        multi = multi_polygonal_select(xs, ys, [concave_polygon],
                                       resolution=256)
        single = polygonal_select_points(xs, ys, concave_polygon,
                                         resolution=256)
        assert multi.ids.tolist() == single.ids.tolist()


class TestRangeAndHalfspaceAndDistance:
    def test_range_select(self, uniform_cloud):
        xs, ys = uniform_cloud
        result = range_select(xs, ys, (20, 30), (60, 70), resolution=256)
        truth = set(
            np.nonzero((xs >= 20) & (xs <= 60) & (ys >= 30) & (ys <= 70))[0]
            .tolist()
        )
        assert set(result.ids.tolist()) == truth

    def test_halfspace_select(self, uniform_cloud):
        xs, ys = uniform_cloud
        # x + y - 100 < 0.
        result = halfspace_select(xs, ys, 1.0, 1.0, -100.0, resolution=256)
        truth = set(np.nonzero(xs + ys < 100.0)[0].tolist())
        got = set(result.ids.tolist())
        # The half-space boundary is refined against the clipped
        # polygon; points exactly on the line may go either way.
        on_line = set(np.nonzero(np.abs(xs + ys - 100.0) < 1e-9)[0].tolist())
        assert got - on_line == truth - on_line

    def test_halfspace_nothing_selected(self, uniform_cloud):
        xs, ys = uniform_cloud
        result = halfspace_select(xs, ys, 1.0, 0.0, 1000.0, resolution=64)
        assert len(result.ids) == 0

    def test_distance_select(self, uniform_cloud):
        xs, ys = uniform_cloud
        result = distance_select(xs, ys, (50, 50), 18.0, resolution=512)
        truth = set(
            np.nonzero(np.hypot(xs - 50, ys - 50) <= 18.0)[0].tolist()
        )
        assert set(result.ids.tolist()) == truth

    def test_distance_select_small_radius(self, uniform_cloud):
        xs, ys = uniform_cloud
        result = distance_select(xs, ys, (50, 50), 1.5, resolution=512)
        truth = set(
            np.nonzero(np.hypot(xs - 50, ys - 50) <= 1.5)[0].tolist()
        )
        assert set(result.ids.tolist()) == truth


class TestPolygonalSelectPolygons:
    def test_exact_vs_brute_force(self, star_polygons):
        rng = np.random.default_rng(3)
        data_polys = [
            hand_drawn_polygon(
                n_vertices=9, irregularity=0.3, seed=100 + i,
                center=(rng.uniform(10, 90), rng.uniform(10, 90)),
                radius=rng.uniform(3, 12),
            )
            for i in range(30)
        ]
        query = star_polygons[2]
        result = polygonal_select_polygons(data_polys, query, resolution=512)
        truth = {
            i for i, p in enumerate(data_polys)
            if polygon_intersects_polygon(p, query)
        }
        assert set(result.ids.tolist()) == truth

    def test_contained_polygon_selected(self):
        big = Polygon([(0, 0), (100, 0), (100, 100), (0, 100)])
        small = Polygon([(40, 40), (60, 40), (60, 60), (40, 60)])
        result = polygonal_select_polygons([small], big, resolution=128)
        assert result.ids.tolist() == [0]

    def test_empty_result(self):
        data = [Polygon([(0, 0), (5, 0), (5, 5), (0, 5)])]
        query = Polygon([(50, 50), (60, 50), (60, 60), (50, 60)])
        result = polygonal_select_polygons(data, query, resolution=128)
        assert len(result.ids) == 0

    def test_same_operators_for_points_and_polygons(self, concave_polygon):
        """Figure 1's motivation: switching the data type from points to
        polygons does not change the expression — both run blend+mask."""
        # Points version.
        xs = np.array([40.0])
        ys = np.array([50.0])
        pr = polygonal_select_points(xs, ys, concave_polygon, resolution=128)
        # Polygon version with a tiny polygon around the same location.
        tiny = Polygon([(39, 49), (41, 49), (41, 51), (39, 51)])
        yr = polygonal_select_polygons([tiny], concave_polygon, resolution=128)
        assert len(pr.ids) == 1 and len(yr.ids) == 1
