"""Voronoi stored procedure (Section 4.5) vs scipy and brute force (E12)."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.gpu.device import Device
from repro.core.queries import voronoi
from repro.core.objectinfo import DIM_AREA, FIELD_COUNT, FIELD_ID

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


def _brute_force_owner(canvas, points):
    gx, gy = canvas.pixel_center_grids()
    d2 = (
        (gx[None, :, :] - points[:, 0, None, None]) ** 2
        + (gy[None, :, :] - points[:, 1, None, None]) ** 2
    )
    return d2.argmin(axis=0)


class TestVoronoi:
    def test_three_sites_regions(self):
        pts = np.array([[20.0, 20.0], [80.0, 30.0], [50.0, 80.0]])
        canvas = voronoi(pts, WINDOW, resolution=64)
        owner = canvas.field(DIM_AREA, FIELD_ID)
        expected = _brute_force_owner(canvas, pts)
        # Ties on pixel centers are measure-zero for generic sites.
        assert (owner == expected).mean() > 0.999

    def test_whole_canvas_claimed(self):
        pts = np.array([[50.0, 50.0]])
        canvas = voronoi(pts, WINDOW, resolution=32)
        assert canvas.valid(DIM_AREA).all()
        assert (canvas.field(DIM_AREA, FIELD_ID) == 0).all()

    def test_distance_squared_stored(self):
        """The paper's f stores d^2 in the second tuple element."""
        pts = np.array([[50.0, 50.0]])
        canvas = voronoi(pts, WINDOW, resolution=32)
        d2 = canvas.field(DIM_AREA, FIELD_COUNT)
        gx, gy = canvas.pixel_center_grids()
        expected = (gx - 50.0) ** 2 + (gy - 50.0) ** 2
        np.testing.assert_allclose(d2, expected)

    def test_insertion_order_irrelevant(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(10, 90, (8, 2))
        a = voronoi(pts, WINDOW, resolution=48)
        perm = rng.permutation(8)
        b = voronoi(pts[perm], WINDOW, resolution=48)
        remap = np.empty(8, dtype=int)
        remap[np.arange(8)] = perm  # b's site i is a's site perm[i]
        owner_a = a.field(DIM_AREA, FIELD_ID).astype(int)
        owner_b = b.field(DIM_AREA, FIELD_ID).astype(int)
        assert (remap[owner_b] == owner_a).mean() > 0.995

    def test_matches_scipy_region_assignment(self):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        rng = np.random.default_rng(10)
        pts = rng.uniform(10, 90, (12, 2))
        canvas = voronoi(pts, WINDOW, resolution=64)
        owner = canvas.field(DIM_AREA, FIELD_ID).astype(int)
        tree = scipy_spatial.cKDTree(pts)
        gx, gy = canvas.pixel_center_grids()
        _, nearest = tree.query(
            np.stack([gx.ravel(), gy.ravel()], axis=1)
        )
        agreement = (owner.ravel() == nearest).mean()
        assert agreement > 0.999

    def test_device_equivalence(self):
        pts = np.array([[30.0, 30.0], [70.0, 70.0]])
        a = voronoi(pts, WINDOW, resolution=32, device=Device.discrete())
        b = voronoi(pts, WINDOW, resolution=32,
                    device=Device.integrated(tile_rows=5))
        np.testing.assert_array_equal(
            a.field(DIM_AREA, FIELD_ID), b.field(DIM_AREA, FIELD_ID)
        )

    def test_bad_points_shape_raises(self):
        with pytest.raises(ValueError):
            voronoi(np.zeros((3, 3)), WINDOW, resolution=16)
