"""RasterJoin plan (Fig. 8c) vs the exact join-aggregate (E15)."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon
from repro.core.queries import join_aggregate
from repro.core.rasterjoin import raster_join_aggregate


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(61)
    xs = rng.uniform(0, 100, 8000)
    ys = rng.uniform(0, 100, 8000)
    values = rng.uniform(0, 5, 8000)
    polys = [
        hand_drawn_polygon(n_vertices=10, irregularity=0.25, seed=i,
                           center=(30 + 20 * i, 50), radius=18)
        for i in range(3)
    ]
    return xs, ys, values, polys


class TestApproximation:
    def test_count_within_resolution_error(self, workload):
        xs, ys, _, polys = workload
        approx = raster_join_aggregate(xs, ys, polys, aggregate="count",
                                       resolution=512)
        for pid, poly in enumerate(polys):
            truth = int(points_in_polygon(xs, ys, poly).sum())
            rel_err = abs(approx.as_dict()[pid] - truth) / max(truth, 1)
            assert rel_err < 0.06

    def test_error_shrinks_with_resolution(self, workload):
        """The paper: texture size bounds the approximation error."""
        xs, ys, _, polys = workload
        errors = []
        for resolution in (64, 256, 1024):
            approx = raster_join_aggregate(
                xs, ys, polys, aggregate="count", resolution=resolution
            )
            total_err = 0.0
            for pid, poly in enumerate(polys):
                truth = int(points_in_polygon(xs, ys, poly).sum())
                total_err += abs(approx.as_dict()[pid] - truth) / max(truth, 1)
            errors.append(total_err)
        assert errors[2] <= errors[0]

    def test_sum_and_avg(self, workload):
        xs, ys, values, polys = workload
        s = raster_join_aggregate(xs, ys, polys, values=values,
                                  aggregate="sum", resolution=512)
        a = raster_join_aggregate(xs, ys, polys, values=values,
                                  aggregate="avg", resolution=512)
        for pid, poly in enumerate(polys):
            inside = points_in_polygon(xs, ys, poly)
            truth_sum = float(values[inside].sum())
            rel = abs(s.as_dict()[pid] - truth_sum) / max(truth_sum, 1e-9)
            assert rel < 0.06
            truth_avg = float(values[inside].mean())
            assert a.as_dict()[pid] == pytest.approx(truth_avg, rel=0.05)

    def test_unsupported_aggregate_raises(self, workload):
        xs, ys, _, polys = workload
        with pytest.raises(ValueError):
            raster_join_aggregate(xs, ys, polys, aggregate="min")


class TestAgainstExactPlan:
    def test_error_bounded_by_boundary_ribbon(self):
        """RasterJoin can only miscount points in boundary pixels: its
        error is bounded by the conservative boundary ribbon's point
        population (the paper's texture-size error bound)."""
        rng = np.random.default_rng(62)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        polys = [
            Polygon([(10, 10), (40, 10), (40, 40), (10, 40)]),
            Polygon([(60, 60), (90, 60), (90, 90), (60, 90)]),
        ]
        exact = join_aggregate(xs, ys, polys, aggregate="count",
                               resolution=256)
        approx = raster_join_aggregate(xs, ys, polys, aggregate="count",
                                       resolution=256)
        for pid, poly in enumerate(polys):
            # Ribbon bound: perimeter / pixel-size pixels, ~n/area
            # points per pixel; use a generous 3x factor.
            perimeter = 2 * (30 + 30)
            pixel = 100.0 / 256.0
            ribbon_points = 3.0 * perimeter * 2 * pixel * (3000 / 10_000.0)
            assert abs(approx.as_dict()[pid] - exact.as_dict()[pid]) <= (
                ribbon_points
            )

    def test_group_ids_preserved(self, workload):
        xs, ys, _, polys = workload
        result = raster_join_aggregate(
            xs, ys, polys, aggregate="count",
            polygon_ids=[5, 6, 7], resolution=128,
        )
        assert result.groups.tolist() == [5, 6, 7]
