"""Tests for CSV/GeoJSON data-set IO."""

import pytest

from repro.data.datasets import read_csv, read_geojson, write_csv, write_geojson
from repro.geometry.primitives import Point, Polygon


@pytest.fixture
def sample_data():
    geometries = [
        Point(1, 2),
        Polygon([(0, 0), (4, 0), (4, 4), (0, 4)],
                holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]]),
    ]
    properties = [{"name": "depot", "fare": 3.5}, {"name": "zone"}]
    return geometries, properties


class TestCsv:
    def test_roundtrip(self, tmp_path, sample_data):
        geometries, properties = sample_data
        path = tmp_path / "data.csv"
        write_csv(path, geometries, properties)
        back_geoms, back_props = read_csv(path)
        assert len(back_geoms) == 2
        assert isinstance(back_geoms[0], Point)
        assert isinstance(back_geoms[1], Polygon)
        assert back_geoms[1].area == pytest.approx(15.0)
        assert back_props[0]["name"] == "depot"
        # Missing keys become empty strings (CSV has a uniform header).
        assert back_props[1]["fare"] == ""

    def test_geometry_only(self, tmp_path):
        path = tmp_path / "geo.csv"
        write_csv(path, [Point(5, 6)])
        geoms, props = read_csv(path)
        assert geoms[0].x == 5 and props == [{}]

    def test_length_mismatch_raises(self, tmp_path, sample_data):
        geometries, _ = sample_data
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", geometries, [{}])

    def test_missing_geometry_column_raises(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_csv(path)


class TestGeojson:
    def test_roundtrip(self, tmp_path, sample_data):
        geometries, properties = sample_data
        path = tmp_path / "data.geojson"
        write_geojson(path, geometries, properties)
        back_geoms, back_props = read_geojson(path)
        assert len(back_geoms) == 2
        assert back_props[0] == {"name": "depot", "fare": 3.5}
        assert isinstance(back_geoms[1], Polygon)
        assert len(back_geoms[1].holes) == 1

    def test_reads_bare_geometry(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('{"type": "Point", "coordinates": [3, 4]}')
        geoms, props = read_geojson(path)
        assert geoms[0].x == 3 and props == [{}]

    def test_reads_single_feature(self, tmp_path):
        path = tmp_path / "feature.json"
        path.write_text(
            '{"type": "Feature", "geometry": '
            '{"type": "Point", "coordinates": [1, 1]}, '
            '"properties": {"k": 1}}'
        )
        geoms, props = read_geojson(path)
        assert len(geoms) == 1 and props[0]["k"] == 1
