"""Tests for constraint-polygon generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.polygons import (
    calibrate_selectivity,
    hand_drawn_polygon,
    polygon_with_holes,
    rescale_to_box,
)
from repro.data.synthetic import uniform_points
from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon


class TestHandDrawn:
    def test_vertex_count(self):
        poly = hand_drawn_polygon(n_vertices=17, seed=0)
        assert len(poly.shell) == 17

    def test_deterministic(self):
        a = hand_drawn_polygon(seed=3)
        b = hand_drawn_polygon(seed=3)
        assert a.shell.coords == b.shell.coords

    @given(st.integers(0, 2000), st.integers(3, 40),
           st.floats(0.0, 0.9))
    @settings(max_examples=80, deadline=None)
    def test_always_simple(self, seed, n_vertices, irregularity):
        poly = hand_drawn_polygon(
            n_vertices=n_vertices, irregularity=irregularity, seed=seed
        )
        assert poly.shell.is_simple()
        assert poly.area > 0

    def test_irregularity_shrinks_area(self):
        regular = hand_drawn_polygon(n_vertices=30, irregularity=0.0, seed=1)
        spiky = hand_drawn_polygon(n_vertices=30, irregularity=0.8, seed=1)
        assert spiky.area < regular.area

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            hand_drawn_polygon(n_vertices=2)
        with pytest.raises(ValueError):
            hand_drawn_polygon(irregularity=1.0)

    def test_center_and_radius_respected(self):
        poly = hand_drawn_polygon(seed=4, center=(50, 60), radius=10)
        b = poly.bounds
        assert 40 <= b.xmin and b.xmax <= 60
        assert 50 <= b.ymin and b.ymax <= 70


class TestHoles:
    def test_holes_inside_shell(self):
        poly = polygon_with_holes(seed=5, center=(0, 0), radius=10,
                                  n_holes=2)
        assert len(poly.holes) >= 1
        for hole in poly.holes:
            for x, y in hole.coords:
                assert poly.shell.contains_point(x, y)

    def test_area_less_than_shell(self):
        poly = polygon_with_holes(seed=6, n_holes=2)
        assert poly.area < poly.shell.area


class TestRescale:
    def test_mbr_matches_target(self):
        poly = hand_drawn_polygon(seed=7)
        target = BoundingBox(10, 20, 110, 70)
        scaled = rescale_to_box(poly, target)
        b = scaled.bounds
        assert tuple(b) == pytest.approx(tuple(target), abs=1e-9)

    def test_shape_preserved_up_to_affine(self):
        poly = hand_drawn_polygon(seed=8)
        target = BoundingBox(0, 0, 10, 10)
        scaled = rescale_to_box(poly, target)
        assert len(scaled.shell) == len(poly.shell)


class TestSelectivityCalibration:
    @pytest.mark.parametrize("target", [0.1, 0.4, 0.8])
    def test_hits_target(self, target):
        # Selectivity is measured over the points handed in; mirroring
        # the paper's setup, those are the points inside the query MBR.
        window = BoundingBox(0, 0, 100, 100)
        all_x, all_y = uniform_points(20_000, window, seed=10)
        mbr = BoundingBox(10, 10, 90, 90)
        in_mbr = (
            (all_x >= 10) & (all_x <= 90) & (all_y >= 10) & (all_y <= 90)
        )
        xs, ys = all_x[in_mbr], all_y[in_mbr]
        poly, achieved = calibrate_selectivity(
            xs, ys, target, mbr, seed=11
        )
        assert abs(achieved - target) < 0.05
        assert tuple(poly.bounds) == pytest.approx(tuple(mbr), abs=1e-6)
        # Achieved selectivity must describe the polygon faithfully.
        actual = points_in_polygon(xs, ys, poly).mean()
        assert actual == pytest.approx(achieved, abs=1e-9)

    def test_invalid_target_raises(self):
        xs, ys = uniform_points(100, BoundingBox(0, 0, 1, 1), seed=0)
        with pytest.raises(ValueError):
            calibrate_selectivity(xs, ys, 1.5, BoundingBox(0, 0, 1, 1))

    def test_empty_points_raises(self):
        with pytest.raises(ValueError):
            calibrate_selectivity(
                np.array([]), np.array([]), 0.5, BoundingBox(0, 0, 1, 1)
            )
