"""Tests for synthetic point generators."""

import numpy as np
import pytest

from repro.data.synthetic import gaussian_mixture_points, uniform_points
from repro.geometry.bbox import BoundingBox

WINDOW = BoundingBox(0.0, 0.0, 100.0, 50.0)


class TestUniform:
    def test_count_and_bounds(self):
        xs, ys = uniform_points(1000, WINDOW, seed=1)
        assert len(xs) == len(ys) == 1000
        assert (xs >= 0).all() and (xs <= 100).all()
        assert (ys >= 0).all() and (ys <= 50).all()

    def test_deterministic_per_seed(self):
        a = uniform_points(100, WINDOW, seed=5)
        b = uniform_points(100, WINDOW, seed=5)
        c = uniform_points(100, WINDOW, seed=6)
        assert np.array_equal(a[0], b[0])
        assert not np.array_equal(a[0], c[0])

    def test_roughly_uniform(self):
        xs, ys = uniform_points(20_000, WINDOW, seed=2)
        # Left and right halves should hold similar counts.
        left = (xs < 50).sum()
        assert 0.45 < left / 20_000 < 0.55


class TestGaussianMixture:
    def test_count_and_bounds(self):
        xs, ys = gaussian_mixture_points(5000, WINDOW, seed=3)
        assert len(xs) == 5000
        assert (xs >= 0).all() and (xs <= 100).all()
        assert (ys >= 0).all() and (ys <= 50).all()

    def test_skewed_compared_to_uniform(self):
        """Hotspot data concentrates mass: the densest decile cell of
        the mixture holds more points than uniform's densest cell."""
        n = 20_000
        gx, gy = gaussian_mixture_points(n, WINDOW, n_clusters=4,
                                         spread=0.03, seed=4)
        ux, uy = uniform_points(n, WINDOW, seed=4)

        def max_cell(xs, ys):
            h, _, _ = np.histogram2d(xs, ys, bins=10,
                                     range=[[0, 100], [0, 50]])
            return h.max()

        assert max_cell(gx, gy) > 1.5 * max_cell(ux, uy)

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            gaussian_mixture_points(100, WINDOW, n_clusters=0)

    def test_deterministic(self):
        a = gaussian_mixture_points(500, WINDOW, seed=9)
        b = gaussian_mixture_points(500, WINDOW, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
