"""Tests for the synthetic taxi-trip generator."""

import numpy as np

from repro.data.taxi import NYC_WINDOW, generate_taxi_trips


class TestGeneration:
    def test_count_and_window(self):
        trips = generate_taxi_trips(5000, seed=1)
        assert len(trips) == 5000
        for arr in (trips.pickup_x, trips.dropoff_x):
            assert (arr >= NYC_WINDOW.xmin).all()
            assert (arr <= NYC_WINDOW.xmax).all()
        for arr in (trips.pickup_y, trips.dropoff_y):
            assert (arr >= NYC_WINDOW.ymin).all()
            assert (arr <= NYC_WINDOW.ymax).all()

    def test_deterministic(self):
        a = generate_taxi_trips(100, seed=2)
        b = generate_taxi_trips(100, seed=2)
        assert np.array_equal(a.pickup_x, b.pickup_x)
        assert np.array_equal(a.fare, b.fare)

    def test_sorted_by_pickup_time(self):
        trips = generate_taxi_trips(1000, seed=3)
        assert (np.diff(trips.pickup_time) >= 0).all()

    def test_fares_positive_and_correlated_with_length(self):
        trips = generate_taxi_trips(5000, seed=4)
        assert (trips.fare >= 2.5).all()
        length = np.hypot(
            trips.dropoff_x - trips.pickup_x,
            trips.dropoff_y - trips.pickup_y,
        )
        corr = np.corrcoef(length, trips.fare)[0, 1]
        assert corr > 0.7

    def test_pickups_are_skewed(self):
        trips = generate_taxi_trips(20_000, seed=5)
        h, _, _ = np.histogram2d(
            trips.pickup_x, trips.pickup_y, bins=10,
            range=[[0, 20], [0, 40]],
        )
        # Hotspot structure: top cell well above the uniform mean.
        assert h.max() > 3 * h.mean()


class TestFiltering:
    def test_time_range_scales_input(self):
        """The paper's input-size knob: narrower time range, fewer trips."""
        trips = generate_taxi_trips(10_000, seed=6)
        half = trips.filter_time_range(0.0, 12.0)
        quarter = trips.filter_time_range(0.0, 6.0)
        assert 0.4 < len(half) / len(trips) < 0.6
        assert 0.15 < len(quarter) / len(trips) < 0.35
        assert len(quarter) < len(half)

    def test_filter_preserves_columns_consistently(self):
        trips = generate_taxi_trips(1000, seed=7)
        sub = trips.filter_time_range(6.0, 18.0)
        assert len(sub.pickup_x) == len(sub.fare) == len(sub.dropoff_y)
        assert ((sub.pickup_time >= 6.0) & (sub.pickup_time < 18.0)).all()

    def test_head(self):
        trips = generate_taxi_trips(1000, seed=8)
        sub = trips.head(10)
        assert len(sub) == 10
        assert np.array_equal(sub.pickup_x, trips.pickup_x[:10])

    def test_ids(self):
        trips = generate_taxi_trips(10, seed=9)
        assert trips.ids.tolist() == list(range(10))
