"""Batched execution: equivalence with sequential runs, constraint
sharing through the cache, and batch-aware plan choice."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.bbox import BoundingBox
from repro.core.optimizer import CostModel
from repro.engine import (
    SELECTION_BLENDED,
    SELECTION_PIP,
    BatchQuery,
    QueryEngine,
)

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def cloud():
    rng = np.random.default_rng(33)
    return rng.uniform(0, 100, 2000), rng.uniform(0, 100, 2000)


@pytest.fixture
def districts():
    return [
        hand_drawn_polygon(n_vertices=12, seed=i, center=(30 + 15 * i, 50),
                           radius=14)
        for i in range(3)
    ]


def _mixed_batch(xs, ys, districts, rng):
    """A randomized dashboard-style batch over shared constraints."""
    specs = []
    for _ in range(rng.integers(4, 8)):
        kind = rng.choice(["selection", "aggregation", "distance", "knn"])
        if kind == "selection":
            specs.append(BatchQuery.selection(
                xs, ys, districts, window=WINDOW, resolution=256
            ))
        elif kind == "aggregation":
            specs.append(BatchQuery.aggregation(
                xs, ys, districts, window=WINDOW, resolution=256,
                polygon_ids=[1, 2, 3],
            ))
        elif kind == "distance":
            specs.append(BatchQuery.distance(
                xs, ys, (float(rng.uniform(20, 80)), 50.0), 12.0,
                window=WINDOW, resolution=256,
            ))
        else:
            specs.append(BatchQuery.knn(
                xs, ys, (50.0, 50.0), int(rng.integers(1, 9)),
                window=WINDOW, resolution=256,
            ))
    return specs


def _result_key(outcome):
    if hasattr(outcome, "ids"):
        return ("sel", outcome.ids.tolist())
    if hasattr(outcome, "groups"):
        return ("agg", outcome.groups.tolist(), outcome.values.tolist())
    return ("canvas", outcome.canvas.texture.data.tolist())


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_batch_matches_sequential(self, cloud, districts, seed):
        """Randomized batches produce exactly the per-query results a
        sequential engine would."""
        xs, ys = cloud
        rng = np.random.default_rng(500 + seed)
        specs = _mixed_batch(xs, ys, districts, rng)

        batch_engine = QueryEngine()
        batch = batch_engine.execute_batch(specs)

        sequential_engine = QueryEngine()
        dispatch = {
            "selection": sequential_engine.select_points,
            "aggregation": sequential_engine.aggregate_points,
            "distance": sequential_engine.select_distance,
            "knn": sequential_engine.knn,
            "od": sequential_engine.od_select,
            "voronoi": sequential_engine.voronoi,
        }
        assert batch.report.n_queries == len(specs)
        for spec, outcome in zip(specs, batch.results):
            expected = dispatch[spec.kind](**spec.kwargs)
            assert _result_key(expected) == _result_key(outcome)

    def test_voronoi_and_od_batch_members(self, cloud):
        xs, ys = cloud
        rng = np.random.default_rng(21)
        sites = rng.uniform(10, 90, (5, 2))
        q1 = hand_drawn_polygon(n_vertices=10, seed=1, center=(35, 40),
                                radius=18)
        q2 = hand_drawn_polygon(n_vertices=10, seed=2, center=(65, 60),
                                radius=18)
        dest_xs = xs[::-1].copy()
        dest_ys = ys[::-1].copy()
        engine = QueryEngine()
        batch = engine.execute_batch([
            BatchQuery.voronoi(sites, WINDOW, resolution=48),
            BatchQuery.od(xs, ys, dest_xs, dest_ys, q1, q2,
                          window=WINDOW, resolution=256),
        ])
        assert [kind for kind, _ in batch.report.plans] == ["voronoi", "od"]
        assert batch.results[0].canvas is not None
        assert batch.results[1].ids is not None

    def test_unknown_kind_rejected(self, cloud):
        with pytest.raises(ValueError, match="unknown batch query kind"):
            QueryEngine().execute_batch([BatchQuery("tessellate", {})])


class TestBatchSharing:
    def test_shared_constraints_rasterize_once(self, cloud, districts):
        """A dashboard batch re-issuing the same constraints pays one
        rasterization for the whole batch."""
        xs, ys = cloud
        engine = QueryEngine(CostModel(edge_test=1e6))  # steer to blended
        batch = engine.execute_batch([
            BatchQuery.selection(xs, ys, districts, window=WINDOW,
                                 resolution=256)
            for _ in range(4)
        ])
        report = batch.report
        assert report.shared_constraint_sets == 1
        assert report.cache_misses == 1  # one build for four queries
        assert report.cache_hits == 3
        ids = [o.ids.tolist() for o in batch.results]
        assert all(i == ids[0] for i in ids)

    def test_batch_aware_planning_flips_later_members(self, cloud, districts):
        """With default weights a small selection picks PIP — but when
        an earlier batch member materializes the constraint canvas, the
        later members price it as cached and flip to the blended plan."""
        xs, ys = cloud
        small_xs, small_ys = xs[:80], ys[:80]
        engine = QueryEngine()
        batch = engine.execute_batch([
            # Large member: blended wins and builds the canvas.
            BatchQuery.selection(xs, ys, districts, window=WINDOW,
                                 resolution=512,
                                 force_plan=SELECTION_BLENDED),
            # Small members: PIP would win cold, blended wins warm.
            BatchQuery.selection(small_xs, small_ys, districts,
                                 window=WINDOW, resolution=512),
            BatchQuery.selection(small_xs, small_ys, districts,
                                 window=WINDOW, resolution=512),
        ])
        plans = [plan for _, plan in batch.report.plans]
        assert plans == [SELECTION_BLENDED] * 3
        # Without the batch (and with a cold engine), the small query
        # picks PIP.
        cold = QueryEngine().select_points(
            small_xs, small_ys, districts, window=WINDOW, resolution=512
        )
        assert cold.report.plan == SELECTION_PIP

    def test_batch_report_describe(self, cloud, districts):
        xs, ys = cloud
        engine = QueryEngine(CostModel(edge_test=1e6))
        batch = engine.execute_batch([
            BatchQuery.selection(xs, ys, districts, window=WINDOW,
                                 resolution=128)
            for _ in range(2)
        ])
        text = batch.report.describe()
        assert "batch: 2 queries" in text
        assert "canvas cache" in text
        assert "buffers" in text
