"""Canvas cache: keys, LRU eviction, statistics."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.primitives import LineString, Polygon
from repro.engine.cache import (
    CanvasCache,
    geometries_digest,
    geometry_digest,
)

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


class TestGeometryDigest:
    def test_equal_coordinates_share_digest(self):
        a = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        b = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert a is not b
        assert geometry_digest(a) == geometry_digest(b)

    def test_different_coordinates_differ(self):
        other = Polygon([(0, 0), (11, 0), (10, 10), (0, 10)])
        assert geometry_digest(SQUARE) != geometry_digest(other)

    def test_holes_affect_digest(self):
        holed = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert geometry_digest(SQUARE) != geometry_digest(holed)

    def test_type_affects_digest(self):
        line = LineString([(0, 0), (10, 0)])
        seg_poly = Polygon([(0, 0), (10, 0), (5, 5)])
        assert geometry_digest(line) != geometry_digest(seg_poly)

    def test_sequence_digest_is_order_sensitive(self):
        polys = [
            hand_drawn_polygon(n_vertices=8, seed=i, center=(50, 50), radius=20)
            for i in range(2)
        ]
        assert geometries_digest(polys) != geometries_digest(polys[::-1])


class TestCanvasCache:
    def test_hit_and_miss_counting(self):
        cache = CanvasCache(capacity=4)
        calls = []
        for _ in range(3):
            cache.get_or_build("k", lambda: calls.append(1) or "v")
        stats = cache.stats()
        assert len(calls) == 1
        assert stats.misses == 1 and stats.hits == 2
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self):
        cache = CanvasCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)  # refresh a
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_clear_resets(self):
        cache = CanvasCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            CanvasCache(capacity=0)
        with pytest.raises(ValueError):
            CanvasCache(max_bytes=0)

    def test_byte_budget_evicts(self):
        """Entries are bounded by bytes, not just count — a handful of
        full-resolution canvases must not pin gigabytes."""
        cache = CanvasCache(capacity=100, max_bytes=250,
                            sizer=lambda v: 100)
        cache.get_or_build("a", lambda: "va")
        cache.get_or_build("b", lambda: "vb")
        cache.get_or_build("c", lambda: "vc")  # 300 bytes > 250: evicts a
        stats = cache.stats()
        assert "a" not in cache and "b" in cache and "c" in cache
        assert stats.bytes_used == 200
        assert stats.evictions == 1

    def test_oversized_entry_admitted_then_replaced(self):
        cache = CanvasCache(capacity=100, max_bytes=50, sizer=lambda v: 80)
        cache.get_or_build("big", lambda: "v")
        assert "big" in cache  # single entry may exceed the budget
        cache.get_or_build("next", lambda: "w")
        stats = cache.stats()
        assert "big" not in cache and "next" in cache
        assert stats.bytes_used == 80

    def test_thread_counters_track_calling_thread(self):
        import threading

        cache = CanvasCache(capacity=4)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)

        def other():
            cache.get_or_build("b", lambda: 2)
            cache.get_or_build("b", lambda: 2)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        # This thread saw exactly its own 1 hit / 1 miss; the global
        # stats aggregate both threads.
        assert cache.thread_counters() == (1, 1)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 2)

    def test_engine_exposes_byte_budget(self):
        from repro.engine import QueryEngine

        engine = QueryEngine(cache_max_bytes=123)
        assert engine.cache.max_bytes == 123

    def test_real_canvas_bytes_measured(self):
        from repro.core.canvas import Canvas
        from repro.geometry.bbox import BoundingBox
        from repro.engine.cache import estimate_canvas_bytes

        canvas = Canvas(BoundingBox(0, 0, 10, 10), resolution=64)
        estimate = estimate_canvas_bytes(canvas)
        expected = (
            canvas.texture.data.nbytes
            + canvas.texture.valid.nbytes
            + canvas.boundary.nbytes
        )
        assert estimate == expected > 0
