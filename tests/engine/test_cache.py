"""Canvas cache: keys, LRU eviction, statistics."""

import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.primitives import LineString, Polygon
from repro.engine.cache import (
    CanvasCache,
    geometries_digest,
    geometry_digest,
)

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


class TestGeometryDigest:
    def test_equal_coordinates_share_digest(self):
        a = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        b = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert a is not b
        assert geometry_digest(a) == geometry_digest(b)

    def test_different_coordinates_differ(self):
        other = Polygon([(0, 0), (11, 0), (10, 10), (0, 10)])
        assert geometry_digest(SQUARE) != geometry_digest(other)

    def test_holes_affect_digest(self):
        holed = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert geometry_digest(SQUARE) != geometry_digest(holed)

    def test_type_affects_digest(self):
        line = LineString([(0, 0), (10, 0)])
        seg_poly = Polygon([(0, 0), (10, 0), (5, 5)])
        assert geometry_digest(line) != geometry_digest(seg_poly)

    def test_sequence_digest_is_order_sensitive(self):
        polys = [
            hand_drawn_polygon(n_vertices=8, seed=i, center=(50, 50), radius=20)
            for i in range(2)
        ]
        assert geometries_digest(polys) != geometries_digest(polys[::-1])


class TestCanvasCache:
    def test_hit_and_miss_counting(self):
        cache = CanvasCache(capacity=4)
        calls = []
        for _ in range(3):
            cache.get_or_build("k", lambda: calls.append(1) or "v")
        stats = cache.stats()
        assert len(calls) == 1
        assert stats.misses == 1 and stats.hits == 2
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self):
        cache = CanvasCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)  # refresh a
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_clear_resets(self):
        cache = CanvasCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            CanvasCache(capacity=0)
        with pytest.raises(ValueError):
            CanvasCache(max_bytes=0)

    def test_byte_budget_evicts(self):
        """Entries are bounded by bytes, not just count — a handful of
        full-resolution canvases must not pin gigabytes."""
        cache = CanvasCache(capacity=100, max_bytes=250,
                            sizer=lambda v: 100)
        cache.get_or_build("a", lambda: "va")
        cache.get_or_build("b", lambda: "vb")
        cache.get_or_build("c", lambda: "vc")  # 300 bytes > 250: evicts a
        stats = cache.stats()
        assert "a" not in cache and "b" in cache and "c" in cache
        assert stats.bytes_used == 200
        assert stats.evictions == 1

    def test_oversized_entry_admitted_then_replaced(self):
        cache = CanvasCache(capacity=100, max_bytes=50, sizer=lambda v: 80)
        cache.get_or_build("big", lambda: "v")
        assert "big" in cache  # single entry may exceed the budget
        cache.get_or_build("next", lambda: "w")
        stats = cache.stats()
        assert "big" not in cache and "next" in cache
        assert stats.bytes_used == 80

    def test_thread_counters_track_calling_thread(self):
        import threading

        cache = CanvasCache(capacity=4)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)

        def other():
            cache.get_or_build("b", lambda: 2)
            cache.get_or_build("b", lambda: 2)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        # This thread saw exactly its own 1 hit / 1 miss; the global
        # stats aggregate both threads.
        assert cache.thread_counters() == (1, 1)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 2)

    def test_engine_exposes_byte_budget(self):
        from repro.engine import QueryEngine

        engine = QueryEngine(cache_max_bytes=123)
        assert engine.cache.max_bytes == 123

    def test_real_canvas_bytes_measured(self):
        from repro.core.canvas import Canvas
        from repro.geometry.bbox import BoundingBox
        from repro.engine.cache import estimate_canvas_bytes

        canvas = Canvas(BoundingBox(0, 0, 10, 10), resolution=64)
        estimate = estimate_canvas_bytes(canvas)
        expected = (
            canvas.texture.data.nbytes
            + canvas.texture.valid.nbytes
            + canvas.boundary.nbytes
        )
        assert estimate == expected > 0


class TestImmutabilityGuard:
    """Cached values are frozen: a consumer mutating an entry raises
    instead of silently corrupting later hits (the latent aliasing
    hazard of shared, never-copied entries)."""

    def _cached_canvas(self, resolution=32):
        from repro.geometry.bbox import BoundingBox
        from repro.core.canvas import Canvas

        cache = CanvasCache(capacity=4)
        window = BoundingBox(0.0, 0.0, 10.0, 10.0)
        key = ("polygon", geometry_digest(SQUARE), 1)
        canvas = cache.get_or_build(
            key,
            lambda: Canvas.from_polygon(SQUARE, window, resolution,
                                        record_id=1),
        )
        return cache, key, canvas

    def test_writing_cached_texture_raises(self):
        _, _, canvas = self._cached_canvas()
        with pytest.raises(ValueError, match="read-only"):
            canvas.texture.data[0, 0, 0] = 1.0
        with pytest.raises(ValueError, match="read-only"):
            canvas.texture.valid[0, 0, 0] = True
        with pytest.raises(ValueError, match="read-only"):
            canvas.boundary[0, 0] = True

    def test_drawing_on_cached_canvas_raises(self):
        _, _, canvas = self._cached_canvas()
        with pytest.raises(ValueError):
            canvas.draw_polygon(SQUARE, record_id=9)

    def test_cached_canvas_rejected_as_out_target(self):
        """Passing a cached canvas as an operator's out= buffer fails at
        the first write instead of corrupting the entry."""
        from repro.core import algebra
        from repro.core.masks import NotNull
        from repro.core.objectinfo import DIM_AREA

        _, _, canvas = self._cached_canvas()
        with pytest.raises(ValueError):
            algebra.mask(canvas, NotNull(DIM_AREA), out=canvas)

    def test_copy_of_cached_canvas_is_writable(self):
        _, _, canvas = self._cached_canvas()
        clone = canvas.copy()
        clone.texture.data[0, 0, 0] = 5.0  # must not raise
        assert clone.texture.data[0, 0, 0] == 5.0

    def test_cache_hits_unaffected_by_freeze(self):
        cache, key, canvas = self._cached_canvas()
        again = cache.get_or_build(key, lambda: pytest.fail("rebuilt"))
        assert again is canvas
        assert cache.stats().hits == 1

    def test_coverage_footprints_frozen(self):
        from repro.geometry.bbox import BoundingBox
        from repro.core.rasterjoin import polygon_coverage_cells

        cache = CanvasCache(capacity=4)
        window = BoundingBox(0.0, 0.0, 10.0, 10.0)
        coverage = cache.get_or_build(
            ("rasterjoin-coverage", geometry_digest(SQUARE)),
            lambda: polygon_coverage_cells(SQUARE, window, 32),
        )
        with pytest.raises(ValueError, match="read-only"):
            # repro-lint: disable=cached-out -- test asserts the frozen entry raises
            coverage.flat[0] = 0
