"""End-to-end engine behavior: plan routing, equivalence, cache, explain."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Polygon
from repro.core.optimizer import CostModel, choose_selection_plan
from repro.engine import (
    AGG_JOIN_THEN_AGG,
    AGG_RASTERJOIN,
    SELECTION_BLENDED,
    SELECTION_PIP,
    QueryEngine,
    get_engine,
    set_engine,
    use_engine,
)
from repro.core.queries import (
    aggregate_over_select,
    join_aggregate,
    polygonal_select_points,
)


@pytest.fixture
def cloud():
    rng = np.random.default_rng(77)
    return rng.uniform(0, 100, 3000), rng.uniform(0, 100, 3000)


@pytest.fixture
def constraint():
    return hand_drawn_polygon(n_vertices=18, irregularity=0.35, seed=5,
                              center=(50, 50), radius=30)


def _truth(xs, ys, polygon):
    return set(np.nonzero(points_in_polygon(xs, ys, polygon))[0].tolist())


class TestPlanRouting:
    """Acceptance: queries route through the planner, and swapping the
    cost model weights changes the executed physical plan."""

    def test_cost_model_swap_changes_executed_plan(self, cloud, constraint):
        xs, ys = cloud
        default_engine = QueryEngine()
        with use_engine(default_engine):
            result_pip = polygonal_select_points(xs, ys, constraint,
                                                 resolution=512)
        assert default_engine.last_report.plan == SELECTION_PIP

        swapped_engine = QueryEngine(CostModel(edge_test=1e6))
        with use_engine(swapped_engine):
            result_blended = polygonal_select_points(xs, ys, constraint,
                                                     resolution=512)
        assert swapped_engine.last_report.plan == SELECTION_BLENDED

        # Equivalent plans: identical exact results either way.
        truth = _truth(xs, ys, constraint)
        assert set(result_pip.ids.tolist()) == truth
        assert set(result_blended.ids.tolist()) == truth

    def test_chosen_plan_matches_optimizer_ranking(self, cloud, constraint):
        """Satellite: engine choice == optimizer ranking, end to end."""
        from repro.core.canvas import _resolve_resolution

        xs, ys = cloud
        engine = QueryEngine()
        window = _window(xs, ys, constraint)
        hw = _resolve_resolution(window, 512)
        for n in (50, len(xs)):
            with use_engine(engine):
                polygonal_select_points(xs[:n], ys[:n], constraint,
                                        window=window, resolution=512)
            report = engine.last_report
            expected = choose_selection_plan(
                n, [constraint], hw, engine.cost_model, window=window
            )
            assert report.plan == expected.name
            assert report.estimated_cost == pytest.approx(expected.cost)

    def test_forced_plan_executes(self, cloud, constraint):
        xs, ys = cloud
        engine = QueryEngine()
        outcome = engine.select_points(
            xs, ys, [constraint], window=_window(xs, ys, constraint),
            resolution=256, force_plan=SELECTION_BLENDED,
        )
        assert outcome.report.plan == SELECTION_BLENDED
        assert "override" in outcome.report.forced
        assert set(outcome.ids.tolist()) == _truth(xs, ys, constraint)

    def test_samples_compose_identically_across_plans(self, cloud):
        """The samples contract is plan-independent: the constraint-side
        S^3 triple survives either physical plan, so downstream
        group-by-containing-polygon composition gives the same answer."""
        from repro.engine import aggregate_samples

        xs, ys = cloud
        polys = [
            hand_drawn_polygon(n_vertices=12, seed=i, center=(25 + 50 * i, 50),
                               radius=20)
            for i in range(2)
        ]
        engine = QueryEngine()
        window = _window(xs, ys, *polys)
        per_plan = {}
        for plan in (SELECTION_PIP, SELECTION_BLENDED):
            outcome = engine.select_points(
                xs, ys, polys, window=window, resolution=512,
                force_plan=plan,
            )
            groups, values = aggregate_samples(
                outcome.samples, [1, 2], "count"
            )
            per_plan[plan] = dict(zip(groups.tolist(), values.tolist()))
        assert per_plan[SELECTION_PIP] == per_plan[SELECTION_BLENDED]
        assert sum(per_plan[SELECTION_PIP].values()) > 0

    def test_force_pip_with_approximate_mode_raises(self, cloud, constraint):
        xs, ys = cloud
        engine = QueryEngine()
        with pytest.raises(ValueError, match="raster plan"):
            engine.select_points(
                xs, ys, [constraint], window=_window(xs, ys, constraint),
                resolution=128, exact=False, force_plan=SELECTION_PIP,
            )

    def test_force_pip_with_prebuilt_canvas_raises(self, cloud, constraint):
        from repro.core.queries import build_constraint_canvas

        xs, ys = cloud
        window = _window(xs, ys, constraint)
        canvas = build_constraint_canvas([constraint], window, 128)
        engine = QueryEngine()
        with pytest.raises(ValueError, match="prebuilt"):
            engine.select_points(
                xs, ys, [constraint], window=window, resolution=128,
                constraint_canvas=canvas, force_plan=SELECTION_PIP,
            )

    def test_mode_all_equivalent_across_plans(self, cloud):
        xs, ys = cloud
        polys = [
            hand_drawn_polygon(n_vertices=14, seed=i, center=(50, 50),
                               radius=35)
            for i in range(2)
        ]
        truth = _truth(xs, ys, polys[0]) & _truth(xs, ys, polys[1])
        engine = QueryEngine()
        window = _window(xs, ys, *polys)
        for plan in (SELECTION_PIP, SELECTION_BLENDED):
            outcome = engine.select_points(
                xs, ys, polys, window=window, resolution=512,
                mode="all", force_plan=plan,
            )
            assert set(outcome.ids.tolist()) == truth, plan


def _window(xs, ys, *polys):
    from repro.core.queries import default_window

    return default_window(xs, ys, list(polys))


class TestAggregationRouting:
    def test_exact_join_aggregate_uses_sample_plan(self, cloud):
        xs, ys = cloud
        polys = [
            hand_drawn_polygon(n_vertices=12, seed=i, center=(30 + 20 * i, 50),
                               radius=16)
            for i in range(3)
        ]
        engine = QueryEngine()
        with use_engine(engine):
            result = join_aggregate(xs, ys, polys, resolution=256)
        assert engine.last_report.plan == AGG_JOIN_THEN_AGG
        for pid, poly in enumerate(polys):
            assert result.as_dict()[pid] == len(_truth(xs, ys, poly))

    def test_approximate_plan_follows_cost_model(self, cloud):
        xs, ys = cloud
        # Many overlapping constraints: the bbox-prefiltered gather of
        # join-then-aggregate still pays per (polygon, bbox point),
        # while rasterjoin gathers each occupied pixel once.
        polys = [
            hand_drawn_polygon(n_vertices=12, seed=i, center=(50, 50),
                               radius=25)
            for i in range(12)
        ]
        # Cheap pixels and cheap point scatter: RasterJoin's
        # frame-bounded plan wins.
        rj_engine = QueryEngine(CostModel(pixel_touch=1e-6, scatter=1e-3))
        with use_engine(rj_engine):
            join_aggregate(xs, ys, polys, resolution=128, exact=False)
        assert rj_engine.last_report.plan == AGG_RASTERJOIN

        # Expensive pixels: the per-polygon gather plan wins.
        jta_engine = QueryEngine(CostModel(pixel_touch=1e4))
        with use_engine(jta_engine):
            join_aggregate(xs, ys, polys, resolution=128, exact=False)
        assert jta_engine.last_report.plan == AGG_JOIN_THEN_AGG

    def test_aggregate_over_select_routes_engine(self, cloud, constraint):
        xs, ys = cloud
        engine = QueryEngine()
        with use_engine(engine):
            count = aggregate_over_select(xs, ys, constraint, resolution=512)
        assert engine.last_report.query == "join-aggregate"
        assert count == len(_truth(xs, ys, constraint))


class TestCanvasCache:
    """Acceptance: repeated execution of the same constraint shows
    canvas-cache hits instead of re-rasterization."""

    def test_repeated_selection_hits_cache(self, cloud, constraint):
        xs, ys = cloud
        engine = QueryEngine(CostModel(edge_test=1e6))  # steer to blended
        with use_engine(engine):
            first = polygonal_select_points(xs, ys, constraint,
                                            resolution=256)
            second = polygonal_select_points(xs, ys, constraint,
                                             resolution=256)
        assert first.ids.tolist() == second.ids.tolist()
        stats = engine.cache.stats()
        assert stats.hits >= 1
        assert engine.last_report.cache_hits >= 1
        assert engine.last_report.cache_misses == 0

    def test_equal_polygon_objects_share_cache_entry(self, cloud):
        xs, ys = cloud
        coords = [(20, 20), (80, 25), (70, 80), (25, 70)]
        engine = QueryEngine(CostModel(edge_test=1e6))
        with use_engine(engine):
            a = polygonal_select_points(xs, ys, Polygon(coords),
                                        resolution=256)
            b = polygonal_select_points(xs, ys, Polygon(coords),
                                        resolution=256)
        assert engine.cache.stats().hits >= 1
        assert a.ids.tolist() == b.ids.tolist()

    def test_repeated_join_aggregate_hits_cache(self, cloud):
        xs, ys = cloud
        polys = [
            hand_drawn_polygon(n_vertices=12, seed=i, center=(30 + 20 * i, 50),
                               radius=16)
            for i in range(3)
        ]
        engine = QueryEngine()
        with use_engine(engine):
            join_aggregate(xs, ys, polys, resolution=256)
            join_aggregate(xs, ys, polys, resolution=256)
        assert engine.last_report.cache_hits >= len(polys)

    def test_different_resolution_is_a_miss(self, cloud, constraint):
        xs, ys = cloud
        engine = QueryEngine(CostModel(edge_test=1e6))
        with use_engine(engine):
            polygonal_select_points(xs, ys, constraint, resolution=256)
            polygonal_select_points(xs, ys, constraint, resolution=128)
        stats = engine.cache.stats()
        assert stats.hits == 0 and stats.misses == 2


class TestRasterJoinCoverageCache:
    """Acceptance: the rasterjoin plan pulls constraint coverage through
    the engine's canvas cache — repeated runs report hits in explain."""

    @pytest.fixture
    def districts(self):
        return [
            hand_drawn_polygon(n_vertices=12, seed=i, center=(25 + 15 * i, 50),
                               radius=14)
            for i in range(4)
        ]

    def _run(self, engine, xs, ys, polys, **kwargs):
        return engine.aggregate_points(
            xs, ys, polys, window=_window(xs, ys, *polys), resolution=256,
            exact=False, force_plan=AGG_RASTERJOIN, **kwargs,
        )

    def test_repeated_rasterjoin_hits_cache(self, cloud, districts):
        xs, ys = cloud
        engine = QueryEngine()
        first = self._run(engine, xs, ys, districts)
        second = self._run(engine, xs, ys, districts)
        assert first.report.cache_misses == len(districts)
        assert first.report.cache_hits == 0
        assert second.report.cache_hits == len(districts)
        assert second.report.cache_misses == 0
        assert np.array_equal(first.values, second.values)
        assert "cache" in engine.explain()

    def test_cached_coverage_is_id_independent(self, cloud, districts):
        """Relabelling the groups must not force re-rasterization."""
        xs, ys = cloud
        engine = QueryEngine()
        first = self._run(engine, xs, ys, districts)
        relabel = self._run(engine, xs, ys, districts,
                            polygon_ids=[9, 2, 7, 4])
        assert relabel.report.cache_hits == len(districts)
        by_group = dict(zip([9, 2, 7, 4], first.values))
        relabelled = dict(zip(relabel.groups.tolist(),
                              relabel.values.tolist()))
        assert relabelled == {k: float(v) for k, v in by_group.items()}

    def test_engine_result_matches_direct_rasterjoin(self, cloud, districts):
        from repro.core.rasterjoin import raster_join_aggregate

        xs, ys = cloud
        engine = QueryEngine()
        window = _window(xs, ys, *districts)
        outcome = engine.aggregate_points(
            xs, ys, districts, window=window, resolution=256, exact=False,
            force_plan=AGG_RASTERJOIN,
        )
        direct = raster_join_aggregate(
            xs, ys, districts, window=window, resolution=256
        )
        assert np.array_equal(outcome.groups, direct.groups)
        assert np.array_equal(outcome.values, direct.values)

    def test_duplicate_group_ids_rejected(self, cloud, districts):
        xs, ys = cloud
        engine = QueryEngine()
        with pytest.raises(ValueError, match="duplicate"):
            self._run(engine, xs, ys, districts, polygon_ids=[1, 1, 2, 3])

    def test_duplicate_ids_rejected_regardless_of_plan(self, cloud, districts):
        """Validation happens at the engine entry, so the outcome cannot
        depend on which physical plan the cost model picks."""
        xs, ys = cloud
        engine = QueryEngine()
        with pytest.raises(ValueError, match="duplicate"):
            engine.aggregate_points(
                xs, ys, districts, window=_window(xs, ys, *districts),
                resolution=256, exact=True, polygon_ids=[1, 1, 2, 3],
            )


class TestExplain:
    def test_explain_selection_and_aggregate(self, cloud, constraint):
        xs, ys = cloud
        engine = QueryEngine()
        with use_engine(engine):
            polygonal_select_points(xs, ys, constraint, resolution=256)
            text_sel = engine.explain()
            join_aggregate(xs, ys, [constraint], resolution=256)
            text_agg = engine.explain()
        for text, plans in (
            (text_sel, (SELECTION_PIP, SELECTION_BLENDED)),
            (text_agg, (AGG_JOIN_THEN_AGG, AGG_RASTERJOIN)),
        ):
            assert "chosen plan:" in text
            assert "estimated cost" in text
            assert "canvas cache" in text
            assert all(p in text for p in plans)

    def test_explain_without_queries(self):
        assert QueryEngine().explain() == "no queries executed yet"

    def test_empty_input_short_circuits(self, constraint):
        engine = QueryEngine()
        outcome = engine.select_points(
            np.empty(0), np.empty(0), [constraint],
            window=constraint.bounds.expand(1.0), resolution=64,
        )
        assert len(outcome.ids) == 0
        assert outcome.report.plan == "empty-input"


class TestEngineInstallation:
    def test_use_engine_restores_previous(self):
        original = get_engine()
        temp = QueryEngine()
        with use_engine(temp) as active:
            assert active is temp
            assert get_engine() is temp
        assert get_engine() is original

    def test_set_engine_returns_previous(self):
        original = get_engine()
        temp = QueryEngine()
        previous = set_engine(temp)
        try:
            assert previous is original
            assert get_engine() is temp
        finally:
            set_engine(original)
