"""Cost-based plan choice: crossover behavior and admissibility rules."""

import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.core.optimizer import CostModel, choose_selection_plan
from repro.engine.planner import (
    AGG_JOIN_THEN_AGG,
    AGG_RASTERJOIN,
    SELECTION_BLENDED,
    SELECTION_PIP,
    Planner,
)

RES = (512, 512)


def _polys(n, vertices=24):
    return [
        hand_drawn_polygon(n_vertices=vertices, seed=i, center=(50, 50),
                           radius=30)
        for i in range(n)
    ]


class TestSelectionCrossover:
    """Satellite: the chosen plan flips from per-polygon PIP to the
    blended canvas as the point count grows (fixed raster cost
    amortizes; per-point PIP cost does not)."""

    @pytest.mark.parametrize(
        "n_points,expected",
        [
            (100, SELECTION_PIP),
            (1_000, SELECTION_PIP),
            (1_000_000, SELECTION_BLENDED),
            (50_000_000, SELECTION_BLENDED),
        ],
    )
    def test_crossover_with_point_count(self, n_points, expected):
        assert choose_selection_plan(n_points, _polys(1), RES).name == expected

    def test_planner_agrees_with_optimizer(self):
        planner = Planner()
        for n_points in (100, 1_000, 1_000_000, 50_000_000):
            choice = planner.plan_selection(n_points, _polys(2), RES)
            assert choice.chosen.name == choose_selection_plan(
                n_points, _polys(2), RES
            ).name
            assert choice.forced is None

    def test_cost_model_swap_flips_choice(self):
        """The optimizer is real: weights steer the physical plan."""
        n_points, polys = 2_000, _polys(1)
        default = Planner().plan_selection(n_points, polys, RES)
        assert default.chosen.name == SELECTION_PIP
        expensive_pip = Planner(CostModel(edge_test=1e6))
        swapped = expensive_pip.plan_selection(n_points, polys, RES)
        assert swapped.chosen.name == SELECTION_BLENDED


class TestSelectionAdmissibility:
    def test_approximate_mode_forces_blended(self):
        choice = Planner().plan_selection(100, _polys(1), RES, exact=False)
        assert choice.chosen.name == SELECTION_BLENDED
        assert choice.forced is not None

    def test_prebuilt_canvas_forces_blended(self):
        choice = Planner().plan_selection(
            100, _polys(1), RES, prebuilt_canvas=True
        )
        assert choice.chosen.name == SELECTION_BLENDED
        assert "prebuilt" in choice.forced

    def test_force_override(self):
        choice = Planner().plan_selection(
            100, _polys(1), RES, force=SELECTION_BLENDED
        )
        assert choice.chosen.name == SELECTION_BLENDED
        assert "override" in choice.forced

    def test_force_unknown_plan_raises(self):
        with pytest.raises(ValueError, match="unknown selection plan"):
            Planner().plan_selection(100, _polys(1), RES, force="quantum")

    def test_candidates_sorted_cheapest_first(self):
        choice = Planner().plan_selection(10_000, _polys(2), RES)
        costs = [p.cost for p in choice.candidates]
        assert costs == sorted(costs)


class TestAggregationAdmissibility:
    def test_exact_forces_join_then_aggregate(self):
        choice = Planner().plan_aggregation(
            100_000_000, _polys(16), (256, 256), exact=True
        )
        assert choice.chosen.name == AGG_JOIN_THEN_AGG
        assert choice.forced is not None

    def test_approximate_many_points_pick_rasterjoin(self):
        choice = Planner().plan_aggregation(
            100_000_000, _polys(16), (256, 256), exact=False
        )
        assert choice.chosen.name == AGG_RASTERJOIN
        assert choice.forced is None

    def test_min_max_need_sample_plan(self):
        choice = Planner().plan_aggregation(
            100_000_000, _polys(16), (256, 256), exact=False, aggregate="min"
        )
        assert choice.chosen.name == AGG_JOIN_THEN_AGG
        assert "min" in choice.forced

    def test_forcing_rasterjoin_with_exact_contract_raises(self):
        """A forced plan must not silently break the result contract."""
        with pytest.raises(ValueError, match="approximate"):
            Planner().plan_aggregation(
                1_000, _polys(2), RES, exact=True, force=AGG_RASTERJOIN
            )

    def test_forcing_rasterjoin_for_min_raises(self):
        with pytest.raises(ValueError, match="cannot compute"):
            Planner().plan_aggregation(
                1_000, _polys(2), RES, exact=False, aggregate="min",
                force=AGG_RASTERJOIN,
            )

    def test_cost_model_swap_flips_choice(self):
        base = Planner().plan_aggregation(
            1_000_000, _polys(8), (256, 256), exact=False
        )
        assert base.chosen.name == AGG_RASTERJOIN
        costly_gather = Planner(CostModel(pixel_touch=1e4))
        swapped = costly_gather.plan_aggregation(
            1_000_000, _polys(8), (256, 256), exact=False
        )
        assert swapped.chosen.name == AGG_JOIN_THEN_AGG
