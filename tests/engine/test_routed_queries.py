"""Universal plan routing: knn/voronoi/od/distance/geometry queries
execute through the engine with (at least) two priced physical plans
each, equivalent results across plans, and recorded reports."""

import numpy as np
import pytest

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import LineString, Polygon
from repro.index.kdtree import KDTree
from repro.core.optimizer import CostModel
from repro.engine import (
    DISTANCE_CANVAS,
    DISTANCE_DIRECT,
    GEOM_BLEND,
    GEOM_PREDICATE,
    KNN_KDTREE,
    KNN_PROBES,
    OD_CANVAS,
    OD_PIP,
    SELECTION_BLENDED,
    SELECTION_PIP,
    VORONOI_ARGMIN,
    VORONOI_ITERATED,
    QueryEngine,
    use_engine,
)
from repro.queries import (
    distance_select,
    join_aggregate,
    knn,
    od_select,
    polygonal_select_lines,
    polygonal_select_polygons,
    voronoi,
)

WINDOW = BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def cloud():
    rng = np.random.default_rng(90)
    return rng.uniform(0, 100, 1500), rng.uniform(0, 100, 1500)


class TestDistanceRouting:
    def test_plans_equivalent_and_match_truth(self, cloud):
        xs, ys = cloud
        center, radius = (47.0, 52.0), 18.0
        truth = set(
            np.nonzero(np.hypot(xs - center[0], ys - center[1]) <= radius)[0]
            .tolist()
        )
        engine = QueryEngine()
        for plan in (DISTANCE_CANVAS, DISTANCE_DIRECT):
            outcome = engine.select_distance(
                xs, ys, center, radius, window=WINDOW, resolution=512,
                force_plan=plan,
            )
            assert outcome.report.plan == plan
            assert set(outcome.ids.tolist()) == truth, plan

    def test_frontend_records_report(self, cloud):
        xs, ys = cloud
        engine = QueryEngine()
        with use_engine(engine):
            result = distance_select(xs, ys, (50, 50), 10.0, resolution=256)
        assert engine.last_report.query == "distance-selection"
        assert result.plan == engine.last_report.plan
        assert len(engine.last_report.candidates) == 2

    def test_approx_forces_canvas_plan(self, cloud):
        xs, ys = cloud
        engine = QueryEngine()
        outcome = engine.select_distance(
            xs, ys, (50, 50), 10.0, window=WINDOW, resolution=256,
            exact=False,
        )
        assert outcome.report.plan == DISTANCE_CANVAS
        assert "raster plan" in outcome.report.forced
        with pytest.raises(ValueError, match="raster plan"):
            engine.select_distance(
                xs, ys, (50, 50), 10.0, window=WINDOW, resolution=256,
                exact=False, force_plan=DISTANCE_DIRECT,
            )

    def test_samples_carry_constraint_triple_across_plans(self, cloud):
        from repro.core.objectinfo import DIM_AREA, FIELD_ID

        xs, ys = cloud
        engine = QueryEngine()
        for plan in (DISTANCE_CANVAS, DISTANCE_DIRECT):
            outcome = engine.select_distance(
                xs, ys, (50, 50), 15.0, window=WINDOW, resolution=512,
                force_plan=plan,
            )
            assert outcome.samples.valid[:, DIM_AREA].all()
            assert (outcome.samples.field(DIM_AREA, FIELD_ID) == 1.0).all()


class TestKnnRouting:
    def test_plans_match_kdtree_oracle(self, cloud):
        xs, ys = cloud
        query = (43.0, 57.0)
        k = 10
        tree = KDTree(np.stack([xs, ys], axis=1))
        expected = {item for item, _ in tree.nearest(*query, k=k)}
        engine = QueryEngine()
        for plan in (KNN_KDTREE, KNN_PROBES):
            outcome = engine.knn(
                xs, ys, query, k, window=WINDOW, resolution=512,
                force_plan=plan,
            )
            assert outcome.report.plan == plan
            assert set(outcome.ids.tolist()) == expected, plan

    def test_cost_model_steers_plan(self, cloud):
        xs, ys = cloud
        probes_engine = QueryEngine(CostModel(index_node=1e9))
        outcome = probes_engine.knn(
            xs, ys, (50, 50), 5, window=WINDOW, resolution=64
        )
        assert outcome.report.plan == KNN_PROBES
        kdtree_engine = QueryEngine()
        outcome = kdtree_engine.knn(
            xs, ys, (50, 50), 5, window=WINDOW, resolution=512
        )
        assert outcome.report.plan == KNN_KDTREE

    def test_frontend_records_report(self, cloud):
        xs, ys = cloud
        engine = QueryEngine()
        with use_engine(engine):
            result = knn(xs, ys, (50.0, 50.0), 7, resolution=256)
        assert engine.last_report.query == "knn"
        assert len(result.ids) == 7

    def test_query_point_far_outside_window_plans_agree(self, cloud):
        """The probe radius must bound out-of-window query points too:
        both plans return the full k and the same ids."""
        xs, ys = cloud
        query = (5000.0, 5000.0)
        k = 5
        engine = QueryEngine()
        per_plan = {}
        for plan in (KNN_KDTREE, KNN_PROBES):
            outcome = engine.knn(
                xs, ys, query, k, window=WINDOW, resolution=256,
                force_plan=plan,
            )
            assert len(outcome.ids) == k, plan
            per_plan[plan] = set(outcome.ids.tolist())
        assert per_plan[KNN_KDTREE] == per_plan[KNN_PROBES]

    def test_probe_plan_counts_and_recycles_circle_buffers(self, cloud):
        xs, ys = cloud
        engine = QueryEngine()
        outcome = engine.knn(
            xs, ys, (50.0, 50.0), 5, window=WINDOW, resolution=128,
            force_plan=KNN_PROBES,
        )
        # The first probe allocates one circle frame; every later probe
        # rasterizes into the recycled buffer (Canvas.circle out= seam).
        assert outcome.report.allocations == 1
        assert outcome.report.pool_reuses >= 2
        # The last probe's buffer was released after the gather consumed it.
        assert len(engine.buffer_pool) >= 1


class TestVoronoiRouting:
    def test_plans_bit_identical(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(10, 90, (13, 2))
        engine = QueryEngine()
        canvases = {}
        for plan in (VORONOI_ITERATED, VORONOI_ARGMIN):
            outcome = engine.voronoi(
                pts, WINDOW, resolution=64, force_plan=plan
            )
            assert outcome.report.plan == plan
            canvases[plan] = outcome.canvas
        a, b = canvases[VORONOI_ITERATED], canvases[VORONOI_ARGMIN]
        np.testing.assert_array_equal(a.texture.data, b.texture.data)
        np.testing.assert_array_equal(a.texture.valid, b.texture.valid)

    def test_iterated_plan_runs_in_place(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(10, 90, (9, 2))
        engine = QueryEngine()
        outcome = engine.voronoi(
            pts, WINDOW, resolution=64, force_plan=VORONOI_ITERATED
        )
        report = outcome.report
        assert report.copies == 0
        assert report.allocations == 1  # the single owned accumulator
        assert report.inplace_ops == len(pts)

    def test_frontend_records_report(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(10, 90, (6, 2))
        engine = QueryEngine()
        with use_engine(engine):
            canvas = voronoi(pts, WINDOW, resolution=48)
        assert engine.last_report.query == "voronoi"
        from repro.core.objectinfo import DIM_AREA

        assert canvas.valid(DIM_AREA).all()


class TestOdRouting:
    @pytest.fixture
    def od_data(self):
        rng = np.random.default_rng(51)
        n = 2000
        return (
            rng.uniform(0, 100, n), rng.uniform(0, 100, n),
            rng.uniform(0, 100, n), rng.uniform(0, 100, n),
        )

    @pytest.fixture
    def q1(self):
        return hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=1,
                                  center=(30, 35), radius=20)

    @pytest.fixture
    def q2(self):
        return hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=2,
                                  center=(70, 65), radius=22)

    def test_plans_equivalent_and_match_truth(self, od_data, q1, q2):
        ox, oy, dx, dy = od_data
        truth = set(
            np.nonzero(
                points_in_polygon(ox, oy, q1) & points_in_polygon(dx, dy, q2)
            )[0].tolist()
        )
        engine = QueryEngine()
        for plan in (OD_CANVAS, OD_PIP):
            outcome = engine.od_select(
                ox, oy, dx, dy, q1, q2, window=WINDOW, resolution=512,
                force_plan=plan,
            )
            assert outcome.report.plan == plan
            assert set(outcome.ids.tolist()) == truth, plan

    def test_canvas_plan_uses_cached_constraints(self, od_data, q1, q2):
        ox, oy, dx, dy = od_data
        engine = QueryEngine()
        first = engine.od_select(
            ox, oy, dx, dy, q1, q2, window=WINDOW, resolution=256,
            force_plan=OD_CANVAS,
        )
        second = engine.od_select(
            ox, oy, dx, dy, q1, q2, window=WINDOW, resolution=256,
            force_plan=OD_CANVAS,
        )
        assert first.report.cache_misses >= 2  # CQ1 blend + CQ2
        assert second.report.cache_hits >= 2
        assert second.report.cache_misses == 0
        assert first.ids.tolist() == second.ids.tolist()

    def test_approx_forces_canvas_plan(self, od_data, q1, q2):
        ox, oy, dx, dy = od_data
        engine = QueryEngine()
        outcome = engine.od_select(
            ox, oy, dx, dy, q1, q2, window=WINDOW, resolution=128,
            exact=False,
        )
        assert outcome.report.plan == OD_CANVAS
        with pytest.raises(ValueError, match="raster plan"):
            engine.od_select(
                ox, oy, dx, dy, q1, q2, window=WINDOW, resolution=128,
                exact=False, force_plan=OD_PIP,
            )

    def test_frontend_records_report(self, od_data, q1, q2):
        ox, oy, dx, dy = od_data
        engine = QueryEngine()
        with use_engine(engine):
            result = od_select(ox, oy, dx, dy, q1, q2, resolution=256)
        assert engine.last_report.query == "od-selection"
        assert result.plan == engine.last_report.plan


class TestGeometryRouting:
    @pytest.fixture
    def data_polygons(self):
        return [
            hand_drawn_polygon(n_vertices=10, seed=i,
                               center=(15 + 11 * i, 40 + (i % 3) * 15),
                               radius=9)
            for i in range(7)
        ]

    @pytest.fixture
    def query(self):
        return Polygon([(25, 25), (75, 30), (70, 75), (20, 70)])

    def test_polygon_plans_equivalent(self, data_polygons, query):
        engine = QueryEngine()
        results = {}
        for plan in (GEOM_BLEND, GEOM_PREDICATE):
            outcome = engine.select_geometry_records(
                "polygons", data_polygons, query, window=WINDOW,
                resolution=512, force_plan=plan,
            )
            assert outcome.report.plan == plan
            results[plan] = set(outcome.ids.tolist())
        assert results[GEOM_BLEND] == results[GEOM_PREDICATE]
        assert results[GEOM_BLEND]  # non-trivial workload

    def test_line_plans_equivalent(self, query):
        rng = np.random.default_rng(12)
        lines = [
            LineString(
                [tuple(p) for p in rng.uniform(5, 95, (4, 2))]
            )
            for _ in range(8)
        ]
        engine = QueryEngine()
        results = {}
        for plan in (GEOM_BLEND, GEOM_PREDICATE):
            outcome = engine.select_geometry_records(
                "lines", lines, query, window=WINDOW, resolution=512,
                force_plan=plan,
            )
            results[plan] = set(outcome.ids.tolist())
        assert results[GEOM_BLEND] == results[GEOM_PREDICATE]

    def test_frontends_record_reports(self, data_polygons, query):
        engine = QueryEngine()
        with use_engine(engine):
            polygonal_select_polygons(data_polygons, query, resolution=256)
            assert engine.last_report.query == "geometry-selection"
            lines = [LineString([(10, 10), (90, 90)])]
            polygonal_select_lines(lines, query, resolution=256)
            assert engine.last_report.query == "geometry-selection"

    def test_unknown_kind_raises(self, query):
        with pytest.raises(ValueError, match="unknown geometry kind"):
            QueryEngine().select_geometry_records(
                "points", [], query, window=WINDOW
            )


class TestCacheAwareSelectionPlanning:
    def test_warm_cache_flips_pip_to_blended(self, cloud):
        """Once the constraint canvas is cached, the blended plan's
        raster cost drops out and the cost model flips the choice."""
        xs, ys = cloud
        xs, ys = xs[:100], ys[:100]  # small input: PIP wins cold
        poly = hand_drawn_polygon(n_vertices=18, seed=3, center=(50, 50),
                                  radius=30)
        engine = QueryEngine()
        cold = engine.select_points(
            xs, ys, [poly], window=WINDOW, resolution=512
        )
        assert cold.report.plan == SELECTION_PIP
        # Materialize the canvas (forced), then re-plan cost-based.
        engine.select_points(
            xs, ys, [poly], window=WINDOW, resolution=512,
            force_plan=SELECTION_BLENDED,
        )
        warm = engine.select_points(
            xs, ys, [poly], window=WINDOW, resolution=512
        )
        assert warm.report.plan == SELECTION_BLENDED
        assert warm.report.cache_hits >= 1
        assert cold.ids.tolist() == warm.ids.tolist()


class TestJoinAggregatePrefilter:
    """The bbox-prefiltered gather is exact, including constraints that
    straddle or miss the window."""

    def test_matches_truth_with_partial_and_missing_constraints(self, cloud):
        xs, ys = cloud
        polys = [
            hand_drawn_polygon(n_vertices=12, seed=1, center=(50, 50),
                               radius=20),
            # Straddles the window edge.
            Polygon([(-20, 40), (15, 40), (15, 70), (-20, 70)]),
            # Entirely outside the frame.
            Polygon([(200, 200), (210, 200), (210, 210), (200, 210)]),
        ]
        engine = QueryEngine()
        with use_engine(engine):
            result = join_aggregate(
                xs, ys, polys, window=WINDOW, resolution=256
            )
        assert engine.last_report.plan == "join-then-aggregate"
        for pid, poly in enumerate(polys):
            truth = int(points_in_polygon(xs, ys, poly).sum())
            assert result.as_dict()[pid] == truth

    @pytest.mark.parametrize("aggregate", ["sum", "min", "max"])
    def test_value_aggregates_match_brute_force(self, cloud, aggregate):
        xs, ys = cloud
        rng = np.random.default_rng(4)
        values = rng.uniform(-5, 5, len(xs))
        poly = hand_drawn_polygon(n_vertices=12, seed=2, center=(40, 60),
                                  radius=18)
        inside = points_in_polygon(xs, ys, poly)
        if aggregate == "sum":
            truth = values[inside].sum()
        elif aggregate == "min":
            truth = values[inside].min()
        else:
            truth = values[inside].max()
        engine = QueryEngine()
        with use_engine(engine):
            result = join_aggregate(
                xs, ys, [poly], values=values, aggregate=aggregate,
                window=WINDOW, resolution=256,
            )
        assert result.values[0] == pytest.approx(truth)
