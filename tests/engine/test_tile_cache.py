"""Tile-cache semantics: hit/miss attribution, freezing, byte sizing.

The tile cache is the whole point of tiled execution — panning reuses
unchanged tiles — so its observable contract is pinned here:

- a panned window's :class:`ExecutionReport` splits the lattice into
  warm and cold tiles exactly (the overlap is warm, the newly exposed
  strip is cold);
- cached tile entries are frozen — writing into one raises instead of
  corrupting every later hit;
- tile entries size correctly into the byte-bounded LRU (the dense
  sizer for :class:`TileCanvas`, the explicit ``cache_nbytes`` for
  :class:`ArgminTile`), and eviction keeps the budget honest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tiling import ArgminTile, TileCanvas
from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.engine import QueryEngine
from repro.engine.cache import estimate_canvas_bytes
from repro.geometry.bbox import BoundingBox

#: A constraint spanning well past every window below, so each lattice
#: tile the window touches really gets built.
DOMAIN_POLY = rescale_to_box(
    hand_drawn_polygon(seed=11, n_vertices=16),
    BoundingBox(-1.0, -1.0, 3.0, 3.0),
)


def _select(engine, window, tiling=4, seed=12, n=300):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(window.xmin - 0.3, window.xmax + 0.3, n)
    ys = rng.uniform(window.ymin - 0.3, window.ymax + 0.3, n)
    return engine.select_points(
        xs, ys, [DOMAIN_POLY], window=window, resolution=64,
        tiling=tiling,
    )


class TestPanHitMissSplit:
    def test_cold_then_pan(self):
        engine = QueryEngine()
        # Window aligned to the tile lattice: 1.0 wide, K=4 → tiles are
        # 0.25 world units, and a 0.25 pan is exactly one tile.
        first = _select(engine, BoundingBox(0.0, 0.0, 1.0, 1.0))
        report = first.report
        assert report.tiles == 16
        assert (report.tile_hits, report.tile_misses) == (0, 16)

        panned = _select(engine, BoundingBox(0.25, 0.0, 1.25, 1.0))
        report = panned.report
        # 4x4 lattice shifted one column: 12 shared tiles warm, the
        # newly exposed column of 4 cold.
        assert report.tiles == 16
        assert (report.tile_hits, report.tile_misses) == (12, 4)

        again = _select(engine, BoundingBox(0.25, 0.0, 1.25, 1.0))
        assert (again.report.tile_hits, again.report.tile_misses) == (16, 0)

    def test_describe_mentions_tiles(self):
        engine = QueryEngine()
        result = _select(engine, BoundingBox(0.0, 0.0, 1.0, 1.0))
        text = result.report.describe()
        assert "tile cache: 0 warm / 16 cold of 16 lattice tiles" in text

    def test_untiled_report_has_no_tile_section(self):
        engine = QueryEngine()
        rng = np.random.default_rng(13)
        xs = rng.uniform(0, 1, 200)
        ys = rng.uniform(0, 1, 200)
        result = engine.select_points(
            xs, ys, [DOMAIN_POLY], window=BoundingBox(0, 0, 1, 1),
            resolution=64, force_plan="blended-canvas",
        )
        assert result.report.tiles == 0
        assert "tile cache" not in result.report.describe()


class TestFrozenTileEntries:
    def _tile_entries(self, engine, kind):
        return [
            value for (value, _) in engine.cache._store.values()
            if isinstance(value, kind)
        ]

    def test_tile_canvas_entries_frozen(self):
        engine = QueryEngine()
        _select(engine, BoundingBox(0.0, 0.0, 1.0, 1.0))
        entries = self._tile_entries(engine, TileCanvas)
        assert entries
        for tile in entries:
            with pytest.raises(ValueError):
                tile.texture.data[0, 0, 0] = 99.0
            with pytest.raises(ValueError):
                tile.texture.valid[0, 0, 0] = True
            with pytest.raises(ValueError):
                tile.boundary[0, 0] = True

    def test_argmin_tile_entries_frozen(self):
        engine = QueryEngine()
        rng = np.random.default_rng(14)
        pts = np.stack([rng.uniform(0, 1, 9), rng.uniform(0, 1, 9)], axis=1)
        engine.voronoi(pts, BoundingBox(0, 0, 1, 1), resolution=64, tiling=4)
        entries = self._tile_entries(engine, ArgminTile)
        assert entries
        for tile in entries:
            with pytest.raises(ValueError):
                tile.owner[0, 0] = 1.0
            with pytest.raises(ValueError):
                tile.best_d2[0, 0] = 0.0


class TestTileEntrySizing:
    def test_tile_canvas_sizer(self):
        tile = TileCanvas(16, 24)
        expected = (
            tile.texture.data.nbytes
            + tile.texture.valid.nbytes
            + tile.boundary.nbytes
        )
        assert expected > 0
        assert estimate_canvas_bytes(tile) == expected

    def test_argmin_tile_sizer(self):
        owner = np.zeros((16, 24))
        best_d2 = np.full((16, 24), np.inf)
        tile = ArgminTile(owner, best_d2)
        assert estimate_canvas_bytes(tile) == owner.nbytes + best_d2.nbytes

    def test_cache_accounts_tile_bytes_exactly(self):
        engine = QueryEngine()
        _select(engine, BoundingBox(0.0, 0.0, 1.0, 1.0))
        stats = engine.cache.stats()
        expected = sum(
            nbytes for (_, nbytes) in engine.cache._store.values()
        )
        assert stats.bytes_used == expected
        assert expected == sum(
            estimate_canvas_bytes(value)
            for (value, _) in engine.cache._store.values()
        )

    def test_byte_budget_bounds_tile_entries(self):
        # Budget sized for a handful of 16x16 tiles: the 4x4 lattice of
        # a 64px frame cannot all stay resident, and the LRU must evict
        # rather than overrun.
        tile_bytes = estimate_canvas_bytes(TileCanvas(16, 16))
        budget = 5 * tile_bytes
        engine = QueryEngine(cache_capacity=512, cache_max_bytes=budget)
        result = _select(engine, BoundingBox(0.0, 0.0, 1.0, 1.0))
        assert result.report.tile_misses == 16  # all built...
        assert engine.cache.stats().bytes_used <= budget  # ...few kept

        # And the answer under eviction matches the unbounded engine's.
        roomy = QueryEngine()
        reference = _select(roomy, BoundingBox(0.0, 0.0, 1.0, 1.0))
        assert np.array_equal(result.ids, reference.ids)
