"""Property suite: tiled execution is bit-identical to whole-frame.

The tiled runners shard each canvas plan into a KxK lattice of tiles
and stitch per-tile gathers; this suite pins the contract that the
stitch is *exactly* the whole-frame answer — not approximately, but
array-equal on every output the outcome exposes — across:

- tile counts that divide the resolution evenly and ones that do not
  (prime resolutions force ragged edge tiles),
- odd window offsets (the lattice is anchored to the global grid, so
  a window rarely starts on a tile boundary),
- empty tiles (constraints confined to a corner leave most of the
  lattice unbuilt — the gather must read those as null, not stale).

Every family with a tiled plan is covered: selection, join-aggregate,
distance, Voronoi, OD and geometry-record selection.
"""

from __future__ import annotations

import numpy as np

from hypothesis import given, settings, strategies as st

from repro.data.polygons import hand_drawn_polygon, rescale_to_box
from repro.engine import QueryEngine
from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import LineString


#: Resolutions mixing divisible and non-divisible tile splits: 48 and
#: 64 divide evenly for small K, 97/101/103 are prime (every K ragged),
#: (60, 84) exercises a non-square frame.
RESOLUTIONS = [(48, 48), (64, 64), (60, 84), (97, 103), (101, 64)]

tilings = st.integers(min_value=2, max_value=6)
resolutions = st.sampled_from(RESOLUTIONS)
seeds = st.integers(min_value=0, max_value=10_000)
# Odd offsets so the window's corner lands mid-tile on the lattice.
offsets = st.floats(min_value=-1.53, max_value=1.71,
                    allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=0.6, max_value=2.4,
                  allow_nan=False, allow_infinity=False)


@st.composite
def windows(draw):
    x0 = draw(offsets)
    y0 = draw(offsets)
    return BoundingBox(x0, y0, x0 + draw(sizes), y0 + draw(sizes))


def _points(seed: int, n: int, window: BoundingBox):
    """Points spread wider than the window so some land out of frame."""
    rng = np.random.default_rng(seed)
    pad_x, pad_y = 0.3 * window.width, 0.3 * window.height
    xs = rng.uniform(window.xmin - pad_x, window.xmax + pad_x, n)
    ys = rng.uniform(window.ymin - pad_y, window.ymax + pad_y, n)
    return xs, ys


def _polygons(seed: int, n: int, window: BoundingBox) -> list:
    """Constraints of varying footprint: some span the window, some sit
    in a corner (leaving most tiles empty), some poke past the edge."""
    rng = np.random.default_rng(seed + 1)
    polys = []
    for i in range(n):
        cx = rng.uniform(window.xmin, window.xmax)
        cy = rng.uniform(window.ymin, window.ymax)
        hw = rng.uniform(0.08, 0.6) * window.width
        hh = rng.uniform(0.08, 0.6) * window.height
        polys.append(rescale_to_box(
            hand_drawn_polygon(seed=seed + i, n_vertices=12),
            BoundingBox(cx - hw, cy - hh, cx + hw, cy + hh),
        ))
    return polys


def _assert_selection_equal(frame, tiled) -> None:
    assert np.array_equal(frame.ids, tiled.ids)
    assert frame.n_candidates == tiled.n_candidates
    assert frame.n_exact_tests == tiled.n_exact_tests
    fs, ts = frame.samples, tiled.samples
    if fs is None or ts is None:
        assert fs is ts
        return
    assert np.array_equal(fs.keys, ts.keys)
    assert np.array_equal(fs.xs, ts.xs)
    assert np.array_equal(fs.ys, ts.ys)
    assert np.array_equal(fs.data, ts.data)
    assert np.array_equal(fs.valid, ts.valid)
    assert np.array_equal(fs.boundary, ts.boundary)


def _pair() -> tuple[QueryEngine, QueryEngine]:
    """Fresh engines per example: no cache state crosses examples."""
    return QueryEngine(), QueryEngine()


class TestSelectionEquivalence:
    @given(tiling=tilings, resolution=resolutions, seed=seeds,
           window=windows(), exact=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_bit_identical(self, tiling, resolution, seed, window, exact):
        xs, ys = _points(seed, 150, window)
        polys = _polygons(seed, 3, window)
        frame_engine, tiled_engine = _pair()
        frame = frame_engine.select_points(
            xs, ys, polys, window=window, resolution=resolution,
            exact=exact, force_plan="blended-canvas",
        )
        tiled = tiled_engine.select_points(
            xs, ys, polys, window=window, resolution=resolution,
            exact=exact, tiling=tiling,
        )
        assert tiled.report.plan == "blended-canvas-tiled"
        _assert_selection_equal(frame, tiled)

    def test_empty_tiles_stay_null(self):
        # A constraint confined to one corner: most lattice tiles are
        # never built, and the gather must treat them as null space.
        window = BoundingBox(0.0, 0.0, 8.0, 8.0)
        xs, ys = _points(3, 400, window)
        corner = rescale_to_box(
            hand_drawn_polygon(seed=4, n_vertices=14),
            BoundingBox(0.2, 0.2, 1.4, 1.4),
        )
        frame_engine, tiled_engine = _pair()
        frame = frame_engine.select_points(
            xs, ys, [corner], window=window, resolution=96,
            force_plan="blended-canvas",
        )
        tiled = tiled_engine.select_points(
            xs, ys, [corner], window=window, resolution=96, tiling=6,
        )
        _assert_selection_equal(frame, tiled)
        report = tiled.report
        assert report.tiles == 36
        # Only the corner tiles were ever rasterized.
        assert 0 < report.tile_misses < report.tiles

    def test_non_divisible_resolution_has_ragged_tiles(self):
        window = BoundingBox(-0.13, -0.21, 1.07, 0.93)
        xs, ys = _points(5, 200, window)
        polys = _polygons(5, 2, window)
        for tiling in (3, 4, 7):  # none divides 97 or 103
            frame_engine, tiled_engine = _pair()
            frame = frame_engine.select_points(
                xs, ys, polys, window=window, resolution=(97, 103),
                force_plan="blended-canvas",
            )
            tiled = tiled_engine.select_points(
                xs, ys, polys, window=window, resolution=(97, 103),
                tiling=tiling,
            )
            _assert_selection_equal(frame, tiled)


class TestAggregateEquivalence:
    @given(tiling=tilings, resolution=resolutions, seed=seeds,
           window=windows(),
           aggregate=st.sampled_from(["count", "sum", "avg", "min", "max"]))
    @settings(max_examples=20, deadline=None)
    def test_bit_identical(self, tiling, resolution, seed, window,
                           aggregate):
        xs, ys = _points(seed, 150, window)
        rng = np.random.default_rng(seed + 2)
        values = rng.uniform(-5.0, 5.0, len(xs))
        polys = _polygons(seed, 3, window)
        frame_engine, tiled_engine = _pair()
        frame = frame_engine.aggregate_points(
            xs, ys, polys, values=values, aggregate=aggregate,
            window=window, resolution=resolution,
            force_plan="join-then-aggregate",
        )
        tiled = tiled_engine.aggregate_points(
            xs, ys, polys, values=values, aggregate=aggregate,
            window=window, resolution=resolution, tiling=tiling,
        )
        assert tiled.report.plan == "join-then-aggregate-tiled"
        assert np.array_equal(frame.groups, tiled.groups)
        assert np.array_equal(frame.values, tiled.values)


class TestDistanceEquivalence:
    @given(tiling=tilings, resolution=resolutions, seed=seeds,
           window=windows(), exact=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_bit_identical(self, tiling, resolution, seed, window, exact):
        xs, ys = _points(seed, 150, window)
        rng = np.random.default_rng(seed + 3)
        center = (rng.uniform(window.xmin, window.xmax),
                  rng.uniform(window.ymin, window.ymax))
        radius = rng.uniform(0.1, 0.5) * min(window.width, window.height)
        frame_engine, tiled_engine = _pair()
        frame = frame_engine.select_distance(
            xs, ys, center, radius, window=window, resolution=resolution,
            exact=exact, force_plan="circle-canvas",
        )
        tiled = tiled_engine.select_distance(
            xs, ys, center, radius, window=window, resolution=resolution,
            exact=exact, tiling=tiling,
        )
        assert tiled.report.plan == "circle-canvas-tiled"
        _assert_selection_equal(frame, tiled)


class TestVoronoiEquivalence:
    @given(tiling=tilings, resolution=resolutions, seed=seeds,
           window=windows())
    @settings(max_examples=15, deadline=None)
    def test_bit_identical(self, tiling, resolution, seed, window):
        rng = np.random.default_rng(seed + 4)
        n_sites = int(rng.integers(2, 24))
        pts = np.stack([
            rng.uniform(window.xmin, window.xmax, n_sites),
            rng.uniform(window.ymin, window.ymax, n_sites),
        ], axis=1)
        frame_engine, tiled_engine = _pair()
        frame = frame_engine.voronoi(
            pts, window, resolution=resolution, force_plan="blocked-argmin",
        )
        tiled = tiled_engine.voronoi(
            pts, window, resolution=resolution, tiling=tiling,
        )
        assert tiled.report.plan == "blocked-argmin-tiled"
        assert np.array_equal(frame.canvas.texture.data,
                              tiled.canvas.texture.data)
        assert np.array_equal(frame.canvas.texture.valid,
                              tiled.canvas.texture.valid)


class TestOdEquivalence:
    @given(tiling=tilings, resolution=resolutions, seed=seeds,
           window=windows(), exact=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_bit_identical(self, tiling, resolution, seed, window, exact):
        xs, ys = _points(seed, 120, window)
        dxs, dys = _points(seed + 5, 120, window)
        q1, q2 = _polygons(seed + 6, 2, window)
        frame_engine, tiled_engine = _pair()
        frame = frame_engine.od_select(
            xs, ys, dxs, dys, q1, q2, window=window, resolution=resolution,
            exact=exact, force_plan="two-stage-canvas",
        )
        tiled = tiled_engine.od_select(
            xs, ys, dxs, dys, q1, q2, window=window, resolution=resolution,
            exact=exact, tiling=tiling,
        )
        assert tiled.report.plan == "two-stage-canvas-tiled"
        _assert_selection_equal(frame, tiled)


def _linestrings(seed: int, n: int, window: BoundingBox) -> list:
    rng = np.random.default_rng(seed + 7)
    lines = []
    for _ in range(n):
        k = int(rng.integers(2, 6))
        xs = rng.uniform(window.xmin, window.xmax, k)
        ys = rng.uniform(window.ymin, window.ymax, k)
        lines.append(LineString(list(zip(xs, ys))))
    return lines


class TestGeometryEquivalence:
    @given(tiling=tilings, resolution=resolutions, seed=seeds,
           window=windows(), kind=st.sampled_from(["polygons", "lines"]),
           exact=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_bit_identical(self, tiling, resolution, seed, window, kind,
                           exact):
        if kind == "polygons":
            geoms = _polygons(seed + 8, 6, window)
        else:
            geoms = _linestrings(seed, 6, window)
        query = _polygons(seed + 9, 1, window)[0]
        frame_engine, tiled_engine = _pair()
        frame = frame_engine.select_geometry_records(
            kind, geoms, query, window=window, resolution=resolution,
            exact=exact, force_plan="canvas-blend",
        )
        tiled = tiled_engine.select_geometry_records(
            kind, geoms, query, window=window, resolution=resolution,
            exact=exact, tiling=tiling,
        )
        assert tiled.report.plan == "canvas-blend-tiled"
        _assert_selection_equal(frame, tiled)
