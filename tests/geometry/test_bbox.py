"""Unit tests for bounding boxes."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def box_strategy():
    return st.builds(
        lambda x0, y0, w, h: BoundingBox(x0, y0, x0 + w, y0 + h),
        finite, finite,
        st.floats(0.0, 1e6), st.floats(0.0, 1e6),
    )


class TestConstruction:
    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_degenerate_point_box_allowed(self):
        box = BoundingBox(3.0, 4.0, 3.0, 4.0)
        assert box.area == 0.0
        assert box.contains_point(3.0, 4.0)

    def test_from_points(self):
        box = BoundingBox.from_points([(1, 2), (5, -1), (3, 7)])
        assert tuple(box) == (1, -1, 5, 7)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_union_all(self):
        boxes = [BoundingBox(0, 0, 1, 1), BoundingBox(2, -1, 3, 0.5)]
        assert tuple(BoundingBox.union_all(boxes)) == (0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.union_all([])


class TestProperties:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4 and box.height == 3
        assert box.area == 12 and box.perimeter == 14
        assert box.center == (2.0, 1.5)

    def test_corners_ccw(self):
        corners = BoundingBox(0, 0, 2, 1).corners
        assert corners == [(0, 0), (2, 0), (2, 1), (0, 1)]


class TestPredicates:
    def test_contains_point_boundary(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains_point(0, 0)
        assert box.contains_point(1, 1)
        assert not box.contains_point(1.0001, 0.5)

    def test_intersects_touching_edges(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(1, 0, 2, 1)
        assert a.intersects(b)

    def test_disjoint(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 5, 5)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestCombinators:
    def test_intersection_value(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 1, 3, 3)
        assert tuple(a.intersection(b)) == (1, 1, 2, 2)

    def test_expand_and_shrink(self):
        box = BoundingBox(0, 0, 2, 2).expand(1.0)
        assert tuple(box) == (-1, -1, 3, 3)

    def test_scaled_preserves_center(self):
        box = BoundingBox(0, 0, 4, 2).scaled(0.5)
        assert box.center == (2.0, 1.0)
        assert box.width == 2.0 and box.height == 1.0

    def test_scaled_nonpositive_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).scaled(0.0)

    def test_distance_to_point(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.distance_to_point(0.5, 0.5) == 0.0
        assert box.distance_to_point(2, 1) == 1.0
        assert box.distance_to_point(2, 2) == pytest.approx(math.sqrt(2))


class TestPropertyBased:
    @given(box_strategy(), box_strategy())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)

    @given(box_strategy(), box_strategy())
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        ia, ib = a.intersection(b), b.intersection(a)
        assert (ia is None) == (ib is None)
        if ia is not None:
            assert tuple(ia) == pytest.approx(tuple(ib))

    @given(box_strategy())
    def test_intersection_with_self_is_self(self, a):
        assert tuple(a.intersection(a)) == tuple(a)

    @given(box_strategy(), st.floats(0.0, 100.0))
    def test_expand_monotone(self, a, margin):
        assert a.expand(margin).contains_box(a)
