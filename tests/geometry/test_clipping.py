"""Tests for polygon and segment clipping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.clipping import (
    clip_polygon_bbox,
    clip_polygon_convex,
    clip_polygon_halfplane,
    clip_polygon_to_window,
    clip_segment_rect,
)
from repro.geometry.predicates import ring_signed_area
from repro.geometry.primitives import Polygon

SQUARE = [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]


class TestHalfplaneClip:
    def test_fully_inside(self):
        # x <= 10 keeps everything.
        out = clip_polygon_halfplane(SQUARE, 1, 0, -10)
        assert ring_signed_area(out) == pytest.approx(16.0)

    def test_fully_outside(self):
        # x <= -1 removes everything.
        assert clip_polygon_halfplane(SQUARE, 1, 0, 1) == []

    def test_half_cut(self):
        # x <= 2 keeps the left half.
        out = clip_polygon_halfplane(SQUARE, 1, 0, -2)
        assert ring_signed_area(out) == pytest.approx(8.0)

    def test_diagonal_cut(self):
        # x + y <= 4 keeps the lower-left triangle.
        out = clip_polygon_halfplane(SQUARE, 1, 1, -4)
        assert ring_signed_area(out) == pytest.approx(8.0)

    def test_empty_input(self):
        assert clip_polygon_halfplane([], 1, 0, 0) == []


class TestConvexClip:
    def test_square_by_square(self):
        clip = [(2.0, 2.0), (6.0, 2.0), (6.0, 6.0), (2.0, 6.0)]
        out = clip_polygon_convex(SQUARE, clip)
        assert ring_signed_area(out) == pytest.approx(4.0)

    def test_disjoint_clip(self):
        clip = [(10.0, 10.0), (12.0, 10.0), (12.0, 12.0), (10.0, 12.0)]
        assert clip_polygon_convex(SQUARE, clip) == []

    def test_bbox_specialization(self):
        out = clip_polygon_bbox(SQUARE, BoundingBox(1, 1, 3, 3))
        assert ring_signed_area(out) == pytest.approx(4.0)

    @given(
        st.floats(-3, 3), st.floats(-3, 3),
        st.floats(0.5, 6), st.floats(0.5, 6),
    )
    @settings(max_examples=100)
    def test_clipped_area_never_exceeds_either(self, x0, y0, w, h):
        box = BoundingBox(x0, y0, x0 + w, y0 + h)
        out = clip_polygon_bbox(SQUARE, box)
        if len(out) >= 3:
            area = abs(ring_signed_area(out))
            assert area <= 16.0 + 1e-9
            assert area <= box.area + 1e-9


class TestClipToWindow:
    def test_holes_survive(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        clipped = clip_polygon_to_window(poly, BoundingBox(-1, -1, 11, 11))
        assert clipped is not None
        assert len(clipped.holes) == 1
        assert clipped.area == pytest.approx(96.0)

    def test_outside_returns_none(self):
        poly = Polygon(SQUARE)
        assert clip_polygon_to_window(poly, BoundingBox(10, 10, 20, 20)) is None

    def test_partial_clip_drops_outside_hole(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(7, 7), (9, 7), (9, 9), (7, 9)]],
        )
        clipped = clip_polygon_to_window(poly, BoundingBox(0, 0, 5, 5))
        assert clipped is not None
        assert clipped.holes == []
        assert clipped.area == pytest.approx(25.0)


class TestSegmentClip:
    def test_inside_unchanged(self):
        box = BoundingBox(0, 0, 10, 10)
        out = clip_segment_rect(1, 1, 9, 9, box)
        assert out == ((1, 1), (9, 9))

    def test_crossing_clipped(self):
        box = BoundingBox(0, 0, 10, 10)
        out = clip_segment_rect(-5, 5, 15, 5, box)
        assert out == ((0, 5), (10, 5))

    def test_miss_returns_none(self):
        box = BoundingBox(0, 0, 10, 10)
        assert clip_segment_rect(-5, -5, -1, 20, box) is None

    def test_corner_clip(self):
        box = BoundingBox(0, 0, 10, 10)
        out = clip_segment_rect(-5, 5, 5, -5, box)
        assert out is not None
        (x0, y0), (x1, y1) = out
        for x, y in ((x0, y0), (x1, y1)):
            assert box.contains_point(x, y)
