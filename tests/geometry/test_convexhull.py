"""Tests for the monotone-chain convex hull."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.convexhull import convex_hull
from repro.geometry.predicates import orientation, point_in_ring


class TestBasics:
    def test_square_with_interior_points(self):
        pts = [(0, 0), (4, 0), (4, 4), (0, 4), (2, 2), (1, 3)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (4, 0), (4, 4), (0, 4)}

    def test_ccw_order(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)])
        n = len(hull)
        for i in range(n):
            a, b, c = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            assert orientation(*a, *b, *c) == 1

    def test_collinear_input(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert hull == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_duplicates_removed(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (1, 0), (0, 1)])
        assert len(hull) == 3

    def test_two_points(self):
        assert convex_hull([(1, 1), (0, 0)]) == [(0, 0), (1, 1)]

    def test_collinear_edge_points_dropped(self):
        pts = [(0, 0), (2, 0), (4, 0), (4, 4), (0, 4)]
        hull = convex_hull(pts)
        assert (2, 0) not in hull


coord = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)


class TestPropertyBased:
    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_all_points_inside_hull(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return  # degenerate input
        for x, y in pts:
            assert point_in_ring(x, y, hull)

    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, pts):
        hull = convex_hull(pts)
        assert convex_hull(hull) == hull

    @given(st.lists(st.tuples(coord, coord), min_size=4, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_matches_scipy(self, pts):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        unique = sorted(set(pts))
        if len(unique) < 3:
            return
        arr = np.asarray(unique, dtype=float)
        try:
            sp = scipy_spatial.ConvexHull(arr)
        except Exception:
            return  # scipy rejects degenerate (collinear) inputs
        # Vertex sets may differ on (near-)collinear points; the hull
        # *regions* must agree, so compare areas.
        from repro.geometry.predicates import ring_signed_area

        ours = convex_hull(pts)
        # abs tolerance 1e-9, not 1e-12: on near-degenerate slivers
        # qhull's own volume carries ~1e-12 of error while our shoelace
        # area is exact, so a tighter bound tests scipy, not us.
        assert abs(ring_signed_area(ours)) == pytest.approx(
            sp.volume, rel=1e-9, abs=1e-9
        )
