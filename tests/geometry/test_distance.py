"""Tests for geometry distances."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import (
    geometry_distance,
    point_polygon_distance,
    point_segment_distance,
    points_segment_distance,
    segment_segment_distance,
)
from repro.geometry.primitives import (
    LineSegment,
    LineString,
    MultiPoint,
    Point,
    Polygon,
)

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestPointSegment:
    def test_perpendicular_foot(self):
        assert point_segment_distance(1, 1, 0, 0, 2, 0) == 1.0

    def test_clamped_to_endpoint(self):
        assert point_segment_distance(5, 0, 0, 0, 2, 0) == 3.0

    def test_degenerate_segment(self):
        assert point_segment_distance(3, 4, 0, 0, 0, 0) == 5.0

    def test_vectorized_matches_scalar(self):
        xs = np.array([1.0, 5.0, -1.0])
        ys = np.array([1.0, 0.0, 2.0])
        vec = points_segment_distance(xs, ys, 0, 0, 2, 0)
        for i in range(3):
            assert vec[i] == pytest.approx(
                point_segment_distance(xs[i], ys[i], 0, 0, 2, 0)
            )


class TestSegmentSegment:
    def test_intersecting_is_zero(self):
        a = LineSegment((0, 0), (2, 2))
        b = LineSegment((0, 2), (2, 0))
        assert segment_segment_distance(a, b) == 0.0

    def test_parallel(self):
        a = LineSegment((0, 0), (2, 0))
        b = LineSegment((0, 1), (2, 1))
        assert segment_segment_distance(a, b) == 1.0


class TestPointPolygon:
    def test_inside_is_zero(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert point_polygon_distance(2, 2, poly) == 0.0

    def test_outside(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert point_polygon_distance(6, 2, poly) == 2.0

    def test_inside_hole_uses_hole_boundary(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert point_polygon_distance(5, 5, poly) == 1.0


class TestDispatch:
    def test_point_point(self):
        assert geometry_distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_point_linestring(self):
        line = LineString([(0, 0), (10, 0)])
        assert geometry_distance(Point(5, 2), line) == 2.0

    def test_point_multipoint(self):
        mp = MultiPoint([(0, 0), (10, 10)])
        assert geometry_distance(Point(1, 0), mp) == 1.0

    def test_polygon_polygon_disjoint(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(5, 0), (7, 0), (7, 2), (5, 2)])
        assert geometry_distance(a, b) == 3.0

    def test_polygon_polygon_overlap_zero(self):
        a = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        b = Polygon([(2, 2), (6, 2), (6, 6), (2, 6)])
        assert geometry_distance(a, b) == 0.0

    def test_polygon_closest_edge_pair(self):
        # Closest approach is between two edges, not vertex to vertex.
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(3, -1), (5, -1), (5, 3), (3, 3)])
        assert geometry_distance(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        p = Point(5, 1)
        assert geometry_distance(a, p) == geometry_distance(p, a)

    @given(coord, coord, coord, coord)
    @settings(max_examples=60)
    def test_nonnegative_and_zero_iff_same(self, x1, y1, x2, y2):
        d = geometry_distance(Point(x1, y1), Point(x2, y2))
        assert d >= 0.0
        if (x1, y1) == (x2, y2):
            assert d == 0.0

    @given(coord, coord, coord, coord, coord, coord)
    @settings(max_examples=60)
    def test_triangle_inequality_points(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert geometry_distance(a, c) <= (
            geometry_distance(a, b) + geometry_distance(b, c) + 1e-9
        )
