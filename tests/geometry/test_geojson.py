"""Tests for GeoJSON serialization."""

import json

import pytest

from repro.geometry.geojson import (
    GeoJSONError,
    feature,
    feature_collection,
    from_geojson,
    to_geojson,
)
from repro.geometry.primitives import (
    GeometryCollection,
    LineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class TestWriting:
    def test_point(self):
        assert to_geojson(Point(1, 2)) == {
            "type": "Point", "coordinates": [1.0, 2.0],
        }

    def test_polygon_rings_closed(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        doc = to_geojson(poly)
        ring = doc["coordinates"][0]
        assert ring[0] == ring[-1]

    def test_polygon_with_hole_has_two_rings(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
        )
        assert len(to_geojson(poly)["coordinates"]) == 2


class TestParsing:
    def test_accepts_json_string(self):
        p = from_geojson('{"type": "Point", "coordinates": [1, 2]}')
        assert isinstance(p, Point)

    def test_polygon(self):
        doc = {
            "type": "Polygon",
            "coordinates": [
                [[0, 0], [4, 0], [4, 4], [0, 4], [0, 0]],
                [[1, 1], [2, 1], [2, 2], [1, 2], [1, 1]],
            ],
        }
        poly = from_geojson(doc)
        assert isinstance(poly, Polygon)
        assert poly.area == pytest.approx(15.0)

    def test_bad_document_raises(self):
        with pytest.raises(GeoJSONError):
            from_geojson({"no": "type"})
        with pytest.raises(GeoJSONError):
            from_geojson({"type": "Hexagon", "coordinates": []})
        with pytest.raises(GeoJSONError):
            from_geojson({"type": "Polygon", "coordinates": []})


class TestRoundTrips:
    CASES = [
        Point(1.5, -2.25),
        MultiPoint([(0, 0), (3, 4)]),
        LineString([(0, 0), (1, 1), (2, 0)]),
        Polygon([(0, 0), (4, 0), (4, 4), (0, 4)],
                holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]]),
        MultiPolygon([
            Polygon([(0, 0), (1, 0), (1, 1)]),
            Polygon([(5, 5), (6, 5), (6, 6), (5, 6)]),
        ]),
        GeometryCollection([Point(0, 0), LineString([(0, 0), (1, 1)])]),
    ]

    @pytest.mark.parametrize("geom", CASES, ids=lambda g: type(g).__name__)
    def test_roundtrip(self, geom):
        doc = to_geojson(geom)
        json.dumps(doc)  # must be JSON-serializable
        back = from_geojson(doc)
        assert to_geojson(back) == doc


class TestFeatures:
    def test_feature_wraps_properties(self):
        ft = feature(Point(1, 1), {"name": "depot"})
        assert ft["type"] == "Feature"
        assert ft["properties"]["name"] == "depot"

    def test_feature_collection(self):
        fc = feature_collection([feature(Point(0, 0)), feature(Point(1, 1))])
        assert fc["type"] == "FeatureCollection"
        assert len(fc["features"]) == 2
