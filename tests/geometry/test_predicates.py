"""Tests for orientation, intersection and containment predicates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.predicates import (
    orientation,
    point_in_polygon,
    point_in_ring,
    point_on_ring,
    point_on_segment,
    points_in_polygon,
    points_in_ring,
    polygon_intersects_polygon,
    ring_is_ccw,
    ring_signed_area,
    segment_intersection,
    segments_intersect,
)
from repro.geometry.primitives import Polygon

SQUARE = [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestOrientation:
    def test_ccw(self):
        assert orientation(0, 0, 1, 0, 1, 1) == 1

    def test_cw(self):
        assert orientation(0, 0, 1, 1, 1, 0) == -1

    def test_collinear(self):
        assert orientation(0, 0, 1, 1, 2, 2) == 0

    @given(coord, coord, coord, coord, coord, coord)
    def test_antisymmetry(self, ax, ay, bx, by, cx, cy):
        assert orientation(ax, ay, bx, by, cx, cy) == -orientation(
            ax, ay, cx, cy, bx, by
        )


class TestSegments:
    def test_crossing(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_parallel_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_touching_at_endpoint(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_collinear_overlap(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_intersection_point_value(self):
        pt = segment_intersection(0, 0, 2, 2, 0, 2, 2, 0)
        assert pt == pytest.approx((1.0, 1.0))

    def test_intersection_none_for_miss(self):
        assert segment_intersection(0, 0, 1, 0, 0, 1, 1, 1) is None

    def test_intersection_collinear_witness(self):
        pt = segment_intersection(0, 0, 2, 0, 1, 0, 3, 0)
        assert pt is not None
        assert point_on_segment(pt[0], pt[1], 0, 0, 2, 0)
        assert point_on_segment(pt[0], pt[1], 1, 0, 3, 0)

    @given(coord, coord, coord, coord, coord, coord, coord, coord)
    @settings(max_examples=200)
    def test_symmetry(self, ax, ay, bx, by, cx, cy, dx, dy):
        assert segments_intersect(ax, ay, bx, by, cx, cy, dx, dy) == (
            segments_intersect(cx, cy, dx, dy, ax, ay, bx, by)
        )


class TestPointInRing:
    def test_interior(self):
        assert point_in_ring(2, 2, SQUARE)

    def test_exterior(self):
        assert not point_in_ring(5, 2, SQUARE)

    def test_boundary_counts_inside(self):
        assert point_in_ring(0, 2, SQUARE)
        assert point_in_ring(0, 0, SQUARE)

    def test_point_on_ring(self):
        assert point_on_ring(2, 0, SQUARE)
        assert not point_on_ring(2, 2, SQUARE)

    def test_concave_ring(self):
        # An L-shape: the notch is outside.
        ring = [(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)]
        assert point_in_ring(1, 3, ring)
        assert not point_in_ring(3, 3, ring)


class TestVectorizedAgreement:
    @given(st.lists(st.tuples(coord, coord), min_size=30, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_points_in_ring_matches_scalar(self, points):
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        vec = points_in_ring(xs, ys, SQUARE)
        for i in range(len(points)):
            # Scalar test is boundary-inclusive; restrict the check to
            # clearly off-boundary points.
            on_edge = point_on_ring(xs[i], ys[i], SQUARE)
            if not on_edge:
                assert vec[i] == point_in_ring(xs[i], ys[i], SQUARE)

    def test_points_in_polygon_honours_holes(self):
        poly = Polygon(SQUARE, holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]])
        xs = np.array([2.0, 0.5, 5.0])
        ys = np.array([2.0, 0.5, 5.0])
        assert points_in_polygon(xs, ys, poly).tolist() == [False, True, False]


class TestPointInPolygonWithHoles:
    def test_hole_excluded(self):
        poly = Polygon(SQUARE, holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]])
        assert not point_in_polygon(2, 2, poly)
        assert point_in_polygon(0.5, 0.5, poly)

    def test_hole_boundary_is_inside(self):
        poly = Polygon(SQUARE, holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]])
        assert point_in_polygon(1, 2, poly)


class TestPolygonIntersection:
    def test_overlapping(self):
        a = Polygon(SQUARE)
        b = Polygon([(2, 2), (6, 2), (6, 6), (2, 6)])
        assert polygon_intersects_polygon(a, b)

    def test_disjoint(self):
        a = Polygon(SQUARE)
        b = Polygon([(10, 10), (12, 10), (12, 12), (10, 12)])
        assert not polygon_intersects_polygon(a, b)

    def test_containment_counts(self):
        a = Polygon(SQUARE)
        b = Polygon([(1, 1), (2, 1), (2, 2), (1, 2)])
        assert polygon_intersects_polygon(a, b)
        assert polygon_intersects_polygon(b, a)

    def test_inside_hole_not_intersecting(self):
        outer = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (8, 2), (8, 8), (2, 8)]],
        )
        inner = Polygon([(4, 4), (6, 4), (6, 6), (4, 6)])
        assert not polygon_intersects_polygon(outer, inner)

    def test_edge_touching(self):
        a = Polygon(SQUARE)
        b = Polygon([(4, 0), (8, 0), (8, 4)])
        assert polygon_intersects_polygon(a, b)


class TestRingArea:
    def test_square_area(self):
        assert ring_signed_area(SQUARE) == 16.0
        assert ring_is_ccw(SQUARE)

    def test_reversed_is_negative(self):
        assert ring_signed_area(list(reversed(SQUARE))) == -16.0
