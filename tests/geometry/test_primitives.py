"""Tests for the typed geometry primitives."""

import pytest

from repro.geometry.primitives import (
    GeometryCollection,
    LinearRing,
    LineSegment,
    LineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class TestPoint:
    def test_dimension_and_bounds(self):
        p = Point(1, 2)
        assert p.dimension == 0
        assert tuple(p.bounds) == (1, 2, 1, 2)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_unpack(self):
        x, y = Point(3, 7)
        assert (x, y) == (3, 7)


class TestMultiPoint:
    def test_requires_points(self):
        with pytest.raises(ValueError):
            MultiPoint([])

    def test_iter_yields_points(self):
        mp = MultiPoint([(0, 0), (1, 1)])
        assert len(mp) == 2
        assert list(mp) == [Point(0, 0), Point(1, 1)]


class TestLineString:
    def test_length(self):
        line = LineString([(0, 0), (3, 0), (3, 4)])
        assert line.length == 7.0

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            LineString([(0, 0)])

    def test_segments(self):
        segments = list(LineString([(0, 0), (1, 0), (1, 1)]).segments())
        assert len(segments) == 2
        assert segments[0].length == 1.0

    def test_dimension(self):
        assert LineString([(0, 0), (1, 1)]).dimension == 1


class TestLineSegment:
    def test_intersects(self):
        a = LineSegment((0, 0), (2, 2))
        b = LineSegment((0, 2), (2, 0))
        c = LineSegment((3, 3), (4, 4))
        assert a.intersects(b)
        assert not a.intersects(c)


class TestLinearRing:
    def test_drops_closing_vertex(self):
        ring = LinearRing([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(ring) == 3

    def test_requires_three_distinct(self):
        with pytest.raises(ValueError):
            LinearRing([(0, 0), (1, 1), (0, 0)])

    def test_orientation_helpers(self):
        ccw = LinearRing([(0, 0), (1, 0), (1, 1)])
        assert ccw.is_ccw
        cw = ccw.reversed()
        assert not cw.is_ccw
        assert cw.oriented(ccw=True).is_ccw

    def test_signed_area(self):
        ring = LinearRing([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert ring.signed_area == 4.0
        assert ring.area == 4.0

    def test_is_simple(self):
        simple = LinearRing([(0, 0), (2, 0), (2, 2), (0, 2)])
        bowtie = LinearRing([(0, 0), (2, 2), (2, 0), (0, 2)])
        assert simple.is_simple()
        assert not bowtie.is_simple()

    def test_closed_array(self):
        ring = LinearRing([(0, 0), (1, 0), (0, 1)])
        arr = ring.closed_array()
        assert arr.shape == (4, 2)
        assert (arr[0] == arr[-1]).all()


class TestPolygon:
    def test_winding_normalization(self):
        # Clockwise shell input gets normalized to CCW; CCW hole to CW.
        poly = Polygon(
            [(0, 0), (0, 4), (4, 4), (4, 0)],  # clockwise
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],  # ccw
        )
        assert poly.shell.is_ccw
        assert not poly.holes[0].is_ccw

    def test_area_subtracts_holes(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
        )
        assert poly.area == 15.0

    def test_contains_point(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert poly.contains_point(2, 2)
        assert not poly.contains_point(5, 5)

    def test_on_boundary(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert poly.on_boundary(2, 0)
        assert not poly.on_boundary(2, 2)

    def test_representative_point_is_interior(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)],
                       holes=[[(3, 3), (7, 3), (7, 7), (3, 7)]])
        rp = poly.representative_point()
        assert poly.contains_point(rp.x, rp.y)
        assert not poly.on_boundary(rp.x, rp.y)

    def test_rings_iteration(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
        )
        assert len(list(poly.rings())) == 2


class TestMultiPolygon:
    def test_area_and_contains(self):
        mp = MultiPolygon([
            Polygon([(0, 0), (2, 0), (2, 2), (0, 2)]),
            Polygon([(5, 5), (7, 5), (7, 7), (5, 7)]),
        ])
        assert mp.area == 8.0
        assert mp.contains_point(1, 1)
        assert mp.contains_point(6, 6)
        assert not mp.contains_point(3, 3)

    def test_bounds_union(self):
        mp = MultiPolygon([
            Polygon([(0, 0), (2, 0), (2, 2), (0, 2)]),
            Polygon([(5, 5), (7, 5), (7, 7), (5, 7)]),
        ])
        assert tuple(mp.bounds) == (0, 0, 7, 7)


class TestGeometryCollection:
    def test_figure3_object(self):
        """The paper's Figure 3: polygons + a line + a point, one id."""
        collection = GeometryCollection([
            Polygon([(0, 0), (2, 0), (2, 2), (0, 2)]),
            LineString([(2, 1), (5, 1)]),
            Polygon([(5, 0), (7, 0), (7, 2), (5, 2)],
                    holes=[[(5.5, 0.5), (6.5, 0.5), (6.5, 1.5), (5.5, 1.5)]]),
            Point(6, 1),
        ])
        assert collection.dimension == 2
        assert len(collection.primitives_of_dimension(0)) == 1
        assert len(collection.primitives_of_dimension(1)) == 1
        assert len(collection.primitives_of_dimension(2)) == 2

    def test_vertex_array_concatenates(self):
        collection = GeometryCollection([Point(0, 0), Point(1, 1)])
        assert collection.vertex_array().shape == (2, 2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            GeometryCollection([])
