"""Tests for affine transforms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import LineString, Point, Polygon
from repro.geometry.transforms import AffineTransform

angle = st.floats(-math.pi, math.pi)
shift = st.floats(-100, 100, allow_nan=False)
scale = st.floats(0.1, 10.0)


class TestConstructors:
    def test_identity(self):
        t = AffineTransform.identity()
        assert t.is_identity
        assert t.apply_point(3, 4) == (3, 4)

    def test_translation(self):
        t = AffineTransform.translation(2, -1)
        assert t.apply_point(1, 1) == (3, 0)

    def test_scaling_isotropic_default(self):
        t = AffineTransform.scaling(2)
        assert t.apply_point(1, 3) == (2, 6)

    def test_rotation_quarter_turn(self):
        t = AffineTransform.rotation(math.pi / 2)
        x, y = t.apply_point(1, 0)
        assert (x, y) == pytest.approx((0, 1), abs=1e-12)

    def test_rotation_about_center(self):
        t = AffineTransform.rotation(math.pi, center=(1, 1))
        assert t.apply_point(2, 1) == pytest.approx((0, 1), abs=1e-12)

    def test_window_to_window(self):
        t = AffineTransform.window_to_window((0, 0, 10, 10), (0, 0, 1, 2))
        assert t.apply_point(5, 5) == pytest.approx((0.5, 1.0))
        assert t.apply_point(10, 0) == pytest.approx((1.0, 0.0))

    def test_window_degenerate_raises(self):
        with pytest.raises(ValueError):
            AffineTransform.window_to_window((0, 0, 0, 10), (0, 0, 1, 1))

    def test_bad_matrix_shape_raises(self):
        with pytest.raises(ValueError):
            AffineTransform(np.eye(2))


class TestAlgebra:
    def test_composition_order(self):
        # scale then translate (right applies first under @).
        t = AffineTransform.translation(1, 0) @ AffineTransform.scaling(2)
        assert t.apply_point(1, 1) == (3, 2)

    @given(angle, shift, shift)
    @settings(max_examples=60)
    def test_inverse_roundtrip(self, a, dx, dy):
        t = AffineTransform.rotation(a) @ AffineTransform.translation(dx, dy)
        inv = t.inverse()
        x, y = t.apply_point(3.0, -7.0)
        assert inv.apply_point(x, y) == pytest.approx((3.0, -7.0), abs=1e-8)

    def test_apply_array_matches_apply_point(self):
        t = AffineTransform.rotation(0.3) @ AffineTransform.scaling(2, 3)
        pts = np.array([[1.0, 2.0], [-4.0, 0.5]])
        out = t.apply_array(pts)
        for i in range(len(pts)):
            assert tuple(out[i]) == pytest.approx(
                t.apply_point(pts[i, 0], pts[i, 1])
            )


class TestGeometryApplication:
    def test_point(self):
        p = AffineTransform.translation(1, 1).apply_geometry(Point(0, 0))
        assert isinstance(p, Point) and (p.x, p.y) == (1, 1)

    def test_polygon_keeps_holes_and_area_scales(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
        )
        out = AffineTransform.scaling(2).apply_geometry(poly)
        assert isinstance(out, Polygon)
        assert len(out.holes) == 1
        assert out.area == pytest.approx(poly.area * 4)

    def test_rotation_preserves_length(self):
        line = LineString([(0, 0), (3, 4)])
        out = AffineTransform.rotation(1.1).apply_geometry(line)
        assert isinstance(out, LineString)
        assert out.length == pytest.approx(line.length)

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            AffineTransform.identity().apply_geometry("not a geometry")  # type: ignore[arg-type]
