"""Tests for ear-clipping triangulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.primitives import Polygon
from repro.geometry.triangulate import (
    point_in_triangulation,
    triangle_centroid,
    triangulate_polygon,
    triangulate_ring,
    triangulation_area,
)


class TestSimpleRings:
    def test_triangle_passthrough(self):
        tris = triangulate_ring([(0, 0), (1, 0), (0, 1)])
        assert len(tris) == 1

    def test_square(self):
        tris = triangulate_ring([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert len(tris) == 2
        assert triangulation_area(tris) == pytest.approx(16.0)

    def test_concave(self):
        ring = [(0, 0), (4, 0), (4, 4), (2, 1.5), (0, 4)]
        tris = triangulate_ring(ring)
        assert len(tris) == 3
        poly = Polygon(ring)
        assert triangulation_area(tris) == pytest.approx(poly.area)

    def test_collinear_vertex_dropped(self):
        ring = [(0, 0), (2, 0), (4, 0), (4, 4), (0, 4)]
        tris = triangulate_ring(ring)
        assert triangulation_area(tris) == pytest.approx(16.0)

    def test_empty_for_degenerate(self):
        assert triangulate_ring([(0, 0), (1, 1)]) == []

    def test_centroids_inside(self):
        ring = [(0, 0), (4, 0), (4, 4), (2, 1.5), (0, 4)]
        poly = Polygon(ring)
        for tri in triangulate_ring(ring):
            cx, cy = triangle_centroid(tri)
            assert poly.contains_point(cx, cy)


class TestWithHoles:
    def test_square_with_hole_area(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
        )
        tris = triangulate_polygon(poly)
        assert triangulation_area(tris) == pytest.approx(poly.area)

    def test_hole_excluded_from_coverage(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
        )
        tris = triangulate_polygon(poly)
        assert not point_in_triangulation(2, 2, tris)
        assert point_in_triangulation(0.5, 0.5, tris)

    def test_two_holes(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[
                [(1, 1), (2, 1), (2, 2), (1, 2)],
                [(7, 7), (8, 7), (8, 8), (7, 8)],
            ],
        )
        tris = triangulate_polygon(poly)
        assert triangulation_area(tris) == pytest.approx(poly.area)


class TestPropertyBased:
    @given(st.integers(0, 1000), st.integers(5, 24))
    @settings(max_examples=40, deadline=None)
    def test_area_preserved_on_random_star_polygons(self, seed, n_vertices):
        poly = hand_drawn_polygon(
            n_vertices=n_vertices, irregularity=0.5, seed=seed
        )
        tris = triangulate_polygon(poly)
        assert triangulation_area(tris) == pytest.approx(poly.area, rel=1e-6)

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_triangle_count(self, seed):
        poly = hand_drawn_polygon(n_vertices=12, irregularity=0.3, seed=seed)
        tris = triangulate_polygon(poly)
        # n - 2 triangles for a simple polygon with no holes.
        assert len(tris) == len(poly.shell) - 2
