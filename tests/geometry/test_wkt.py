"""Tests for WKT serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.primitives import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.wkt import WKTParseError, from_wkt, to_wkt


class TestWriting:
    def test_point(self):
        assert to_wkt(Point(1, 2)) == "POINT (1 2)"

    def test_polygon_closes_rings(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        text = to_wkt(poly)
        assert text.startswith("POLYGON ((")
        assert text.count("0 0") == 2  # opening vertex repeated to close

    def test_polygon_with_hole(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
        )
        text = to_wkt(poly)
        assert text.count("(") == 3  # outer + two rings

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            to_wkt("banana")  # type: ignore[arg-type]


class TestParsing:
    def test_point(self):
        p = from_wkt("POINT (3 4)")
        assert isinstance(p, Point) and (p.x, p.y) == (3, 4)

    def test_multipoint_both_syntaxes(self):
        a = from_wkt("MULTIPOINT ((1 2), (3 4))")
        b = from_wkt("MULTIPOINT (1 2, 3 4)")
        assert isinstance(a, MultiPoint) and isinstance(b, MultiPoint)
        assert a.coords == b.coords

    def test_linestring(self):
        line = from_wkt("LINESTRING (0 0, 1 1, 2 0)")
        assert isinstance(line, LineString) and len(line) == 3

    def test_polygon_with_hole(self):
        poly = from_wkt(
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))"
        )
        assert isinstance(poly, Polygon)
        assert len(poly.holes) == 1
        assert poly.area == pytest.approx(15.0)

    def test_geometrycollection(self):
        gc = from_wkt(
            "GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 1 1))"
        )
        assert isinstance(gc, GeometryCollection) and len(gc) == 2

    def test_case_insensitive(self):
        assert isinstance(from_wkt("point (1 2)"), Point)

    def test_malformed_raises(self):
        with pytest.raises(WKTParseError):
            from_wkt("POINT 1 2")
        with pytest.raises(WKTParseError):
            from_wkt("TRIANGLE ((0 0, 1 0, 0 1))")
        with pytest.raises(WKTParseError):
            from_wkt("POLYGON (())")


class TestRoundTrips:
    CASES = [
        Point(1.5, -2.25),
        MultiPoint([(0, 0), (1e-3, 12345.678)]),
        LineString([(0, 0), (1, 1), (2, 0)]),
        MultiLineString([[(0, 0), (1, 1)], [(2, 2), (3, 3), (4, 2)]]),
        Polygon([(0, 0), (4, 0), (4, 4), (0, 4)],
                holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]]),
        MultiPolygon([
            Polygon([(0, 0), (1, 0), (1, 1)]),
            Polygon([(5, 5), (6, 5), (6, 6), (5, 6)]),
        ]),
    ]

    @pytest.mark.parametrize("geom", CASES, ids=lambda g: type(g).__name__)
    def test_roundtrip_preserves_wkt(self, geom):
        text = to_wkt(geom)
        assert to_wkt(from_wkt(text)) == text

    def test_collection_roundtrip(self):
        gc = GeometryCollection([Point(0, 0), LineString([(0, 0), (1, 1)])])
        assert to_wkt(from_wkt(to_wkt(gc))) == to_wkt(gc)

    @given(st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_random_polygon_roundtrip_geometry(self, seed):
        poly = hand_drawn_polygon(n_vertices=12, seed=seed)
        back = from_wkt(to_wkt(poly))
        assert isinstance(back, Polygon)
        assert back.area == pytest.approx(poly.area, rel=1e-6)
        assert len(back.shell) == len(poly.shell)
