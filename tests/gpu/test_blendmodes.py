"""Tests for the generic blend-mode library."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.blendmodes import ADD, BUILTIN_MODES, DESTINATION_OVER, MAX, MIN, SOURCE_OVER


def _pair(data1, valid1, data2, valid2):
    return (
        np.asarray(data1, float), np.asarray(valid1, bool),
        np.asarray(data2, float), np.asarray(valid2, bool),
    )


class TestSourceOver:
    def test_source_wins_where_valid(self):
        d, v = SOURCE_OVER(*_pair([[1.0, 2.0]], [[True]], [[9.0, 9.0]], [[True]]))
        assert d.tolist() == [[9.0, 9.0]]
        assert v.tolist() == [[True]]

    def test_destination_survives_null_source(self):
        d, v = SOURCE_OVER(*_pair([[1.0, 2.0]], [[True]], [[9.0, 9.0]], [[False]]))
        assert d.tolist() == [[1.0, 2.0]]

    def test_destination_over_keeps_first(self):
        d, v = DESTINATION_OVER(
            *_pair([[1.0, 2.0]], [[True]], [[9.0, 9.0]], [[True]])
        )
        assert d.tolist() == [[1.0, 2.0]]


class TestAdd:
    def test_sums_where_both_valid(self):
        d, v = ADD(*_pair([[2.0]], [[True]], [[3.0]], [[True]]))
        assert d.tolist() == [[5.0]]

    def test_copy_where_one_valid(self):
        d, v = ADD(*_pair([[2.0]], [[False]], [[3.0]], [[True]]))
        assert d.tolist() == [[3.0]]
        assert v.tolist() == [[True]]

    def test_null_where_neither(self):
        d, v = ADD(*_pair([[2.0]], [[False]], [[3.0]], [[False]]))
        assert v.tolist() == [[False]]


class TestMinMax:
    def test_max(self):
        d, _ = MAX(*_pair([[2.0]], [[True]], [[5.0]], [[True]]))
        assert d.tolist() == [[5.0]]

    def test_max_ignores_null(self):
        d, _ = MAX(*_pair([[2.0]], [[True]], [[99.0]], [[False]]))
        assert d.tolist() == [[2.0]]

    def test_min(self):
        d, _ = MIN(*_pair([[2.0]], [[True]], [[5.0]], [[True]]))
        assert d.tolist() == [[2.0]]

    def test_both_null_yields_zero_data(self):
        d, v = MIN(*_pair([[2.0]], [[False]], [[5.0]], [[False]]))
        assert d.tolist() == [[0.0]]
        assert not v.any()


class TestGroupedChannels:
    def test_validity_broadcast_per_group(self):
        # 4 channels, 2 groups: group 0 owns channels 0-1.
        d1 = np.array([[1.0, 1.0, 2.0, 2.0]])
        v1 = np.array([[True, False]])
        d2 = np.array([[9.0, 9.0, 8.0, 8.0]])
        v2 = np.array([[False, True]])
        d, v = SOURCE_OVER(d1, v1, d2, v2)
        assert d.tolist() == [[1.0, 1.0, 8.0, 8.0]]
        assert v.tolist() == [[True, True]]


values = st.lists(
    st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3
)
validity = st.booleans()


class TestAlgebraicLaws:
    @given(values, validity, values, validity, values, validity)
    @settings(max_examples=60)
    def test_add_associative(self, a, va, b, vb, c, vc):
        d_a = np.array([a])
        d_b = np.array([b])
        d_c = np.array([c])
        m_a = np.array([[va]])
        m_b = np.array([[vb]])
        m_c = np.array([[vc]])
        left = ADD(*ADD(d_a, m_a, d_b, m_b), d_c, m_c)
        right = ADD(d_a, m_a, *ADD(d_b, m_b, d_c, m_c))
        np.testing.assert_allclose(left[0], right[0], atol=1e-9)
        assert (left[1] == right[1]).all()

    @given(values, validity, values, validity)
    @settings(max_examples=60)
    def test_add_commutative(self, a, va, b, vb):
        d_a, d_b = np.array([a]), np.array([b])
        m_a, m_b = np.array([[va]]), np.array([[vb]])
        ab = ADD(d_a, m_a, d_b, m_b)
        ba = ADD(d_b, m_b, d_a, m_a)
        np.testing.assert_allclose(ab[0], ba[0], atol=1e-9)

    @given(values, validity, values, validity, values, validity)
    @settings(max_examples=60)
    def test_source_over_associative(self, a, va, b, vb, c, vc):
        d_a, d_b, d_c = np.array([a]), np.array([b]), np.array([c])
        m_a, m_b, m_c = np.array([[va]]), np.array([[vb]]), np.array([[vc]])
        left = SOURCE_OVER(*SOURCE_OVER(d_a, m_a, d_b, m_b), d_c, m_c)
        right = SOURCE_OVER(d_a, m_a, *SOURCE_OVER(d_b, m_b, d_c, m_c))
        np.testing.assert_allclose(left[0], right[0])
        assert (left[1] == right[1]).all()

    def test_metadata_flags(self):
        assert ADD.associative and ADD.commutative
        assert SOURCE_OVER.associative and not SOURCE_OVER.commutative
        assert set(BUILTIN_MODES) == {
            "source-over", "destination-over", "add", "max", "min",
        }
