"""Tests for the device execution model."""

import numpy as np
import pytest

from repro.gpu.device import DEFAULT_DEVICE, Device


class TestProfiles:
    def test_discrete_whole_frame(self):
        device = Device.discrete()
        assert list(device.row_tiles(100)) == [slice(0, 100)]

    def test_integrated_tiles(self):
        device = Device.integrated(tile_rows=16)
        tiles = list(device.row_tiles(40))
        assert tiles == [slice(0, 16), slice(16, 32), slice(32, 40)]

    def test_integrated_invalid_tile_rows(self):
        with pytest.raises(ValueError):
            Device.integrated(tile_rows=0)

    def test_tiles_cover_exactly(self):
        device = Device.integrated(tile_rows=7)
        covered = []
        for tile in device.row_tiles(50):
            covered.extend(range(tile.start, tile.stop))
        assert covered == list(range(50))

    def test_negative_height_raises(self):
        with pytest.raises(ValueError):
            list(DEFAULT_DEVICE.row_tiles(-1))

    def test_zero_height(self):
        assert list(Device.integrated(tile_rows=4).row_tiles(0)) == []


class TestExecution:
    def test_run_rows_invokes_per_tile(self):
        device = Device.integrated(tile_rows=10)
        calls = []
        device.run_rows(25, calls.append)
        assert len(calls) == 3

    def test_elementwise_matches_direct(self):
        rng = np.random.default_rng(0)
        a = rng.random((33, 8))
        b = rng.random((33, 8))
        out_tiled = np.empty_like(a)
        Device.integrated(tile_rows=5).elementwise(
            (a, b), lambda x, y: x * y + 1.0, out_tiled
        )
        out_whole = np.empty_like(a)
        Device.discrete().elementwise(
            (a, b), lambda x, y: x * y + 1.0, out_whole
        )
        assert np.array_equal(out_tiled, out_whole)
        assert np.array_equal(out_tiled, a * b + 1.0)

    def test_devices_are_value_objects(self):
        assert Device.discrete() == Device.discrete()
        assert Device.integrated(tile_rows=8) != Device.integrated(tile_rows=16)
