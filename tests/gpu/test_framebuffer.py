"""Tests for the framebuffer render target."""

import numpy as np
import pytest

from repro.gpu.blendmodes import ADD, SOURCE_OVER
from repro.gpu.device import Device
from repro.gpu.framebuffer import Framebuffer
from repro.gpu.texture import Texture


class TestDrawMask:
    def test_fills_covered_pixels(self):
        tex = Texture(4, 4, channels=2, groups=1)
        fb = Framebuffer(tex)
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = mask[2, 2] = True
        fb.draw_mask(mask, np.array([5.0, 6.0]), np.array([True]))
        assert tex.data[1, 1].tolist() == [5.0, 6.0]
        assert tex.valid[2, 2, 0]
        assert not tex.valid[0, 0, 0]

    def test_wrong_mask_shape_raises(self):
        tex = Texture(4, 4, channels=2, groups=1)
        fb = Framebuffer(tex)
        with pytest.raises(ValueError):
            fb.draw_mask(np.zeros((3, 3), bool), np.zeros(2), np.array([True]))

    def test_wrong_value_shape_raises(self):
        tex = Texture(4, 4, channels=2, groups=1)
        fb = Framebuffer(tex)
        with pytest.raises(ValueError):
            fb.draw_mask(np.zeros((4, 4), bool), np.zeros(3), np.array([True]))

    def test_tiled_device_equivalent(self):
        mask = np.random.default_rng(0).random((16, 8)) > 0.5
        results = []
        for device in (Device.discrete(), Device.integrated(tile_rows=3)):
            tex = Texture(16, 8, channels=1, groups=1)
            fb = Framebuffer(tex, device=device)
            fb.draw_mask(mask, np.array([2.0]), np.array([True]))
            results.append((tex.data.copy(), tex.valid.copy()))
        assert np.array_equal(results[0][0], results[1][0])
        assert np.array_equal(results[0][1], results[1][1])


class TestDrawCells:
    def test_per_fragment_values(self):
        tex = Texture(4, 4, channels=1, groups=1)
        fb = Framebuffer(tex)
        fb.draw_cells(
            np.array([0, 3]), np.array([1, 2]),
            np.array([[7.0], [8.0]]),
            np.array([[True], [True]]),
        )
        assert tex.data[0, 1, 0] == 7.0
        assert tex.data[3, 2, 0] == 8.0

    def test_constant_broadcast(self):
        tex = Texture(4, 4, channels=1, groups=1)
        fb = Framebuffer(tex)
        fb.draw_cells(
            np.array([0, 1]), np.array([0, 1]),
            np.array([3.0]), np.array([True]),
        )
        assert tex.data[0, 0, 0] == 3.0 and tex.data[1, 1, 0] == 3.0

    def test_source_over_blending(self):
        tex = Texture(2, 2, channels=1, groups=1)
        fb = Framebuffer(tex, blend=SOURCE_OVER)
        fb.draw_cells(np.array([0]), np.array([0]), np.array([1.0]),
                      np.array([True]))
        fb.draw_cells(np.array([0]), np.array([0]), np.array([2.0]),
                      np.array([True]))
        assert tex.data[0, 0, 0] == 2.0


class TestScatterAdd:
    def test_duplicate_cells_accumulate(self):
        tex = Texture(2, 2, channels=1, groups=1)
        fb = Framebuffer(tex, blend=ADD)
        fb.scatter_add_cells(
            np.array([0, 0, 0]), np.array([1, 1, 1]),
            np.array([1.0]), np.array([True]),
        )
        assert tex.data[0, 1, 0] == 3.0
        assert tex.valid[0, 1, 0]

    def test_per_fragment_values(self):
        tex = Texture(2, 2, channels=2, groups=1)
        fb = Framebuffer(tex, blend=ADD)
        fb.scatter_add_cells(
            np.array([1, 1]), np.array([0, 0]),
            np.array([[1.0, 10.0], [2.0, 20.0]]),
            np.array([[True], [True]]),
        )
        assert tex.data[1, 0].tolist() == [3.0, 30.0]


class TestBlendTexture:
    def test_full_frame_blend(self):
        dst = Texture(4, 4, channels=1, groups=1)
        src = Texture(4, 4, channels=1, groups=1)
        src.data[2, 2, 0] = 9.0
        src.valid[2, 2, 0] = True
        Framebuffer(dst, blend=ADD).blend_texture(src)
        assert dst.data[2, 2, 0] == 9.0
        assert dst.valid[2, 2, 0]

    def test_shape_mismatch_raises(self):
        dst = Texture(4, 4, channels=1, groups=1)
        src = Texture(4, 5, channels=1, groups=1)
        with pytest.raises(ValueError):
            Framebuffer(dst).blend_texture(src)
