"""Tests for point / line / triangle rasterization kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.rasterizer import (
    disk_mask,
    halfspace_mask,
    points_to_cells,
    rasterize_points,
    rasterize_segments,
    rasterize_triangle,
    rasterize_triangles,
    ring_boundary_cells,
    supercover_cells,
)

coord = st.floats(0.0, 31.9, allow_nan=False)


class TestPoints:
    def test_floor_binning(self):
        rows, cols, inside = points_to_cells(
            np.array([0.5, 3.9]), np.array([1.5, 0.0]), 8, 8
        )
        assert rows.tolist() == [1, 0]
        assert cols.tolist() == [0, 3]
        assert inside.all()

    def test_outside_dropped(self):
        rows, cols = rasterize_points(
            np.array([-1.0, 4.0, 100.0]), np.array([2.0, 2.0, 2.0]), 8, 8
        )
        assert len(rows) == 1
        assert (rows[0], cols[0]) == (2, 4)

    def test_top_border_closed(self):
        rows, cols, inside = points_to_cells(
            np.array([8.0]), np.array([8.0]), 8, 8
        )
        assert inside.all()
        assert (rows[0], cols[0]) == (7, 7)


class TestSupercover:
    def test_horizontal_line(self):
        rows, cols = supercover_cells(0.5, 2.5, 6.5, 2.5, 8, 8)
        assert set(rows.tolist()) == {2}
        assert set(cols.tolist()) == set(range(7))

    def test_diagonal_covers_both_sides(self):
        # A 45-degree diagonal through cell corners touches all cells
        # along the way — supercover must include them.
        rows, cols = supercover_cells(0.0, 0.0, 4.0, 4.0, 8, 8)
        cells = set(zip(rows.tolist(), cols.tolist()))
        for i in range(4):
            assert (i, i) in cells

    def test_steep_line(self):
        rows, cols = supercover_cells(1.5, 0.5, 1.5, 5.5, 8, 8)
        assert set(cols.tolist()) == {1}
        assert set(rows.tolist()) == set(range(6))

    def test_degenerate_point_segment(self):
        rows, cols = supercover_cells(3.5, 3.5, 3.5, 3.5, 8, 8)
        assert (rows.tolist(), cols.tolist()) == ([3], [3])

    def test_clipped_to_grid(self):
        rows, cols = supercover_cells(-5.0, 2.5, 20.0, 2.5, 8, 8)
        assert (cols >= 0).all() and (cols < 8).all()
        assert set(cols.tolist()) == set(range(8))

    def test_segment_riding_a_column_boundary(self):
        """A closed segment lying exactly on a grid line touches the
        cells on both sides for its whole length."""
        rows, cols = supercover_cells(3.0, 0.2, 3.0, 0.8, 8, 8)
        assert set(zip(rows.tolist(), cols.tolist())) == {(0, 2), (0, 3)}

    def test_diagonal_through_lattice_corners(self):
        """A segment crossing lattice corners exactly touches all four
        adjacent cells at each corner (hypothesis-found regression:
        (3,0)-(0,3) through (2,1) and (1,2) missed (1,2) and (2,1))."""
        rows, cols = supercover_cells(3.0, 0.0, 0.0, 3.0, 32, 32)
        cells = set(zip(rows.tolist(), cols.tolist()))
        for corner_r, corner_c in ((1, 2), (2, 1)):
            for dr in (-1, 0):
                for dc in (-1, 0):
                    assert (corner_r + dr, corner_c + dc) in cells

    @given(coord, coord, coord, coord)
    @settings(max_examples=100, deadline=None)
    def test_supercover_covers_samples(self, x0, y0, x1, y1):
        """Every densely-sampled location on the segment lies in a
        reported cell — the conservative guarantee."""
        rows, cols = supercover_cells(x0, y0, x1, y1, 32, 32)
        cells = set(zip(rows.tolist(), cols.tolist()))
        for t in np.linspace(0, 1, 64):
            x = x0 + t * (x1 - x0)
            y = y0 + t * (y1 - y0)
            r, c = int(min(y, 31.999)), int(min(x, 31.999))
            assert (r, c) in cells


class TestSegmentsAndRings:
    def test_multiple_segments_deduplicated(self):
        segments = np.array([
            [0.5, 0.5, 3.5, 0.5],
            [0.5, 0.5, 3.5, 0.5],  # duplicate
        ])
        rows, cols = rasterize_segments(segments, 8, 8)
        assert len(rows) == len(set(zip(rows.tolist(), cols.tolist())))

    def test_empty_input(self):
        rows, cols = rasterize_segments(np.empty((0, 4)), 8, 8)
        assert len(rows) == 0

    def test_ring_boundary_square(self):
        ring = np.array([[2.0, 2.0], [6.0, 2.0], [6.0, 6.0], [2.0, 6.0]])
        rows, cols = ring_boundary_cells(ring, 10, 10)
        cells = set(zip(rows.tolist(), cols.tolist()))
        # 4x4 cell square perimeter plus the outer-touching edge cells.
        assert (2, 2) in cells and (6, 6) in cells
        assert (4, 4) not in cells  # interior untouched


class TestTriangles:
    def test_right_triangle_area(self):
        rows, cols = rasterize_triangle(0, 0, 8, 0, 0, 8, 16, 16)
        # Half of an 8x8 block, center sampling: close to 32 cells.
        assert 24 <= len(rows) <= 40

    def test_winding_invariance(self):
        a = rasterize_triangle(1, 1, 6, 1, 3, 5, 8, 8)
        b = rasterize_triangle(3, 5, 6, 1, 1, 1, 8, 8)
        assert set(zip(*map(list, a))) == set(zip(*map(list, b)))

    def test_offscreen_triangle_empty(self):
        rows, cols = rasterize_triangle(-10, -10, -5, -10, -7, -5, 8, 8)
        assert len(rows) == 0

    def test_triangles_union(self):
        tris = np.array([
            [0, 0, 4, 0, 0, 4],
            [4, 4, 4, 0, 0, 4],
        ])
        rows, cols = rasterize_triangles(tris, 8, 8)
        cells = set(zip(rows.tolist(), cols.tolist()))
        # The two triangles tile the square [0,4)x[0,4).
        for r in range(4):
            for c in range(4):
                assert (r, c) in cells


class TestAnalyticMasks:
    def test_disk_mask(self):
        mask = disk_mask(4.0, 4.0, 2.0, 8, 8)
        assert mask[4, 4]
        assert not mask[0, 0]
        # Area close to pi * r^2 = 12.57.
        assert 9 <= mask.sum() <= 16

    def test_halfspace_mask(self):
        mask = halfspace_mask(1.0, 0.0, -4.0, 8, 8)  # x < 4
        assert mask[:, :3].all()
        assert not mask[:, 4:].any()
