"""Tests for the even-odd scanline polygon fill."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.polygons import hand_drawn_polygon
from repro.geometry.predicates import point_in_ring
from repro.gpu.device import Device
from repro.gpu.scanline import parity_fill, parity_fill_multi

SQUARE = np.array([[2.0, 2.0], [8.0, 2.0], [8.0, 8.0], [2.0, 8.0]])
HOLE = np.array([[4.0, 4.0], [6.0, 4.0], [6.0, 6.0], [4.0, 6.0]])


class TestBasics:
    def test_square_fill(self):
        mask = parity_fill([SQUARE], 10, 10)
        assert mask.sum() == 36
        assert mask[5, 5] and not mask[0, 0]

    def test_hole_subtracted(self):
        mask = parity_fill([SQUARE, HOLE], 10, 10)
        assert mask.sum() == 32
        assert not mask[5, 5]
        assert mask[3, 3]

    def test_winding_irrelevant(self):
        reversed_square = SQUARE[::-1].copy()
        a = parity_fill([SQUARE], 10, 10)
        b = parity_fill([reversed_square], 10, 10)
        assert np.array_equal(a, b)

    def test_empty_rings_rejected(self):
        with pytest.raises(ValueError):
            parity_fill([np.zeros((2, 2))], 8, 8)

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            parity_fill([SQUARE], 0, 8)

    def test_offscreen_polygon(self):
        far = SQUARE + 100.0
        assert parity_fill([far], 10, 10).sum() == 0


class TestDeviceEquivalence:
    @pytest.mark.parametrize("tile_rows", [1, 3, 7, 64])
    def test_tiled_matches_whole_frame(self, tile_rows):
        rng = np.random.default_rng(9)
        ring = rng.uniform(0, 32, (12, 2))
        # Sort by angle around centroid to make it simple-ish; parity
        # fill works for any ring, equivalence is what matters.
        c = ring.mean(axis=0)
        order = np.argsort(np.arctan2(ring[:, 1] - c[1], ring[:, 0] - c[0]))
        ring = ring[order]
        whole = parity_fill([ring], 32, 32, device=Device.discrete())
        tiled = parity_fill(
            [ring], 32, 32, device=Device.integrated(tile_rows=tile_rows)
        )
        assert np.array_equal(whole, tiled)


class TestAgainstPointInRing:
    @given(st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_interior_matches_scalar_pip(self, seed):
        poly = hand_drawn_polygon(
            n_vertices=14, irregularity=0.4, seed=seed,
            center=(16, 16), radius=12,
        )
        ring = poly.shell.vertex_array()
        mask = parity_fill([ring], 32, 32)
        ring_list = poly.shell.coords
        for r in range(0, 32, 3):
            for c in range(0, 32, 3):
                x, y = c + 0.5, r + 0.5
                expected = point_in_ring(x, y, ring_list)
                # Pixel centers exactly on an edge may legitimately
                # differ; skip them.
                from repro.geometry.predicates import point_on_ring

                if not point_on_ring(x, y, ring_list):
                    assert mask[r, c] == expected


class TestMultiFill:
    def test_coverage_counts(self):
        shifted = SQUARE + 3.0
        cover = parity_fill_multi([[SQUARE], [shifted]], 12, 12)
        assert cover.max() == 2
        assert cover[6, 6] == 2  # overlap region
        assert cover[2, 2] == 1
        assert cover[0, 0] == 0

    def test_empty_polygon_list(self):
        cover = parity_fill_multi([], 8, 8)
        assert cover.sum() == 0


class TestClippedFill:
    """``clip=`` evaluates a pixel window yet matches the full fill."""

    def test_clip_square(self):
        full = parity_fill([SQUARE], 10, 10)
        clipped = parity_fill([SQUARE], 10, 10, clip=(3, 7, 1, 9))
        assert clipped.shape == (4, 8)
        assert np.array_equal(clipped, full[3:7, 1:9])

    def test_clip_with_hole(self):
        full = parity_fill([SQUARE, HOLE], 10, 10)
        clipped = parity_fill([SQUARE, HOLE], 10, 10, clip=(0, 10, 0, 10))
        assert np.array_equal(clipped, full)

    def test_clip_clamped_to_grid(self):
        full = parity_fill([SQUARE], 10, 10)
        clipped = parity_fill([SQUARE], 10, 10, clip=(-5, 99, -2, 99))
        assert np.array_equal(clipped, full)

    def test_empty_clip_window(self):
        assert parity_fill([SQUARE], 10, 10, clip=(4, 4, 0, 10)).shape == (0, 10)
        assert parity_fill([SQUARE], 10, 10, clip=(20, 30, 0, 10)).size == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_polygon_any_window_is_a_slice(self, seed):
        rng = np.random.default_rng(seed)
        poly = hand_drawn_polygon(n_vertices=20, irregularity=0.45, seed=seed,
                                  center=(16, 16), radius=14)
        ring = poly.shell.vertex_array()
        full = parity_fill([ring], 32, 32)
        r0, c0 = rng.integers(0, 20, 2)
        r1, c1 = r0 + rng.integers(1, 12), c0 + rng.integers(1, 12)
        clipped = parity_fill([ring], 32, 32, clip=(r0, r1, c0, c1))
        assert np.array_equal(clipped, full[r0:r1, c0:c1])

    def test_tiled_device_matches_whole_frame(self):
        ring = hand_drawn_polygon(n_vertices=12, seed=3, center=(10, 10),
                                  radius=9).shell.vertex_array()
        whole = parity_fill([ring], 24, 24, clip=(2, 20, 4, 18))
        tiled = parity_fill([ring], 24, 24, clip=(2, 20, 4, 18),
                            device=Device.integrated(tile_rows=3))
        assert np.array_equal(whole, tiled)
