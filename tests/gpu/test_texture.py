"""Tests for textures."""

import numpy as np
import pytest

from repro.gpu.texture import Texture


class TestConstruction:
    def test_shape_and_groups(self):
        tex = Texture(4, 6, channels=9, groups=3)
        assert tex.shape == (4, 6, 9)
        assert tex.channels_per_group == 3

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Texture(0, 4)

    def test_channels_not_multiple_of_groups(self):
        with pytest.raises(ValueError):
            Texture(2, 2, channels=5, groups=2)

    def test_starts_null(self):
        tex = Texture(3, 3)
        assert tex.nonnull_count() == 0
        assert not tex.any_valid().any()


class TestGroupViews:
    def test_group_slice(self):
        tex = Texture(2, 2, channels=9, groups=3)
        assert tex.group_slice(1) == slice(3, 6)

    def test_group_out_of_range(self):
        tex = Texture(2, 2, channels=4, groups=2)
        with pytest.raises(IndexError):
            tex.group_slice(2)

    def test_group_data_is_view(self):
        tex = Texture(2, 2, channels=4, groups=2)
        tex.group_data(1)[0, 0, 0] = 7.0
        assert tex.data[0, 0, 2] == 7.0

    def test_iter_groups(self):
        tex = Texture(2, 2, channels=6, groups=3)
        assert len(list(tex.iter_groups())) == 3


class TestCopySemantics:
    def test_copy_is_independent(self):
        tex = Texture(2, 2)
        clone = tex.copy()
        clone.data[0, 0, 0] = 5.0
        clone.valid[0, 0, 0] = True
        assert tex.data[0, 0, 0] == 0.0
        assert not tex.valid[0, 0, 0]

    def test_like_matches_shape(self):
        tex = Texture(3, 5, channels=9, groups=3)
        blank = Texture.like(tex)
        assert blank.shape == tex.shape
        assert blank.nonnull_count() == 0

    def test_clear(self):
        tex = Texture(2, 2)
        tex.data[:] = 1.0
        tex.valid[:] = True
        tex.clear()
        assert tex.nonnull_count() == 0


class TestGather:
    def test_in_range_fetch(self):
        tex = Texture(4, 4, channels=2, groups=1)
        tex.data[2, 3] = [7.0, 8.0]
        tex.valid[2, 3, 0] = True
        data, valid = tex.gather(np.array([2]), np.array([3]))
        assert data.tolist() == [[7.0, 8.0]]
        assert valid.tolist() == [[True]]

    def test_out_of_range_fetches_null(self):
        tex = Texture(4, 4, channels=2, groups=1)
        tex.data[0, 0] = [9.0, 9.0]
        tex.valid[0, 0, 0] = True
        data, valid = tex.gather(np.array([-1, 4, 0]), np.array([0, 0, -5]))
        assert not valid.any()
        assert (data == 0).all()

    def test_mixed_batch(self):
        tex = Texture(2, 2, channels=1, groups=1)
        tex.data[1, 1, 0] = 3.0
        tex.valid[1, 1, 0] = True
        data, valid = tex.gather(np.array([1, 5]), np.array([1, 5]))
        assert valid[0, 0] and not valid[1, 0]
        assert data[0, 0] == 3.0 and data[1, 0] == 0.0
