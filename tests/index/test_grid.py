"""Tests for the uniform grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.index.grid import GridIndex

WINDOW = BoundingBox(0, 0, 100, 100)


class TestBasics:
    def test_invalid_resolution_raises(self):
        with pytest.raises(ValueError):
            GridIndex(WINDOW, 0, 4)

    def test_insert_and_query(self):
        index = GridIndex(WINDOW, 8, 8)
        index.insert("a", BoundingBox(10, 10, 20, 20))
        index.insert("b", BoundingBox(60, 60, 70, 70))
        assert index.query(BoundingBox(0, 0, 30, 30)) == ["a"]
        assert set(index.query(BoundingBox(0, 0, 100, 100))) == {"a", "b"}
        assert len(index) == 2

    def test_query_point(self):
        index = GridIndex(WINDOW, 8, 8)
        index.insert("a", BoundingBox(10, 10, 20, 20))
        assert index.query_point(15, 15) == ["a"]
        assert index.query_point(50, 50) == []

    def test_item_spanning_cells_not_duplicated(self):
        index = GridIndex(WINDOW, 8, 8)
        index.insert("wide", BoundingBox(5, 5, 95, 95))
        assert index.query(BoundingBox(0, 0, 100, 100)) == ["wide"]

    def test_outside_window_clamped(self):
        index = GridIndex(WINDOW, 8, 8)
        index.insert("out", BoundingBox(150, 150, 160, 160))
        assert index.query(BoundingBox(140, 140, 170, 170)) == ["out"]


class TestBulkLoad:
    def test_bulk_load_points(self):
        index = GridIndex(WINDOW, 16, 16)
        xs = np.array([10.0, 50.0, 90.0])
        ys = np.array([10.0, 50.0, 90.0])
        index.bulk_load_points(xs, ys, ids=["p0", "p1", "p2"])
        assert index.query(BoundingBox(40, 40, 60, 60)) == ["p1"]
        assert len(index) == 3

    def test_bulk_load_default_ids(self):
        index = GridIndex(WINDOW, 16, 16)
        index.bulk_load_points(np.array([1.0]), np.array([1.0]))
        assert index.query_point(1, 1) == [0]

    def test_bulk_load_length_mismatch(self):
        index = GridIndex(WINDOW, 4, 4)
        with pytest.raises(ValueError):
            index.bulk_load_points(np.array([1.0]), np.array([1.0]), ids=[1, 2])


class TestAgainstBruteForce:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1, max_size=200,
        ),
        st.tuples(st.floats(0, 90), st.floats(0, 90),
                  st.floats(1, 50), st.floats(1, 50)),
    )
    @settings(max_examples=50, deadline=None)
    def test_point_queries_match(self, points, query):
        x0, y0, w, h = query
        box = BoundingBox(x0, y0, min(x0 + w, 100), min(y0 + h, 100))
        index = GridIndex(WINDOW, 8, 8)
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        index.bulk_load_points(xs, ys)
        expected = {
            i for i in range(len(points))
            if box.contains_point(xs[i], ys[i])
        }
        assert set(index.query(box)) == expected
