"""Tests for the k-d tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.kdtree import KDTree


class TestConstruction:
    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((3, 3)))

    def test_items_length_mismatch(self):
        with pytest.raises(ValueError):
            KDTree([(0, 0), (1, 1)], items=["only-one"])

    def test_len(self):
        tree = KDTree([(0, 0), (1, 1), (2, 2)])
        assert len(tree) == 3


class TestNearest:
    def test_single_nearest(self):
        tree = KDTree([(0, 0), (10, 0), (5, 5)])
        [(item, d)] = tree.nearest(9, 1, k=1)
        assert item == 1
        assert d == pytest.approx(np.hypot(1, 1))

    def test_custom_items(self):
        tree = KDTree([(0, 0), (10, 10)], items=["origin", "corner"])
        assert tree.nearest(1, 1, k=1)[0][0] == "origin"

    def test_k_larger_than_tree(self):
        tree = KDTree([(0, 0), (1, 1)])
        assert len(tree.nearest(0, 0, k=10)) == 2

    def test_zero_k(self):
        tree = KDTree([(0, 0)])
        assert tree.nearest(0, 0, k=0) == []

    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 100, (800, 2))
        tree = KDTree(pts)
        for qx, qy in [(50, 50), (0, 0), (99, 1)]:
            got = [item for item, _ in tree.nearest(qx, qy, k=15)]
            d = np.hypot(pts[:, 0] - qx, pts[:, 1] - qy)
            assert set(got) == set(np.argsort(d)[:15].tolist())

    @given(
        st.lists(st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
                 min_size=2, max_size=120),
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
        st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_nearest_property(self, points, query, k):
        qx, qy = query
        tree = KDTree(points)
        result = tree.nearest(qx, qy, k=k)
        k_eff = min(k, len(points))
        assert len(result) == k_eff
        dists = [d for _, d in result]
        assert dists == sorted(dists)
        # The k-th smallest brute-force distance bounds every result.
        arr = np.asarray(points, dtype=float)
        brute = np.sort(np.hypot(arr[:, 0] - qx, arr[:, 1] - qy))
        assert dists[-1] == pytest.approx(brute[k_eff - 1], abs=1e-9)


class TestWithinRadius:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 100, (500, 2))
        tree = KDTree(pts)
        got = {item for item, _ in tree.within_radius(40, 60, 15)}
        d = np.hypot(pts[:, 0] - 40, pts[:, 1] - 60)
        assert got == set(np.nonzero(d <= 15)[0].tolist())

    def test_sorted_by_distance(self):
        tree = KDTree([(0, 0), (3, 0), (1, 0)])
        items = [i for i, _ in tree.within_radius(0, 0, 5)]
        assert items == [0, 2, 1]

    def test_negative_radius_empty(self):
        tree = KDTree([(0, 0)])
        assert tree.within_radius(0, 0, -1) == []
