"""Tests for the PR quadtree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.index.quadtree import QuadTree

WINDOW = BoundingBox(0, 0, 100, 100)


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QuadTree(WINDOW, capacity=0)

    def test_insert_and_count(self):
        tree = QuadTree(WINDOW, capacity=4)
        for i in range(10):
            tree.insert(i * 10.0, i * 10.0, i)
        assert len(tree) == 10

    def test_outside_window_raises(self):
        tree = QuadTree(WINDOW)
        with pytest.raises(ValueError):
            tree.insert(200, 50, "x")

    def test_split_happens(self):
        tree = QuadTree(WINDOW, capacity=2)
        rng = np.random.default_rng(0)
        for i in range(50):
            tree.insert(rng.uniform(0, 100), rng.uniform(0, 100), i)
        assert tree.depth >= 2

    def test_duplicate_positions_supported(self):
        tree = QuadTree(WINDOW, capacity=2, max_depth=4)
        for i in range(20):
            tree.insert(50.0, 50.0, i)
        # Max depth stops infinite splitting; all items retrievable.
        got = tree.query(BoundingBox(49, 49, 51, 51))
        assert sorted(got) == list(range(20))


class TestQueries:
    def test_query_matches_brute_force(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 100, (500, 2))
        tree = QuadTree(WINDOW, capacity=8)
        for i, (x, y) in enumerate(pts):
            tree.insert(x, y, i)
        box = BoundingBox(10, 30, 55, 80)
        expected = {
            i for i, (x, y) in enumerate(pts) if box.contains_point(x, y)
        }
        assert set(tree.query(box)) == expected

    @given(
        st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)),
                 min_size=1, max_size=200),
        st.tuples(st.floats(0, 100), st.floats(0, 100),
                  st.floats(0, 100), st.floats(0, 100)),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_equivalence_property(self, points, rect):
        x0, y0, x1, y1 = rect
        box = BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
        tree = QuadTree(WINDOW, capacity=4)
        for i, (x, y) in enumerate(points):
            tree.insert(x, y, i)
        expected = {
            i for i, (x, y) in enumerate(points) if box.contains_point(x, y)
        }
        assert set(tree.query(box)) == expected
