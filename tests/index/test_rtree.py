"""Tests for the STR-packed R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.index.rtree import RTree


def _point_items(points):
    return [
        (i, BoundingBox(x, y, x, y)) for i, (x, y) in enumerate(points)
    ]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.query(BoundingBox(0, 0, 1, 1)) == []

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            RTree([], leaf_capacity=1)

    def test_single_item(self):
        tree = RTree([("x", BoundingBox(1, 1, 2, 2))])
        assert tree.height == 1
        assert tree.query(BoundingBox(0, 0, 3, 3)) == ["x"]

    def test_height_grows_logarithmically(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, (2000, 2))
        tree = RTree(_point_items(pts), leaf_capacity=16, fanout=16)
        assert 2 <= tree.height <= 4

    def test_leaf_boxes_cover_items(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, (100, 2))
        tree = RTree(_point_items(pts), leaf_capacity=8)
        union = BoundingBox.union_all(list(tree.iter_leaf_boxes()))
        for x, y in pts:
            assert union.contains_point(x, y)


class TestQueries:
    def test_box_query_matches_brute_force(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 100, (500, 2))
        tree = RTree(_point_items(pts))
        box = BoundingBox(25, 25, 60, 70)
        expected = {
            i for i, (x, y) in enumerate(pts) if box.contains_point(x, y)
        }
        assert set(tree.query(box)) == expected

    def test_query_point(self):
        tree = RTree([("a", BoundingBox(0, 0, 10, 10)),
                      ("b", BoundingBox(20, 20, 30, 30))])
        assert tree.query_point(5, 5) == ["a"]
        assert tree.query_point(15, 15) == []

    @given(
        st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)),
                 min_size=1, max_size=300),
        st.tuples(st.floats(0, 100), st.floats(0, 100),
                  st.floats(0, 100), st.floats(0, 100)),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_equivalence_property(self, points, rect):
        x0, y0, x1, y1 = rect
        box = BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
        tree = RTree(_point_items(points), leaf_capacity=8, fanout=4)
        expected = {
            i for i, (x, y) in enumerate(points) if box.contains_point(x, y)
        }
        assert set(tree.query(box)) == expected


class TestNearest:
    def test_nearest_single(self):
        pts = [(0.0, 0.0), (10.0, 0.0), (5.0, 5.0)]
        tree = RTree(_point_items(pts))
        [(item, dist)] = tree.nearest(9.0, 1.0, k=1)
        assert item == 1
        assert dist == pytest.approx(np.hypot(1.0, 1.0))

    def test_nearest_k_matches_brute_force(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 100, (400, 2))
        tree = RTree(_point_items(pts), leaf_capacity=8)
        qx, qy = 37.0, 61.0
        got = [item for item, _ in tree.nearest(qx, qy, k=10)]
        d = np.hypot(pts[:, 0] - qx, pts[:, 1] - qy)
        expected = set(np.argsort(d)[:10].tolist())
        assert set(got) == expected

    def test_nearest_distances_sorted(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, (100, 2))
        tree = RTree(_point_items(pts))
        dists = [d for _, d in tree.nearest(5, 5, k=7)]
        assert dists == sorted(dists)

    def test_nearest_empty_and_zero_k(self):
        assert RTree([]).nearest(0, 0, k=3) == []
        tree = RTree([("a", BoundingBox(0, 0, 1, 1))])
        assert tree.nearest(0, 0, k=0) == []
