"""Shared fixtures for the process-backend battery.

The battery's central claim is *bit-identity*: a session with
``process_workers=N`` must produce exactly the outcomes — ids, plans,
cache hit/miss splits — of the same session run in-process.  The
fixtures therefore build *paired* sessions over identically-registered
registries, and the helpers compare results field-for-field with
``array_equal`` (never ``allclose``).

Process sessions own shared-memory segments and worker processes, so
everything that builds one must close it — the ``paired`` factory
tracks and closes its sessions at teardown, and
:func:`shm_segments` snapshots ``/dev/shm`` for leak scans.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import DatasetRegistry, PointData, Session, TripData
from repro.api.shm import SEGMENT_PREFIX
from repro.core.optimizer import CostModel
from repro.geometry.primitives import Polygon

RES = 128

POLY = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
POLY2 = Polygon([(10, 40), (60, 10), (90, 60), (40, 95)])


@pytest.fixture(scope="session")
def cloud() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(1204)
    n = 2_000
    return rng.uniform(0, 100, n), rng.uniform(0, 100, n)


def make_registry(cloud) -> DatasetRegistry:
    """One registry shape shared by every parity pair."""
    xs, ys = cloud
    values = np.hypot(xs - 50.0, ys - 50.0)
    registry = DatasetRegistry()
    registry.register("pts", (xs, ys))
    registry.register("ptsv", PointData(xs, ys, values=values))
    registry.register(
        "trips",
        TripData(xs, ys, ys[::-1].copy(), xs[::-1].copy()),
    )
    return registry


@pytest.fixture
def paired(cloud):
    """Factory for (serial, process) session pairs with shared knobs.

    Both sessions see byte-identical registries; only the execution
    backend differs.  Every session built through the factory is
    closed at teardown, so a failing test cannot leak segments into
    the next one.
    """
    opened: list[Session] = []

    def build(process_workers: int = 2, **knobs) -> tuple[Session, Session]:
        # A cost-model knob (even the default one) makes each session
        # build a *private* engine — comparing against the process-wide
        # default engine would inherit canvas-cache state from earlier
        # tests and corrupt the hit/miss parity checks.
        knobs.setdefault("cost_model", CostModel())
        serial = Session(make_registry(cloud), resolution=RES, **knobs)
        proc = Session(
            make_registry(cloud), resolution=RES,
            process_workers=process_workers, **knobs,
        )
        opened.extend((serial, proc))
        return serial, proc

    yield build
    for session in opened:
        session.close()


def shm_segments() -> set[str]:
    """Names of live shared-memory segments published by this library."""
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # non-Linux: fall back to "can't scan"
        pytest.skip("no /dev/shm to scan for leaked segments")


def assert_selection_equal(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert a.n_candidates == b.n_candidates
    assert a.n_exact_tests == b.n_exact_tests
    assert a.plan == b.plan


def assert_result_equal(a, b):
    """Bit-identity across every family's result shape."""
    assert type(a) is type(b)
    if hasattr(a, "ids"):
        assert_selection_equal(a, b)
    elif hasattr(a, "groups"):
        assert np.array_equal(a.groups, b.groups)
        assert np.array_equal(a.values, b.values)
    elif hasattr(a, "texture"):
        assert np.array_equal(a.texture.data, b.texture.data)
        assert np.array_equal(a.texture.valid, b.texture.valid)
    else:
        assert a == b
