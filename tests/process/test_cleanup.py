"""Nothing outlives the session: segments, workers, tracker state.

A process backend owns two kinds of leakable state — ``/dev/shm``
segments (survive the process!) and worker processes.  These tests
close sessions through every exit path the backend has (explicit
close, abandoned serve generator, injected worker crash, interpreter
exit) and then scan for leftovers.  The interpreter-exit path runs in
a subprocess so the assertion also covers resource-tracker noise: a
KeyError traceback from the tracker at shutdown means the
register/unregister bookkeeping double-counted a segment.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.api import ConstraintSpec, SelectSpec, Session, serve_lines
from repro.engine.process_pool import WorkerLost
from repro.testing.faults import FaultPlan, FaultRule, inject

from tests.process.conftest import POLY, make_registry, shm_segments

SPEC = SelectSpec(dataset="pts", constraints=[ConstraintSpec.polygon(POLY)])


def assert_pids_exit(pids, timeout_s=10.0):
    """Poll until every pid is gone (they are not our direct children)."""
    deadline = time.monotonic() + timeout_s
    pending = set(pids)
    while pending and time.monotonic() < deadline:
        for pid in list(pending):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                pending.discard(pid)
        if pending:
            time.sleep(0.05)
    assert not pending, f"worker processes survived close: {pending}"


class TestClose:
    def test_close_releases_segments_and_workers(self, cloud):
        before = shm_segments()
        session = Session(make_registry(cloud), resolution=128,
                          process_workers=2)
        session.run(SPEC)
        backend = session._ensure_backend()
        pids = backend.worker_pids()
        assert len(pids) >= 1
        assert shm_segments() - before, "backend published no segments"
        session.close()
        assert shm_segments() - before == set()
        assert_pids_exit(pids)
        # The session stays usable: the next run rebuilds the backend.
        session.run(SPEC)
        session.close()
        assert shm_segments() - before == set()

    def test_close_after_injected_crash(self, cloud):
        before = shm_segments()
        session = Session(make_registry(cloud), resolution=128,
                          process_workers=1)
        with inject(FaultPlan(
            FaultRule(site="worker.execute", action="kill", at={1})
        )):
            with pytest.raises(WorkerLost):
                session.run(SPEC)
        session.close()
        assert shm_segments() - before == set()

    def test_context_manager_closes(self, cloud):
        before = shm_segments()
        with Session(make_registry(cloud), resolution=128,
                     process_workers=1) as session:
            session.run(SPEC)
        assert shm_segments() - before == set()


class TestAbandonedServe:
    def test_abandoned_generator_then_close_leaks_nothing(self, cloud):
        before = shm_segments()
        session = Session(make_registry(cloud), resolution=128,
                          process_workers=1)
        line = json.dumps({
            "spec": "select", "version": 1, "dataset": "pts",
            "constraints": [
                {"kind": "polygon",
                 "geometry": {"type": "Polygon",
                              "coordinates": [[[20, 20], [80, 20],
                                               [80, 80], [20, 80],
                                               [20, 20]]]}}
            ],
            "resolution": 128,
        })
        gen = serve_lines([line] * 5, session)
        json.loads(next(gen))  # client reads one answer, then vanishes
        gen.close()
        session.close()
        assert shm_segments() - before == set()


SUBPROCESS_SCRIPT = """
import numpy as np
from repro.api import ConstraintSpec, SelectSpec, Session
from repro.geometry.primitives import Polygon

rng = np.random.default_rng(5)
session = Session(resolution=128, process_workers=2)
session.registry.register("pts", (rng.uniform(0, 100, 500),
                                  rng.uniform(0, 100, 500)))
poly = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
spec = SelectSpec(dataset="pts", constraints=[ConstraintSpec.polygon(poly)])
result = session.run(spec)
print("MATCHED", len(result.ids))
{closing}
"""


class TestInterpreterExit:
    @pytest.mark.parametrize("closing", ["session.close()", "pass"],
                             ids=["explicit-close", "atexit-sweep"])
    def test_subprocess_exits_tracker_clean(self, closing):
        # Both exit paths must leave /dev/shm clean *and* produce no
        # resource-tracker stderr (KeyError / leaked shared_memory
        # warnings betray double-unregister or missed cleanup).
        before = shm_segments()
        proc = subprocess.run(
            [sys.executable, "-c",
             SUBPROCESS_SCRIPT.format(closing=closing)],
            capture_output=True, text=True, timeout=120,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     filter(None, ["src", os.environ.get("PYTHONPATH")])
                 )},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "MATCHED" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "Traceback" not in proc.stderr, proc.stderr
        assert shm_segments() - before == set()
