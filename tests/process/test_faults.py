"""Worker-death and worker-error behavior of the process backend.

Three tiers, all deterministic (seeded/indexed rules at the
``worker.execute`` seam):

- *errors* pickle and ship in-band — the coordinator re-raises the
  original typed exception, the pool survives;
- a *transient* kill (first spawn only) breaks the pool once; the
  backend respawns the slot and the retry answers bit-identically;
- a *persistent* kill exhausts the one retry and surfaces as
  :class:`WorkerLost` — in-band with a stable error code at the serve
  boundary, never a hang.
"""

from __future__ import annotations

import pytest

from repro.api import ConstraintSpec, ERROR_CODES, SelectSpec, handle_request
from repro.engine.process_pool import WorkerLost
from repro.testing.faults import FaultInjected, FaultPlan, FaultRule, inject

from tests.process.conftest import POLY, assert_selection_equal

SPEC = SelectSpec(dataset="pts", constraints=[ConstraintSpec.polygon(POLY)])


def kill_rule(**kw) -> FaultRule:
    return FaultRule(site="worker.execute", action="kill", at={1}, **kw)


class TestInBandErrors:
    def test_raise_ships_typed_and_pool_survives(self, paired):
        serial, proc = paired(1)
        expected = serial.run(SPEC)
        with inject(FaultPlan(
            FaultRule(site="worker.execute", action="raise", at={1})
        )):
            with pytest.raises(FaultInjected):
                proc.run(SPEC)
            # Same worker process, next call: the error was in-band,
            # not a pool break.
            assert_selection_equal(proc.run(SPEC), expected)

    def test_delay_changes_nothing_but_time(self, paired):
        serial, proc = paired(1)
        expected = serial.run(SPEC)
        with inject(FaultPlan(
            FaultRule(site="worker.execute", action="delay", at={1},
                      delay_s=0.05)
        )):
            assert_selection_equal(proc.run(SPEC), expected)


class TestWorkerDeath:
    def test_transient_kill_respawns_and_answers_identically(self, paired):
        serial, proc = paired(1)
        expected = serial.run(SPEC)
        with inject(FaultPlan(kill_rule(spawn_generations={1}))):
            # First dispatch kills the gen-1 worker; the respawned
            # gen-2 worker (rule filtered out) answers the retry.
            result = proc.run(SPEC)
        assert_selection_equal(result, expected)
        backend = proc._ensure_backend()
        (stats,) = backend.attach_stats()
        assert stats["spawn_generation"] == 2

    def test_persistent_kill_raises_worker_lost(self, paired):
        _, proc = paired(1)
        with inject(FaultPlan(kill_rule())):
            with pytest.raises(WorkerLost) as info:
                proc.run(SPEC)
        assert info.value.code == "worker_lost"
        assert "worker_lost" in ERROR_CODES

    def test_worker_lost_is_in_band_at_the_serve_boundary(self, paired):
        _, proc = paired(1)
        request = {
            "spec": "select", "version": 1, "dataset": "pts",
            "constraints": [
                {"kind": "polygon",
                 "geometry": {"type": "Polygon",
                              "coordinates": [[[20, 20], [80, 20],
                                               [80, 80], [20, 80],
                                               [20, 20]]]}}
            ],
            "resolution": 128,
        }
        with inject(FaultPlan(kill_rule())):
            response = handle_request(request, proc)
        assert response["ok"] is False
        assert response["code"] == "worker_lost"

    def test_clean_rerun_after_fault_plan_clears(self, paired):
        serial, proc = paired(1)
        expected = serial.run(SPEC)
        with inject(FaultPlan(kill_rule())):
            with pytest.raises(WorkerLost):
                proc.run(SPEC)
        # Plan gone: the next run respawns with an empty rule set and
        # is bit-identical to serial.
        assert_selection_equal(proc.run(SPEC), expected)

    def test_kill_on_one_slot_spares_the_other(self, paired):
        serial, proc = paired(2)
        expected = serial.run(SPEC)
        with inject(FaultPlan(kill_rule(spawn_generations={1}))):
            result = proc.run(SPEC)
        assert_selection_equal(result, expected)
        backend = proc._ensure_backend()
        generations = sorted(
            s["spawn_generation"] for s in backend.attach_stats()
        )
        # Only the slot that executed (and died) respawned; dispatch
        # routes this spec to one slot by digest affinity.
        assert generations == [1, 2]
