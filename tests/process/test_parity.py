"""Bit-identity of the process backend across all seven spec families.

The planner runs on the coordinator in both modes, dataset arrays
cross as shared-memory views, and the execution kernels are pure — so
a process session must reproduce the serial session's outcomes
*exactly*: same ids, same plans, same cache hit/miss splits.  Every
test here runs the same specs through a serial and a process session
and compares field-for-field.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    AggregateSpec,
    ConstraintSpec,
    GeometryData,
    GeometrySpec,
    JoinSpec,
    KnnSpec,
    OdSpec,
    PointData,
    SelectSpec,
    VoronoiSpec,
    WindowSpec,
)
from repro.core.optimizer import CostModel
from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import LineString, Point, Polygon

from tests.process.conftest import (
    POLY,
    POLY2,
    RES,
    assert_result_equal,
)

pytestmark = pytest.mark.parametrize("workers", [1, 2])

#: Steers selection planning to the blended-canvas plan, which is the
#: one that exercises the constraint cache (and therefore the
#: backend's warm-key map).
BLEND = CostModel(edge_test=1e6)


def run_and_report(session, spec, n=1):
    """Run *spec* *n* times; (results, [(plan, hits, misses)] per run)."""
    results, reports = [], []
    for _ in range(n):
        session.take_reports()
        results.append(session.run(spec))
        produced, _ = session.take_reports()
        reports.extend(
            (r.plan, r.cache_hits, r.cache_misses) for r in produced
        )
    return results, reports


def assert_run_parity(serial, proc, spec, n=1):
    s_results, s_reports = run_and_report(serial, spec, n)
    p_results, p_reports = run_and_report(proc, spec, n)
    for a, b in zip(s_results, p_results):
        assert_result_equal(a, b)
    assert s_reports == p_reports
    return s_results[0]


class TestFamilies:
    def test_select_pip(self, paired, workers):
        # pixel_touch inflated so the planner prefers the PIP plan —
        # the uncached path, distinct from the blended test below.
        serial, proc = paired(workers, cost_model=CostModel(pixel_touch=1e6))
        spec = SelectSpec(
            dataset="pts", constraints=[ConstraintSpec.polygon(POLY)],
        )
        result = assert_run_parity(serial, proc, spec)
        assert result.plan == "per-polygon-pip"

    def test_select_blended_replays_cache_state(self, paired, workers):
        # Three runs of one spec: miss, hit, hit — the process session
        # must report the same split, which requires the coordinator's
        # warm-key map to mirror the worker's canvas cache.
        serial, proc = paired(workers, cost_model=BLEND)
        spec = SelectSpec(
            dataset="pts",
            constraints=[ConstraintSpec.polygon(POLY),
                         ConstraintSpec.polygon(POLY2)],
        )
        result = assert_run_parity(serial, proc, spec, n=3)
        assert result.plan == "blended-canvas"

    def test_knn(self, paired, workers):
        serial, proc = paired(workers)
        spec = KnnSpec(dataset="pts", query_point=(50.0, 50.0), k=9)
        assert_run_parity(serial, proc, spec)

    def test_aggregate(self, paired, workers):
        serial, proc = paired(workers)
        spec = AggregateSpec(
            dataset="ptsv",
            polygons=GeometryData([POLY, POLY2], ids=[4, 9]),
            aggregate="sum",
        )
        assert_run_parity(serial, proc, spec)

    def test_voronoi(self, paired, workers):
        serial, proc = paired(workers)
        rng = np.random.default_rng(77)
        pts = rng.uniform(5, 95, (11, 2))
        spec = VoronoiSpec(
            dataset=PointData(pts[:, 0], pts[:, 1]),
            window=WindowSpec.from_box(BoundingBox(0, 0, 100, 100)),
            resolution=64,
        )
        assert_run_parity(serial, proc, spec)

    def test_od(self, paired, workers):
        serial, proc = paired(workers)
        spec = OdSpec(dataset="trips", q1=POLY, q2=POLY2)
        assert_run_parity(serial, proc, spec)

    def test_geometry(self, paired, workers):
        # Geometry specs cross whole (run_spec_task) and execute on the
        # worker's mirrored Session.
        serial, proc = paired(workers)
        records = [
            Point(30.0, 30.0),
            LineString([(5, 5), (95, 95)]),
            POLY2,
            Point(1.0, 1.0),
        ]
        spec = GeometrySpec(
            dataset=GeometryData(records), query=POLY, kind="objects",
        )
        assert_run_parity(serial, proc, spec)

    def test_join(self, paired, workers):
        serial, proc = paired(workers)
        rng = np.random.default_rng(34)
        left = [
            Polygon([(x, y), (x + 15, y), (x + 15, y + 15), (x, y + 15)])
            for x, y in rng.uniform(0, 80, (6, 2))
        ]
        spec = JoinSpec(
            kind="polygons-polygons",
            left=GeometryData(left),
            right=GeometryData([POLY, POLY2]),
        )
        assert_run_parity(serial, proc, spec)

    def test_spec_dict_form(self, paired, workers):
        # The JSON-facing path (dicts, named datasets) through the
        # same machinery.
        serial, proc = paired(workers)
        spec = {
            "spec": "select", "version": 1, "dataset": "pts",
            "constraints": [
                {"kind": "polygon",
                 "geometry": {"type": "Polygon",
                              "coordinates": [[[20, 20], [80, 20],
                                               [80, 80], [20, 80],
                                               [20, 20]]]}}
            ],
            "resolution": RES,
        }
        assert_run_parity(serial, proc, spec)


class TestBatch:
    def test_batch_parity(self, paired, workers):
        # Four members sharing one constraint recipe: the serial batch
        # reports 1 miss + 3 hits; the process batch must report the
        # same split (digest-affinity routing colocates the sharers).
        serial, proc = paired(workers, cost_model=BLEND)
        members = [
            {"spec": "select", "version": 1, "dataset": "pts",
             "constraints": [
                 {"kind": "polygon",
                  "geometry": {"type": "Polygon",
                               "coordinates": [[[20, 20], [80, 20],
                                                [80, 80], [20, 80],
                                                [20, 20]]]}}
             ],
             "resolution": RES}
            for _ in range(4)
        ]
        s_run = serial.run_batch(members)
        p_run = proc.run_batch(members)
        for a, b in zip(s_run.results, p_run.results):
            assert_result_equal(a, b)
        assert s_run.report.plans == p_run.report.plans
        assert s_run.report.cache_hits == p_run.report.cache_hits
        assert s_run.report.cache_misses == p_run.report.cache_misses
        assert p_run.report.cache_hits == 3
        # The executing lane is a worker process, not a local thread.
        assert all(
            m.worker.startswith("proc-") for m in p_run.report.members
        )

    def test_batch_mixed_families(self, paired, workers):
        serial, proc = paired(workers)
        members = [
            SelectSpec(dataset="pts",
                       constraints=[ConstraintSpec.polygon(POLY)]),
            KnnSpec(dataset="pts", query_point=(40.0, 60.0), k=5),
            AggregateSpec(
                dataset="ptsv",
                polygons=GeometryData([POLY, POLY2]),
                aggregate="count",
            ),
            OdSpec(dataset="trips", q1=POLY, q2=POLY2),
        ]
        s_run = serial.run_batch(members)
        p_run = proc.run_batch(members)
        for a, b in zip(s_run.results, p_run.results):
            assert_result_equal(a, b)
        assert s_run.report.plans == p_run.report.plans

    def test_registry_update_rebuilds_plane(self, paired, workers, cloud):
        # Registering new data obsoletes the published plane; the next
        # run must answer from the *new* arrays, not the stale segments.
        serial, proc = paired(workers)
        spec = SelectSpec(
            dataset="pts", constraints=[ConstraintSpec.polygon(POLY)],
        )
        assert_run_parity(serial, proc, spec)
        gen_before = proc._ensure_backend().generation
        xs, ys = cloud
        serial.registry.register("pts", (xs[:500], ys[:500]))
        proc.registry.register("pts", (xs[:500], ys[:500]))
        result = assert_run_parity(serial, proc, spec)
        assert result.ids.max() < 500
        assert proc._ensure_backend().generation > gen_before


class TestEngineOwnedBackend:
    def test_execute_batch_process_workers(self, cloud, workers):
        # The engine-level knob, no Session and no shared plane:
        # arrays pickle per task, results stay bit-identical.
        from repro.engine import BatchQuery, QueryEngine

        from repro.geometry.bbox import BoundingBox

        xs, ys = cloud
        queries = [
            BatchQuery.selection(xs, ys, [POLY, POLY2],
                                 window=BoundingBox(0, 0, 100, 100),
                                 resolution=RES, mode="all")
            for _ in range(3)
        ]
        serial_engine = QueryEngine(cost_model=BLEND)
        base = serial_engine.execute_batch(queries)
        engine = QueryEngine(cost_model=BLEND)
        try:
            batch = engine.execute_batch(queries, process_workers=workers)
        finally:
            engine.close_process_backend()
        for a, b in zip(base.results, batch.results):
            assert np.array_equal(a.ids, b.ids)
        assert base.report.plans == batch.report.plans
        assert base.report.cache_hits == batch.report.cache_hits
        assert base.report.cache_misses == batch.report.cache_misses


class TestTiled:
    def test_tiled_selection_parity(self, paired, workers):
        # Tiling splits the blended canvas into per-tile cache entries;
        # cold tiles fan out to workers and land in the coordinator's
        # cache, so a second run must be all hits — same as serial.
        serial, proc = paired(workers, cost_model=BLEND, tiling=32)
        spec = SelectSpec(
            dataset="pts",
            constraints=[ConstraintSpec.polygon(POLY),
                         ConstraintSpec.polygon(POLY2)],
        )
        assert_run_parity(serial, proc, spec, n=2)

    def test_tiled_distance_parity(self, paired, workers):
        serial, proc = paired(workers, tiling=32)
        spec = SelectSpec(
            dataset="pts",
            constraints=[ConstraintSpec.circle((50.0, 50.0), 22.0)],
        )
        assert_run_parity(serial, proc, spec, n=2)
