"""The serve boundary and CLI over the process backend.

Process execution must be invisible to serve clients: same response
JSON (modulo timing fields), same in-band error codes, responses in
request order.  The CLI's two worker axes (--workers threads,
--process-workers processes) validate through one path.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.api import Session, serve, serve_lines
from repro.cli import _validate_serve_workers, main




def spec_line(seed=6, **overrides):
    spec = {
        "spec": "select", "version": 1,
        "dataset": f"synthetic:uniform?n=400&seed={seed}",
        "constraints": [
            {"kind": "polygon",
             "geometry": {"type": "Polygon",
                          "coordinates": [[[20, 20], [80, 20], [80, 80],
                                           [20, 80], [20, 20]]]}}
        ],
        "resolution": 128,
    }
    spec.update(overrides)
    return json.dumps(spec)


def strip_timings(response: dict) -> dict:
    report = dict(response.get("report") or {})
    for key in list(report):
        if key.endswith("_s") or key.endswith("_ms"):
            report.pop(key)
    return {**response, "report": report}


class TestServeParity:
    def test_process_serve_matches_serial_serve(self):
        lines = [spec_line(), spec_line(seed=7),
                 json.dumps({"spec": "knn", "version": 1,
                             "dataset": "synthetic:uniform?n=400&seed=6",
                             "query_point": [50, 50], "k": 3,
                             "resolution": 128})]
        serial_out = [json.loads(l) for l in serve_lines(list(lines))]
        with Session(process_workers=2) as proc_session:
            proc_out = [
                json.loads(l)
                for l in serve_lines(list(lines), proc_session)
            ]
        assert [strip_timings(o) for o in serial_out] == \
               [strip_timings(o) for o in proc_out]

    def test_threads_dispatch_processes_execute(self):
        # --workers and --process-workers compose: thread workers feed
        # the process backend concurrently; responses stay in order.
        lines = [spec_line(seed=s) for s in range(5)]
        serial_out = [json.loads(l) for l in serve_lines(list(lines))]
        with Session(process_workers=2) as proc_session:
            proc_out = [
                json.loads(l)
                for l in serve_lines(list(lines), proc_session, workers=2)
            ]
        assert [strip_timings(o) for o in serial_out] == \
               [strip_timings(o) for o in proc_out]

    def test_serve_owns_and_closes_the_default_session(self):
        from tests.process.conftest import shm_segments

        before = shm_segments()
        out = io.StringIO()
        count = serve(io.StringIO(spec_line() + "\n"), out,
                      process_workers=1)
        assert count == 1
        assert json.loads(out.getvalue())["ok"] is True
        assert shm_segments() - before == set()

    def test_serve_rejects_process_workers_with_explicit_session(self):
        with pytest.raises(ValueError, match="process_workers"):
            serve(io.StringIO(""), io.StringIO(), Session(),
                  process_workers=2)


class TestWorkerValidation:
    def test_rejects_nonpositive_thread_workers(self):
        with pytest.raises(SystemExit, match="--workers"):
            _validate_serve_workers(0, None)

    def test_rejects_nonpositive_process_workers(self):
        with pytest.raises(SystemExit, match="--process-workers"):
            _validate_serve_workers(1, 0)
        with pytest.raises(SystemExit, match="--process-workers"):
            _validate_serve_workers(1, -3)

    def test_oversubscription_warns_on_combined_total(self, capsys):
        import os
        cpus = os.cpu_count() or 1
        _validate_serve_workers(1, cpus)  # 1 + cpus > cpus
        err = capsys.readouterr().err
        assert "exceeds" in err
        assert f"--process-workers {cpus}" in err

    def test_within_budget_is_silent(self, capsys):
        _validate_serve_workers(1, None)
        assert capsys.readouterr().err == ""

    def test_cli_serve_rejects_bad_process_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--process-workers", "0"])

    def test_cli_serve_runs_with_process_workers(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(spec_line() + "\n"))
        assert main(["serve", "--process-workers", "1"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out.strip().splitlines()[-1])["ok"] is True
