"""Shared-memory dataset plane lifecycle: publish, attach, unlink.

The plane is the ownership boundary of the process backend: the
coordinator publishes the registry's arrays once, workers attach
zero-copy read-only views, and refcounting (plus an atexit sweep)
guarantees the segments unlink exactly once — a leaked ``/dev/shm``
entry survives the process and eats kernel memory until reboot, so
every test here ends with a leak scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import DatasetRegistry
from repro.api.shm import (
    AttachedPlane,
    StaleGeneration,
    decode_payload,
    encode_payload,
    live_plane_count,
)

from tests.process.conftest import make_registry, shm_segments


@pytest.fixture
def registry(cloud) -> DatasetRegistry:
    return make_registry(cloud)


class TestPublishAttach:
    def test_attached_arrays_are_equal_and_read_only(self, registry, cloud):
        xs, ys = cloud
        plane = registry.publish()
        try:
            attached = AttachedPlane(plane.manifest())
            pts = attached.payloads()["pts"]
            assert np.array_equal(pts.xs, xs)
            assert np.array_equal(pts.ys, ys)
            # Shared pages: a write here would corrupt every process
            # attached to the same segment.
            assert not pts.xs.flags.writeable
            with pytest.raises(ValueError):
                pts.xs[0] = -1.0
            attached.detach()
        finally:
            plane.release()

    def test_manifest_names_every_dataset(self, registry):
        plane = registry.publish()
        try:
            manifest = plane.manifest()
            assert set(manifest["datasets"]) == {"pts", "ptsv", "trips"}
            assert manifest["generation"] == registry.generation
        finally:
            plane.release()

    def test_generation_mismatch_rejected(self, registry):
        plane = registry.publish()
        try:
            attached = AttachedPlane(plane.manifest())
            attached.check_generation(plane.generation)  # fine
            with pytest.raises(StaleGeneration):
                attached.check_generation(plane.generation + 1)
            attached.detach()
        finally:
            plane.release()


class TestLifecycle:
    def test_release_unlinks_segments(self, registry):
        before = shm_segments()
        plane = registry.publish()
        created = shm_segments() - before
        assert created, "publish created no segments"
        plane.release()
        assert shm_segments() & created == set()

    def test_refcount_holds_segments_until_last_release(self, registry):
        before = shm_segments()
        plane = registry.publish()
        plane.acquire()
        created = shm_segments() - before
        plane.release()  # one holder left
        assert shm_segments() & created == created
        plane.release()  # last holder
        assert shm_segments() & created == set()

    def test_close_is_idempotent(self, registry):
        count_before = live_plane_count()
        plane = registry.publish()
        assert live_plane_count() == count_before + 1
        plane.close()
        plane.close()
        plane.release()
        assert plane.closed
        assert live_plane_count() == count_before

    def test_no_segments_leak_across_publish_cycles(self, registry):
        before = shm_segments()
        for _ in range(3):
            plane = registry.publish()
            AttachedPlane(plane.manifest()).detach()
            plane.release()
        assert shm_segments() - before == set()

    def test_publish_after_close_raises_and_leaks_nothing(self, registry):
        # Regression for the publication-vs-close race the lock lint
        # surfaced: a publish landing after close() must not append a
        # segment the closing sweep already missed.  The late publish
        # unlinks its own segment and raises instead.
        before = shm_segments()
        plane = registry.publish()
        plane.release()
        assert plane.closed
        with pytest.raises(RuntimeError, match="closed"):
            plane._publish_array(np.arange(8, dtype=np.float64))
        assert shm_segments() - before == set()


class TestPayloadCodec:
    def test_roundtrip_preserves_structure(self, registry, cloud):
        xs, ys = cloud
        plane = registry.publish()
        try:
            attached = AttachedPlane(plane.manifest())
            payload = {
                "kwargs": {
                    "xs": xs, "ys": ys,
                    "pair": (xs, 3.5),
                    "nested": [{"again": ys}],
                    "empty": np.empty(0, dtype=np.float64),
                    "scalar": 7,
                },
            }
            decoded = decode_payload(
                encode_payload(payload, plane), attached
            )
            kwargs = decoded["kwargs"]
            assert np.array_equal(kwargs["xs"], xs)
            assert isinstance(kwargs["pair"], tuple)
            assert np.array_equal(kwargs["pair"][0], xs)
            assert kwargs["pair"][1] == 3.5
            assert np.array_equal(kwargs["nested"][0]["again"], ys)
            assert kwargs["empty"].size == 0
            assert kwargs["scalar"] == 7
            # Published arrays crossed by reference, not by copy.
            assert not kwargs["xs"].flags.writeable
            attached.detach()
        finally:
            plane.release()

    def test_unpublished_arrays_cross_by_value(self, registry):
        plane = registry.publish()
        try:
            loose = np.arange(5, dtype=np.float64)
            encoded = encode_payload({"a": loose}, plane)
            decoded = decode_payload(encoded, None)
            assert np.array_equal(decoded["a"], loose)
        finally:
            plane.release()
