"""Tests for spatial tables and the canvas-tuple duality (Section 7)."""

import numpy as np
import pytest

from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Point, Polygon
from repro.relational.spatial_table import SpatialTable


@pytest.fixture
def restaurants():
    rng = np.random.default_rng(91)
    xs = rng.uniform(0, 100, 300)
    ys = rng.uniform(0, 100, 300)
    geometry = np.array([Point(x, y) for x, y in zip(xs, ys)], dtype=object)
    return SpatialTable({
        "geometry": geometry,
        "rating": rng.uniform(1, 5, 300),
    }), xs, ys


@pytest.fixture
def query_polygon():
    return Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])


class TestConstruction:
    def test_geometry_column_required(self):
        with pytest.raises(KeyError):
            SpatialTable({"a": [1]}, geometry_columns=("geometry",))

    def test_geometry_bounds(self, restaurants):
        table, xs, ys = restaurants
        bounds = table.geometry_bounds()
        assert bounds.xmin == pytest.approx(xs.min())
        assert bounds.ymax == pytest.approx(ys.max())


class TestDuality:
    def test_to_canvas_set_keys_are_row_ids(self, restaurants):
        table, _, _ = restaurants
        cs = table.to_canvas_set()
        assert cs.keys.tolist() == table.row_ids.tolist()

    def test_to_canvas_set_requires_points(self, query_polygon):
        table = SpatialTable(
            {"geometry": np.array([query_polygon], dtype=object)}
        )
        with pytest.raises(TypeError):
            table.to_canvas_set()

    def test_to_canvas_renders_all_rows(self, restaurants):
        table, _, _ = restaurants
        canvas = table.to_canvas(resolution=128)
        # Each point lands in some pixel; density collisions allowed.
        assert canvas.texture.nonnull_count() > 100

    def test_from_selection_rejoins_tuples(self, restaurants, query_polygon):
        table, xs, ys = restaurants
        from repro.core.queries import polygonal_select_points

        result = polygonal_select_points(
            xs, ys, query_polygon, ids=table.row_ids, resolution=256
        )
        sub = table.from_selection(result)
        assert sub.n_rows == len(result.ids)
        # The non-spatial column came along for the ride.
        assert len(sub["rating"]) == sub.n_rows


class TestWhereInside:
    def test_points_dispatch(self, restaurants, query_polygon):
        table, xs, ys = restaurants
        sub = table.where_inside(query_polygon, resolution=256)
        truth = points_in_polygon(xs, ys, query_polygon).sum()
        assert sub.n_rows == truth

    def test_polygons_dispatch(self, query_polygon):
        data_polys = np.array([
            Polygon([(30, 30), (40, 30), (40, 40), (30, 40)]),   # inside
            Polygon([(200, 200), (210, 200), (210, 210), (200, 210)]),
        ], dtype=object)
        table = SpatialTable({"geometry": data_polys, "zone": ["a", "b"]})
        sub = table.where_inside(query_polygon, resolution=256)
        assert sub.n_rows == 1
        assert sub["zone"].tolist() == ["a"]

    def test_composes_with_relational_select(self, restaurants, query_polygon):
        """Section 7: spatial and relational operators interleave."""
        table, xs, ys = restaurants
        high_rated = table.select(lambda t: t["rating"] > 4.0)
        sub = high_rated.where_inside(query_polygon, resolution=256)
        inside = points_in_polygon(xs, ys, query_polygon)
        truth = (inside & (table["rating"] > 4.0)).sum()
        assert sub.n_rows == truth

    def test_empty_table(self, query_polygon):
        table = SpatialTable(
            {"geometry": np.array([], dtype=object)}
        )
        sub = table.where_inside(query_polygon)
        assert sub.n_rows == 0
