"""Tests for the columnar relational table."""

import numpy as np
import pytest

from repro.relational.table import Column, Table


@pytest.fixture
def people():
    return Table({
        "name": ["ann", "bob", "cid", "dee"],
        "age": [30, 25, 35, 28],
        "city": ["nyc", "sf", "nyc", "la"],
    })


class TestConstruction:
    def test_row_ids_default(self, people):
        assert people.row_ids.tolist() == [0, 1, 2, 3]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Table({"a": [1, 2], "b": [1]})

    def test_column_must_be_1d(self):
        with pytest.raises(ValueError):
            Column("bad", np.zeros((2, 2)))

    def test_missing_column_raises(self, people):
        with pytest.raises(KeyError):
            people.column("salary")


class TestSelection:
    def test_select_predicate(self, people):
        adults = people.select(lambda t: t["age"] >= 30)
        assert adults.n_rows == 2
        assert adults["name"].tolist() == ["ann", "cid"]

    def test_row_ids_stable_across_selection(self, people):
        sub = people.select(lambda t: t["city"] == "nyc")
        assert sub.row_ids.tolist() == [0, 2]
        sub2 = sub.select(lambda t: t["age"] > 30)
        assert sub2.row_ids.tolist() == [2]

    def test_take_row_ids(self, people):
        sub = people.take_row_ids(np.array([3, 1]))
        assert set(sub["name"].tolist()) == {"bob", "dee"}

    def test_bad_predicate_shape_raises(self, people):
        with pytest.raises(ValueError):
            people.select(lambda t: np.array([True]))


class TestProjectionAndColumns:
    def test_project(self, people):
        sub = people.project(["name"])
        assert sub.column_names == ["name"]
        assert sub.n_rows == 4

    def test_project_missing_raises(self, people):
        with pytest.raises(KeyError):
            people.project(["name", "salary"])

    def test_with_column(self, people):
        extended = people.with_column("salary", [1, 2, 3, 4])
        assert "salary" in extended.column_names
        assert people.column_names == ["name", "age", "city"]  # original


class TestJoinAndSort:
    def test_equi_join(self, people):
        cities = Table({
            "city": ["nyc", "sf"],
            "state": ["NY", "CA"],
        })
        joined = people.equi_join(cities, "city", "city")
        assert joined.n_rows == 3
        by_name = dict(zip(joined["name"], joined["state"]))
        assert by_name == {"ann": "NY", "cid": "NY", "bob": "CA"}

    def test_join_name_collision_suffix(self, people):
        other = Table({"name": ["ann"], "age": [99]})
        joined = people.equi_join(other, "name", "name")
        assert "age_right" in joined.column_names

    def test_sort_by(self, people):
        by_age = people.sort_by("age")
        assert by_age["age"].tolist() == [25, 28, 30, 35]
        desc = people.sort_by("age", descending=True)
        assert desc["age"].tolist() == [35, 30, 28, 25]


class TestRows:
    def test_row_access(self, people):
        row = people.row(1)
        assert row == {"name": "bob", "age": 25, "city": "sf"}

    def test_iter_rows(self, people):
        assert len(list(people.iter_rows())) == 4
