"""Shared fixtures for the resilience battery.

Small, deterministic workloads: every test here is about *failure
behaviour* (aborts, shedding, eviction, injected faults), so the
queries themselves stay tiny and fixed-seed — the interesting part is
what happens around them.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ConstraintSpec, SelectSpec
from repro.geometry.primitives import Polygon

#: One cheap, deterministic select spec (reference dataset: nothing to
#: upload, bit-identical across runs).
DATASET = "synthetic:uniform?n=4000&seed=11"


@pytest.fixture()
def select_spec() -> SelectSpec:
    poly = Polygon([(10.0, 10.0), (90.0, 10.0), (90.0, 90.0), (10.0, 90.0)])
    return SelectSpec(
        dataset=DATASET,
        constraints=(ConstraintSpec.polygon(poly),),
        resolution=128,
    )


@pytest.fixture()
def select_line(select_spec) -> str:
    return json.dumps(select_spec.to_dict())
