"""Admission control and load shedding at the serve boundary.

Three layers under test: the envelope cost estimator (prices raw
requests before parsing), the :class:`AdmissionController` policy
object, and the serve loop integration — overload answered in-band
with ``code: "shed"`` in request order, absurd work rejected with
``code: "too_costly"`` before planning, and an abandoned generator
shutting its worker pool down (no leaked threads).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api.serve import serve_lines
from repro.core.optimizer import CostModel
from repro.resilience import AdmissionController, estimate_request_cost
from repro.testing import FaultPlan, FaultRule, inject



UNIT = CostModel().pixel_touch


class TestCostEstimator:
    def test_non_mapping_and_missing_spec_price_zero(self):
        assert estimate_request_cost(None) == 0.0
        assert estimate_request_cost([1, 2]) == 0.0
        assert estimate_request_cost("{}") == 0.0
        assert estimate_request_cost({"resolution": 4096}) == 0.0

    def test_resolution_squared_times_members(self):
        request = {
            "spec": "select",
            "resolution": 128,
            "constraints": [{"kind": "rect"}, {"kind": "rect"},
                            {"kind": "polygon"}],
        }
        assert estimate_request_cost(request) == 128 * 128 * 3 * UNIT

    def test_default_resolution_when_unset_or_malformed(self):
        base = 1024.0 ** 2 * UNIT
        assert estimate_request_cost({"spec": "voronoi"}) == base
        assert estimate_request_cost(
            {"spec": "voronoi", "resolution": True}) == base
        assert estimate_request_cost(
            {"spec": "voronoi", "resolution": -5}) == base
        assert estimate_request_cost(
            {"spec": "voronoi", "resolution": "big"}) == base

    def test_mapping_resolution_multiplies_dims(self):
        request = {"spec": "select",
                   "resolution": {"height": 100, "width": 200}}
        assert estimate_request_cost(request) == 100 * 200 * UNIT

    def test_nested_member_lists_count(self):
        request = {
            "spec": "geometry",
            "resolution": 64,
            "query": {"polygons": [1, 2, 3, 4]},
        }
        assert estimate_request_cost(request) == 64 * 64 * 4 * UNIT

    def test_batch_sums_members(self):
        member = {"spec": "select", "resolution": 32}
        request = {"batch": [member, member, member]}
        assert estimate_request_cost(request) \
            == 3 * estimate_request_cost(member)


class TestControllerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(retry_after_ms=0)
        with pytest.raises(ValueError):
            AdmissionController(max_cost=0)
        with pytest.raises(ValueError):
            AdmissionController(max_cost=-1.5)

    def test_overloaded_by_backlog(self):
        admission = AdmissionController(max_pending=3)
        assert not admission.overloaded(2)
        assert admission.overloaded(3)
        assert admission.overloaded(10)

    def test_overloaded_by_governor_shed_tier(self):
        class _Governor:
            shed = False

            def should_shed(self) -> bool:
                return self.shed

        governor = _Governor()
        admission = AdmissionController(max_pending=100, governor=governor)
        assert not admission.overloaded(0)
        governor.shed = True
        assert admission.overloaded(0)

    def test_shed_response_shape_and_count(self):
        admission = AdmissionController(retry_after_ms=75)
        response = admission.shed_response()
        assert response["ok"] is False
        assert response["code"] == "shed"
        assert response["retry_after_ms"] == 75
        admission.shed_response()
        assert admission.stats()["shed_count"] == 2

    def test_cost_precheck(self):
        no_ceiling = AdmissionController()
        huge = {"spec": "voronoi", "resolution": 8192}
        assert no_ceiling.cost_precheck(huge) is None

        admission = AdmissionController(max_cost=1e6)
        assert admission.cost_precheck(
            {"spec": "select", "resolution": 128}) is None
        rejection = admission.cost_precheck(huge)
        assert rejection["ok"] is False
        assert rejection["code"] == "too_costly"
        assert rejection["estimated_cost"] > rejection["max_cost"] == 1e6
        assert admission.stats()["cost_rejections"] == 1


class TestServeIntegration:
    def test_too_costly_rejected_in_band(self, select_line):
        admission = AdmissionController(max_cost=1.0)
        out = [json.loads(r)
               for r in serve_lines(iter([select_line]),
                                    admission=admission)]
        assert out[0]["ok"] is False
        assert out[0]["code"] == "too_costly"
        assert admission.cost_rejections == 1

    def test_window_must_cover_workers(self):
        with pytest.raises(ValueError, match="window must be at least"):
            list(serve_lines(iter([]), workers=4, window=2))
        with pytest.raises(ValueError, match="must be an integer"):
            list(serve_lines(iter([]), workers=2, window=True))
        # Exactly workers is the floor, not an error.
        assert list(serve_lines(iter([]), workers=2, window=2)) == []

    def test_sequential_serve_sheds_on_governor_pressure(self, select_line):
        class _Governor:
            def should_shed(self) -> bool:
                return True

        admission = AdmissionController(governor=_Governor())
        out = [json.loads(r)
               for r in serve_lines(iter([select_line] * 3),
                                    admission=admission)]
        assert [r["code"] for r in out] == ["shed"] * 3
        assert admission.shed_count == 3

    def test_overload_sheds_in_band_and_in_order(self, select_line):
        """Slow workers + a tiny backlog bound: some requests shed, the
        rest answer correctly, and output order matches input order
        (every line gets exactly one answer)."""
        n = 16
        admission = AdmissionController(max_pending=2)
        plan = FaultPlan(FaultRule(
            site="serve.request", action="delay", delay_s=0.05,
            probability=1.0, seed=7,
        ))
        with inject(plan):
            out = [json.loads(r)
                   for r in serve_lines(iter([select_line] * n),
                                        workers=2, window=12,
                                        admission=admission)]
        assert len(out) == n
        shed = [r for r in out if r.get("code") == "shed"]
        served = [r for r in out if r.get("ok")]
        assert len(shed) + len(served) == n
        assert shed, "a 2-deep backlog under 50ms delays must shed"
        assert served, "shedding must not starve the pool entirely"
        assert len(shed) == admission.shed_count
        for response in shed:
            assert response["retry_after_ms"] >= 1
        matched = {r["result"]["matched"] for r in served}
        assert len(matched) == 1  # identical queries, identical answers

    def test_abandoned_generator_shuts_down_pool(self, select_line):
        """Satellite: closing the generator mid-stream must not leak
        the worker pool's threads (shutdown with cancel_futures)."""

        def endless():
            while True:
                yield select_line

        gen = serve_lines(endless(), workers=2)
        assert json.loads(next(gen))["ok"] is True
        gen.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            workers = [t for t in threading.enumerate()
                       if t.name.startswith("repro-serve_")]
            if not workers:
                break
            time.sleep(0.01)
        assert not [t for t in threading.enumerate()
                    if t.name.startswith("repro-serve_")]
