"""Deadlines and cooperative cancellation, unit level through serve.

The contract under test: a request with ``deadline_ms`` aborts within
one checkpoint of its budget, raising a *typed* error the serve loop
answers in-band; a request with a generous budget is bit-identical to
an undeadlined run (checkpoints observe, they never change results);
and :meth:`Deadline.cancel` from any thread lands as ``Cancelled`` at
the next checkpoint.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Session, spec_from_dict
from repro.api.serve import serve_lines
from repro.api.specs import SpecError, VoronoiSpec, WindowSpec
from repro.resilience import (
    Cancelled,
    Deadline,
    DeadlineExceeded,
    check_deadline,
)



class TestDeadlineUnit:
    def test_budget_must_be_positive(self):
        for bad in (0, -1, -0.5):
            with pytest.raises(ValueError):
                Deadline(bad)

    def test_check_passes_inside_budget(self):
        clock = iter([0.0, 1.0, 2.0, 9.9]).__next__
        deadline = Deadline(10.0, clock=clock)
        deadline.check("a")
        deadline.check("b")
        deadline.check("c")
        assert deadline.checks == 3

    def test_check_raises_one_checkpoint_past_budget(self):
        """The abort lands at the first checkpoint *after* the budget —
        the formal 'within one checkpoint' guarantee."""
        clock = iter([0.0, 5.0, 10.0, 10.1]).__next__
        deadline = Deadline(10.0, clock=clock)
        deadline.check("inside")          # 5.0 — fine
        deadline.check("at-the-edge")     # 10.0 — not yet past
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("past")        # 10.1 — the very next check
        exc = excinfo.value
        assert exc.code == "deadline"
        assert exc.checkpoint == "past"
        assert exc.budget_ms == pytest.approx(10_000.0)
        assert exc.elapsed_ms == pytest.approx(10_100.0)

    def test_cancel_beats_budget_and_types_differently(self):
        deadline = Deadline(60.0)
        deadline.cancel()
        with pytest.raises(Cancelled) as excinfo:
            deadline.check("tile-build")
        assert excinfo.value.code == "cancelled"
        # Cancelled IS a DeadlineExceeded: one typed family to catch.
        assert isinstance(excinfo.value, DeadlineExceeded)

    def test_check_deadline_none_is_noop(self):
        check_deadline(None, "anything")  # the clean-path cost: one test

    def test_after_ms(self):
        deadline = Deadline.after_ms(250.0)
        assert deadline.budget_s == pytest.approx(0.25)


class TestSpecField:
    def test_round_trip_and_rejection(self, select_spec):
        data = select_spec.to_dict()
        assert "deadline_ms" not in data  # unset stays absent
        data["deadline_ms"] = 125.5
        spec = spec_from_dict(data)
        assert spec.deadline_ms == 125.5
        assert spec.to_dict()["deadline_ms"] == 125.5
        for bad in (0, -3, "soon", True, float("nan")):
            with pytest.raises(SpecError):
                spec_from_dict({**data, "deadline_ms": bad})


def _voronoi(deadline_ms=None):
    return VoronoiSpec(
        dataset="synthetic:uniform?n=300&seed=5",
        window=WindowSpec(0.0, 0.0, 100.0, 100.0),
        resolution=256,
        deadline_ms=deadline_ms,
    )


class TestSessionDeadlines:
    def test_expired_budget_aborts_with_checkpoint(self):
        session = Session()
        with pytest.raises(DeadlineExceeded) as excinfo:
            session.run(_voronoi(deadline_ms=1e-4))
        assert excinfo.value.checkpoint  # named site, not a bare raise

    def test_generous_budget_is_bit_identical(self, select_spec):
        session = Session()
        baseline = session.run(select_spec)
        spec = spec_from_dict(
            {**select_spec.to_dict(), "deadline_ms": 60_000.0}
        )
        deadlined = session.run(spec)
        assert np.array_equal(baseline.ids, deadlined.ids)
        assert baseline.n_candidates == deadlined.n_candidates
        assert baseline.n_exact_tests == deadlined.n_exact_tests

    def test_session_default_applies_and_spec_wins(self):
        session = Session(deadline_ms=1e-4)
        with pytest.raises(DeadlineExceeded):
            session.run(_voronoi())
        # The spec's own generous budget overrides the tiny default.
        session.run(_voronoi(deadline_ms=60_000.0))

    def test_join_members_checkpoint(self):
        from repro.api.specs import JoinSpec

        session = Session()
        spec = JoinSpec(
            kind="distance",
            left="synthetic:uniform?n=1000&seed=1",
            right="synthetic:uniform?n=40&seed=2",
            distance=5.0,
            deadline_ms=1e-4,
        )
        with pytest.raises(DeadlineExceeded):
            session.run(spec)

    def test_batch_member_carries_its_own_deadline(self, select_spec):
        session = Session()
        good = select_spec.to_dict()
        baseline = session.run(select_spec)
        run = session.run_batch(
            [dict(good, deadline_ms=60_000.0), good]
        )
        assert np.array_equal(run.results[0].ids, baseline.ids)
        assert np.array_equal(run.results[1].ids, baseline.ids)


class TestServeInBand:
    def test_deadline_answers_in_band_with_code(self):
        line = json.dumps(_voronoi(deadline_ms=1e-4).to_dict())
        good = json.dumps(_voronoi(deadline_ms=60_000.0).to_dict())
        out = [json.loads(r) for r in serve_lines(iter([line, good]))]
        assert out[0]["ok"] is False
        assert out[0]["code"] == "deadline"
        assert "deadline" in out[0]["error"]
        # The loop survived: the next request still answers.
        assert out[1]["ok"] is True

    def test_serve_default_deadline_knob(self):
        from repro.api.serve import default_serve_session

        session = default_serve_session(deadline_ms=1e-4)
        line = json.dumps(_voronoi().to_dict())
        out = [json.loads(r) for r in serve_lines(iter([line]), session)]
        assert out[0]["ok"] is False and out[0]["code"] == "deadline"


class TestCancellation:
    def test_cross_thread_cancel_lands_at_next_checkpoint(self):
        """An injected ``cancel`` action flips the deadline flag at the
        pool seam inside the kNN probe loop; the request dies as
        ``cancelled`` (not ``deadline``) at the next checkpoint."""
        from repro.engine import QueryEngine
        from repro.geometry.bbox import BoundingBox
        from repro.testing import FaultPlan, FaultRule, inject

        engine = QueryEngine()
        rng = np.random.default_rng(3)
        xs, ys = rng.uniform(0, 100, 3000), rng.uniform(0, 100, 3000)
        deadline = Deadline(60.0)
        plan = FaultPlan(FaultRule(
            site="pool.acquire", action="cancel", at={1}, target=deadline,
        ))
        with inject(plan):
            with pytest.raises(Cancelled) as excinfo:
                engine.knn(
                    xs, ys, (50.0, 50.0), 5,
                    window=BoundingBox(0, 0, 100, 100), resolution=256,
                    deadline=deadline, force_plan="canvas-distance-probes",
                )
        assert excinfo.value.code == "cancelled"
        assert excinfo.value.checkpoint == "knn-probe"
        assert plan.calls("pool.acquire") >= 1
