"""The deterministic fault-injection harness, and what it proves.

Unit half: rules validate eagerly, fire deterministically (explicit
call indices or a rule-seeded coin), cap at ``max_fires``, and the
:func:`inject` context manager refuses to nest and always restores the
clean path.

Integration half — the actual resilience claims:

- a builder that dies mid-flight leaves the canvas cache *empty* at
  that key, never corrupt, and a clean retry on the same engine is
  bit-identical to a never-faulted fresh run;
- a tile builder that dies unwinds the tiled plan the same way;
- the serve loop answers injected faults in-band (``internal`` /
  ``memory`` codes) and a clean parallel rerun matches a serial one
  byte for byte.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api import Session
from repro.api.serve import serve_lines
from repro.engine import QueryEngine
from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.testing import FaultInjected, FaultPlan, FaultRule, inject
from repro.testing.faults import maybe_fire



class TestRuleValidation:
    def test_unknown_site_and_action(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="cache.bilder")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="cache.builder", action="explode")

    def test_indices_xor_probability(self):
        with pytest.raises(ValueError, match="either call indices"):
            FaultRule(site="cache.builder", at={1}, probability=0.5)
        with pytest.raises(ValueError, match="within"):
            FaultRule(site="cache.builder", probability=1.5)

    def test_cancel_needs_target(self):
        with pytest.raises(ValueError, match="needs a Deadline"):
            FaultRule(site="pool.acquire", action="cancel")

    def test_indices_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(site="cache.builder", at={0})


class TestDeterministicFiring:
    def test_fires_at_exact_call_indices(self):
        plan = FaultPlan(FaultRule(site="cache.builder", at={2, 4}))
        with inject(plan):
            maybe_fire("cache.builder")                  # 1: clean
            with pytest.raises(FaultInjected):
                maybe_fire("cache.builder")              # 2: fires
            maybe_fire("pool.acquire")                   # other site: clean
            maybe_fire("cache.builder")                  # 3: clean
            with pytest.raises(FaultInjected):
                maybe_fire("cache.builder")              # 4: fires
        assert plan.calls("cache.builder") == 4
        assert plan.calls("pool.acquire") == 1

    def test_seeded_probability_is_reproducible(self):
        def pattern() -> list[bool]:
            rule = FaultRule(site="serve.request",
                             probability=0.4, seed=123)
            fired = []
            plan = FaultPlan(rule)
            with inject(plan):
                for _ in range(50):
                    try:
                        maybe_fire("serve.request")
                        fired.append(False)
                    except FaultInjected:
                        fired.append(True)
            return fired

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_max_fires_caps_a_probabilistic_rule(self):
        rule = FaultRule(site="tile.build", probability=1.0,
                         seed=1, max_fires=2)
        plan = FaultPlan(rule)
        with inject(plan):
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    maybe_fire("tile.build")
            maybe_fire("tile.build")  # capped: clean from here on
            maybe_fire("tile.build")
        assert rule.fired == 2

    def test_delay_action_sleeps(self):
        plan = FaultPlan(FaultRule(site="serve.request", action="delay",
                                   delay_s=0.05, at={1}))
        with inject(plan):
            t0 = time.monotonic()
            maybe_fire("serve.request")
            assert time.monotonic() - t0 >= 0.05

    def test_inject_refuses_nesting_and_restores(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="already installed"):
                with inject(FaultPlan()):
                    pass
        # Clean path restored: a would-fire rule is simply absent.
        maybe_fire("cache.builder")


def _selection(engine: QueryEngine, *, tiling: int | None = None):
    rng = np.random.default_rng(21)
    xs, ys = rng.uniform(0, 100, 3000), rng.uniform(0, 100, 3000)
    poly = Polygon([(15.0, 15.0), (85.0, 15.0), (85.0, 85.0), (15.0, 85.0)])
    return engine.select_points(
        xs, ys, [poly], window=BoundingBox(0, 0, 100, 100),
        resolution=128, tiling=tiling,
    )


class TestEngineUnwindsClean:
    def test_builder_fault_leaves_cache_empty_then_identical_retry(self):
        baseline = _selection(QueryEngine())

        engine = QueryEngine()
        plan = FaultPlan(FaultRule(site="cache.builder", at={1}))
        with inject(plan):
            with pytest.raises(FaultInjected):
                _selection(engine)
        # The failed build never produced an entry — not a corrupt one.
        stats = engine.cache.stats()
        assert stats.size == 0
        assert stats.builds == 0
        assert stats.bytes_used == 0
        # A clean retry on the SAME engine is bit-identical to a
        # never-faulted fresh run.
        retry = _selection(engine)
        assert np.array_equal(retry.ids, baseline.ids)
        assert engine.cache.stats().builds == 1

    def test_tile_fault_unwinds_then_identical_retry(self):
        baseline = _selection(QueryEngine(), tiling=4)

        engine = QueryEngine()
        plan = FaultPlan(FaultRule(site="tile.build", at={1}))
        with inject(plan):
            with pytest.raises(FaultInjected):
                _selection(engine, tiling=4)
        retry = _selection(engine, tiling=4)
        assert np.array_equal(retry.ids, baseline.ids)
        # And the tiled result agrees with the whole-frame one.
        assert np.array_equal(retry.ids, _selection(QueryEngine()).ids)

    def test_memory_fault_surfaces_as_memory_error(self):
        engine = QueryEngine()
        plan = FaultPlan(FaultRule(site="cache.builder", action="memory",
                                   at={1}))
        with inject(plan):
            with pytest.raises(MemoryError):
                _selection(engine)
        retry = _selection(engine)
        assert len(retry.ids) > 0


class TestServeFaults:
    def test_injected_faults_answer_in_band(self, select_line):
        plan = FaultPlan(
            FaultRule(site="serve.request", at={1}),
            FaultRule(site="serve.request", action="memory", at={2}),
        )
        with inject(plan):
            out = [json.loads(r) for r in serve_lines(
                iter([select_line] * 3))]
        assert out[0]["code"] == "internal"
        assert "FaultInjected" in out[0]["error"]
        assert out[1]["code"] == "memory"
        assert out[2]["ok"] is True  # the loop survived both faults

    def test_builder_fault_during_serve_then_clean_parallel_rerun(
        self, select_line,
    ):
        """A builder dying under a live serve answers in-band; the
        rerun (clean, 4 workers) matches a serial never-faulted run."""
        lines = [select_line] * 8
        serial = [json.loads(r) for r in serve_lines(iter(lines))]
        assert all(r["ok"] for r in serial)

        session = Session()
        plan = FaultPlan(FaultRule(site="cache.builder",
                                   probability=0.5, seed=5, max_fires=3))
        with inject(plan):
            faulted = [json.loads(r) for r in serve_lines(
                iter(lines), session, workers=4)]
        assert len(faulted) == 8
        failures = [r for r in faulted if not r["ok"]]
        for response in failures:
            assert response["code"] == "internal"
            assert "FaultInjected" in response["error"]

        clean = [json.loads(r) for r in serve_lines(
            iter(lines), session, workers=4)]
        assert all(r["ok"] for r in clean)
        for response in clean:
            assert response["result"]["ids"] == serial[0]["result"]["ids"]
            assert response["result"]["matched"] \
                == serial[0]["result"]["matched"]
