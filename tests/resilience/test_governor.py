"""The MemoryGovernor: one byte budget, tiered degradation, rebalance.

Unit tests drive the governor with stub components (exact byte
arithmetic); integration tests attach it to the real canvas cache /
result cache / buffer pool and prove admission shrinks, tiling is
forced, and rebalance evicts from the largest consumer first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import QueryEngine
from repro.engine.cache import CanvasCache
from repro.geometry.bbox import BoundingBox
from repro.geometry.primitives import Polygon
from repro.resilience import MemoryGovernor


class _StubCache:
    """A governor component with scriptable usage and LRU eviction."""

    def __init__(self, entries: list[int]) -> None:
        self.entries = list(entries)  # nbytes per entry, LRU first
        self.governor = None

    @property
    def bytes_used(self) -> int:
        return sum(self.entries)

    def evict_lru(self) -> int:
        return self.entries.pop(0) if self.entries else 0


class _StubPool:
    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes
        self.governor = None

    @property
    def bytes_used(self) -> int:
        return self.nbytes

    def trim(self) -> int:
        freed, self.nbytes = self.nbytes, 0
        return freed


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryGovernor(0)
        with pytest.raises(ValueError):
            MemoryGovernor(100, elevated_fraction=0.9, critical_fraction=0.7)
        with pytest.raises(ValueError):
            MemoryGovernor(100, tile_fallback=1)

    def test_attach_is_idempotent(self):
        governor = MemoryGovernor(1000)
        cache = _StubCache([10])
        governor.attach(canvas_cache=cache)
        governor.attach(canvas_cache=cache)
        assert governor.stats()["components"] == 1
        assert cache.governor is governor


class TestTiers:
    def test_tier_ladder(self):
        governor = MemoryGovernor(1000)
        cache = _StubCache([])
        governor.attach(canvas_cache=cache)
        assert governor.tier() == "ok"
        cache.entries = [700]
        assert governor.tier() == "elevated"
        cache.entries = [900]
        assert governor.tier() == "critical"
        cache.entries = [1000]
        assert governor.tier() == "shed"

    def test_admit_by_tier(self):
        governor = MemoryGovernor(1000)
        cache = _StubCache([])
        governor.attach(canvas_cache=cache)
        # ok: everything admits (rebalance trues up afterwards)
        assert governor.admit(10_000)
        # elevated: only entries that fit the remaining headroom
        cache.entries = [750]
        assert governor.admit(250)
        assert not governor.admit(251)
        # critical: nothing admits
        cache.entries = [950]
        assert not governor.admit(1)
        assert governor.stats()["admissions_denied"] == 2

    def test_force_tiling_and_shed(self):
        governor = MemoryGovernor(1000, tile_fallback=4)
        cache = _StubCache([500])
        governor.attach(canvas_cache=cache)
        assert governor.force_tiling() is None
        assert not governor.should_shed()
        cache.entries = [950]
        assert governor.force_tiling() == 4
        assert not governor.should_shed()
        cache.entries = [1100]
        assert governor.should_shed()


class TestRebalance:
    def test_largest_consumer_evicts_first(self):
        governor = MemoryGovernor(100)
        small = _StubCache([30])
        big = _StubCache([60, 60])
        governor.attach(result_cache=small, canvas_cache=big)
        freed = governor.rebalance()  # 150 -> fits after one eviction
        assert freed == 60
        assert big.entries == [60]
        assert small.entries == [30]  # untouched: it was never largest

    def test_result_cache_wins_ties(self):
        governor = MemoryGovernor(100)
        result = _StubCache([60])
        canvas = _StubCache([60])
        governor.attach(canvas_cache=canvas, result_cache=result)
        governor.rebalance()
        assert result.entries == []  # results are cheap to recompute
        assert canvas.entries == [60]

    def test_pool_trims_last(self):
        governor = MemoryGovernor(50)
        cache = _StubCache([80])
        pool = _StubPool(80)
        governor.attach(canvas_cache=cache, buffer_pool=pool)
        governor.rebalance()
        assert cache.entries == []   # cache emptied first
        assert pool.nbytes == 0      # then the pool
        assert governor.usage() == 0

    def test_rebalance_stops_at_budget(self):
        """Eviction is need-based: once usage fits, survivors stay."""
        governor = MemoryGovernor(100)
        cache = _StubCache([80])
        pool = _StubPool(15)
        governor.attach(canvas_cache=cache, buffer_pool=pool)
        assert governor.rebalance() == 0  # 95 <= 100: nothing to do
        assert cache.entries == [80]
        assert pool.nbytes == 15

    def test_no_progress_terminates(self):
        """An un-shrinkable overage (live buffers) must not spin."""
        governor = MemoryGovernor(10)

        class _Stuck:
            bytes_used = 100
            governor = None

            def evict_lru(self) -> int:
                return 0

        governor.attach(canvas_cache=_Stuck())
        assert governor.rebalance() == 0  # returned, didn't hang


class _SizedValue:
    """A cacheable value with an explicit byte footprint (the cache's
    sizer honours ``cache_nbytes``)."""

    def __init__(self, nbytes: int) -> None:
        self.cache_nbytes = nbytes


class TestCanvasCacheIntegration:
    def test_admission_denied_under_critical_pressure(self):
        cache = CanvasCache(capacity=32)
        governor = MemoryGovernor(1000).attach(canvas_cache=cache)
        ballast = _StubCache([980])
        governor.attach(result_cache=ballast)
        value = cache.get_or_build(("hot",), lambda: _SizedValue(100))
        # The build still returned a value to its caller...
        assert value.cache_nbytes == 100
        # ...but the cache skipped the insert: a repeat rebuilds.
        stats = cache.stats()
        assert stats.admission_skips == 1
        assert stats.bytes_used == 0
        cache.get_or_build(("hot",), lambda: _SizedValue(100))
        assert cache.stats().builds == 2

    def test_rebalance_evicts_down_to_budget(self):
        """A big entry admitted at the ``ok`` tier (which admits
        everything) pushes usage over budget; the post-insert rebalance
        evicts LRU entries until it fits again."""
        cache = CanvasCache(capacity=64)
        governor = MemoryGovernor(10_000).attach(canvas_cache=cache)
        for i in range(6):
            cache.get_or_build((i,), lambda: _SizedValue(1024))
        assert governor.tier() == "ok"  # 6144 < 7000: big entry admits
        cache.get_or_build(("big",), lambda: _SizedValue(8192))
        assert 0 < governor.usage() <= governor.budget_bytes
        assert cache.stats().size < 7
        assert governor.stats()["forced_evictions"] > 0
        # The newest (largest) entry survived; LRU smalls were evicted.
        assert ("big",) in cache

    def test_engine_workload_stays_under_budget(self):
        """A real raster workload against a tiny budget: usage is
        bounded, queries stay correct."""
        engine = QueryEngine()
        governor = MemoryGovernor(256 * 1024).attach(
            canvas_cache=engine.cache, buffer_pool=engine.buffer_pool,
        )
        rng = np.random.default_rng(9)
        xs, ys = rng.uniform(0, 100, 2000), rng.uniform(0, 100, 2000)
        window = BoundingBox(0, 0, 100, 100)
        baseline = None
        for round_ in range(3):
            for i in range(6):
                poly = Polygon([(5 + i, 5), (90, 5), (90, 90), (5 + i, 90)])
                out = engine.select_points(
                    xs, ys, [poly], window=window, resolution=128,
                )
                if i == 0:
                    if baseline is None:
                        baseline = out.ids
                    else:
                        assert np.array_equal(out.ids, baseline)
            assert governor.usage() <= governor.budget_bytes \
                + 256 * 1024  # one in-flight entry of slack


class TestResultCacheIntegration:
    def test_result_cache_admission_and_eviction(self):
        from repro.api.result_cache import ResultCache

        cache = ResultCache(capacity=64, max_bytes=1 << 20)
        governor = MemoryGovernor(1 << 20).attach(result_cache=cache)
        ballast = _StubCache([(1 << 20) - 100])
        governor.attach(canvas_cache=ballast)
        cache.put(("k",), np.zeros(1024))  # far over the headroom
        assert cache.stats().admission_skips == 1
        hit, _ = cache.get(("k",))
        assert not hit
