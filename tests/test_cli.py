"""End-to-end tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data.datasets import write_csv, write_geojson
from repro.geometry.predicates import points_in_polygon
from repro.geometry.primitives import Point, Polygon


@pytest.fixture
def data_files(tmp_path):
    rng = np.random.default_rng(151)
    xs = rng.uniform(0, 100, 500)
    ys = rng.uniform(0, 100, 500)
    fares = rng.uniform(1, 20, 500)
    points = [Point(x, y) for x, y in zip(xs, ys)]
    data_csv = tmp_path / "points.csv"
    write_csv(data_csv, points, [{"fare": f} for f in fares])

    query = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
    query_file = tmp_path / "region.geojson"
    write_geojson(query_file, [query])
    return data_csv, query_file, xs, ys, fares, query


class TestSelect:
    def test_counts_match_truth(self, data_files, capsys):
        data_csv, query_file, xs, ys, _, query = data_files
        code = main([
            "select", "--data", str(data_csv), "--query", str(query_file),
            "--resolution", "256",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        truth = int(points_in_polygon(xs, ys, query).sum())
        assert payload["matched"] == truth
        assert payload["total"] == 500
        assert payload["ids"] is None

    def test_ids_flag(self, data_files, capsys):
        data_csv, query_file, xs, ys, _, query = data_files
        main([
            "select", "--data", str(data_csv), "--query", str(query_file),
            "--resolution", "256", "--ids",
        ])
        payload = json.loads(capsys.readouterr().out)
        truth = set(np.nonzero(points_in_polygon(xs, ys, query))[0].tolist())
        assert set(payload["ids"]) == truth


class TestCount:
    def test_count(self, data_files, capsys):
        data_csv, query_file, xs, ys, _, query = data_files
        main(["count", "--data", str(data_csv), "--query", str(query_file),
              "--resolution", "256"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregate"] == "count"
        assert payload["value"] == points_in_polygon(xs, ys, query).sum()

    def test_sum_column(self, data_files, capsys):
        data_csv, query_file, xs, ys, fares, query = data_files
        main(["count", "--data", str(data_csv), "--query", str(query_file),
              "--sum-column", "fare", "--resolution", "256"])
        payload = json.loads(capsys.readouterr().out)
        inside = points_in_polygon(xs, ys, query)
        assert payload["value"] == pytest.approx(float(fares[inside].sum()))

    def test_missing_column_errors(self, data_files):
        data_csv, query_file, *_ = data_files
        with pytest.raises(SystemExit):
            main(["count", "--data", str(data_csv),
                  "--query", str(query_file), "--sum-column", "nope"])


class TestNearest:
    def test_nearest_matches_brute_force(self, data_files, capsys):
        data_csv, _, xs, ys, _, _ = data_files
        main(["nearest", "--data", str(data_csv), "--at", "50,50",
              "-k", "4", "--resolution", "256"])
        payload = json.loads(capsys.readouterr().out)
        d = np.hypot(xs - 50, ys - 50)
        truth = set(np.argsort(d)[:4].tolist())
        assert {row["id"] for row in payload} == truth
        dists = [row["distance"] for row in payload]
        assert dists == sorted(dists)

    def test_bad_at_errors(self, data_files):
        data_csv, *_ = data_files
        with pytest.raises(SystemExit):
            main(["nearest", "--data", str(data_csv), "--at", "fifty"])


class TestInfo:
    def test_describes_file(self, data_files, capsys):
        data_csv, *_ = data_files
        main(["info", "--data", str(data_csv)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 500
        assert payload["geometry_types"] == {"Point": 500}
        assert "fare" in payload["property_keys"]

    def test_unsupported_suffix_errors(self, tmp_path):
        bad = tmp_path / "data.parquet"
        bad.write_text("")
        with pytest.raises(SystemExit):
            main(["info", "--data", str(bad)])


class TestExplain:
    def test_selection_report(self, data_files, capsys):
        data_csv, query_file, *_ = data_files
        code = main([
            "explain", "--data", str(data_csv), "--query", str(query_file),
            "--resolution", "256",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen plan:" in out
        assert "estimated cost" in out
        assert "canvas cache" in out
        # Both physical candidates are priced in the report.
        assert "per-polygon-pip" in out and "blended-canvas" in out

    def test_join_aggregate_repeat_hits_cache(self, data_files, capsys):
        data_csv, query_file, *_ = data_files
        main([
            "explain", "--data", str(data_csv), "--query", str(query_file),
            "--mode", "join-aggregate", "--repeat", "2", "--resolution", "128",
        ])
        out = capsys.readouterr().out
        assert "join-then-aggregate" in out and "rasterjoin" in out
        # The second run reuses the rasterized constraint canvas.
        assert "1 hits" in out

    def test_approx_makes_aggregation_choice_cost_based(self, data_files,
                                                        capsys):
        data_csv, query_file, *_ = data_files
        main([
            "explain", "--data", str(data_csv), "--query", str(query_file),
            "--mode", "join-aggregate", "--approx", "--resolution", "128",
        ])
        out = capsys.readouterr().out
        assert "chosen plan:" in out
        # Neither contract-forced nor user-forced: the cost model chose.
        assert "choice forced" not in out

    def test_plan_override(self, data_files, capsys):
        data_csv, query_file, xs, ys, _, query = data_files
        main([
            "explain", "--data", str(data_csv), "--query", str(query_file),
            "--plan", "blended-canvas", "--resolution", "128",
        ])
        out = capsys.readouterr().out
        assert "chosen plan: blended-canvas" in out
        assert "override" in out

    def test_buffer_counters_reported(self, data_files, capsys):
        data_csv, query_file, *_ = data_files
        main([
            "explain", "--data", str(data_csv), "--query", str(query_file),
            "--resolution", "128",
        ])
        out = capsys.readouterr().out
        assert "full-texture copies" in out
        assert "in-place ops" in out

    @pytest.mark.parametrize("mode, both_plans", [
        ("distance", ("circle-canvas", "direct-distance")),
        ("knn", ("canvas-distance-probes", "kdtree-refine")),
        ("voronoi", ("iterated-value-transform", "blocked-argmin")),
    ])
    def test_routed_modes(self, data_files, capsys, mode, both_plans):
        data_csv, *_ = data_files
        code = main([
            "explain", "--data", str(data_csv), "--mode", mode,
            "--resolution", "64", "--repeat", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen plan:" in out
        for plan in both_plans:
            assert plan in out

    def test_od_mode(self, data_files, tmp_path, capsys):
        data_csv, *_ = data_files
        rng = np.random.default_rng(9)
        dests = [Point(x, y) for x, y in zip(rng.uniform(0, 100, 500),
                                             rng.uniform(0, 100, 500))]
        dest_csv = tmp_path / "dests.csv"
        write_csv(dest_csv, dests, [{} for _ in dests])
        q_file = tmp_path / "od_query.geojson"
        write_geojson(q_file, [
            Polygon([(10, 10), (60, 10), (60, 60), (10, 60)]),
            Polygon([(40, 40), (90, 40), (90, 90), (40, 90)]),
        ])
        code = main([
            "explain", "--data", str(data_csv), "--dest-data", str(dest_csv),
            "--query", str(q_file), "--mode", "od", "--resolution", "128",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "two-stage-canvas" in out and "per-pair-pip" in out

    def test_polygon_modes_require_query(self, data_files):
        data_csv, *_ = data_files
        with pytest.raises(SystemExit, match="requires --query"):
            main(["explain", "--data", str(data_csv)])

    def test_wrong_family_plan_rejected(self, data_files):
        data_csv, *_ = data_files
        with pytest.raises(SystemExit, match="unknown"):
            main([
                "explain", "--data", str(data_csv), "--mode", "knn",
                "--plan", "blocked-argmin", "--resolution", "64",
            ])

    @pytest.mark.parametrize("k", ["0", "100000"])
    def test_knn_invalid_k_rejected(self, data_files, k):
        data_csv, *_ = data_files
        with pytest.raises(SystemExit, match="-k must be"):
            main([
                "explain", "--data", str(data_csv), "--mode", "knn",
                "-k", k, "--resolution", "64",
            ])


class TestMixedGeometryFile:
    def test_select_dispatches_to_objects(self, tmp_path, capsys):
        query = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
        from repro.geometry.primitives import LineString

        records = [
            Point(50, 50),
            LineString([(0, 50), (100, 50)]),
            Polygon([(85, 85), (95, 85), (95, 95), (85, 95)]),
        ]
        data_file = tmp_path / "mixed.geojson"
        write_geojson(data_file, records)
        query_file = tmp_path / "q.geojson"
        write_geojson(query_file, [query])
        main(["select", "--data", str(data_file), "--query", str(query_file),
              "--resolution", "128", "--ids"])
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["ids"]) == {0, 1}


class TestSpecCommands:
    """The declarative entry points: query / serve / explain --spec."""

    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = {
            "spec": "select",
            "version": 1,
            "dataset": "synthetic:uniform?n=300&seed=4",
            "constraints": [
                {"kind": "rect", "l1": [20, 20], "l2": [80, 80]}
            ],
            "resolution": 128,
        }
        path = tmp_path / "query.json"
        path.write_text(json.dumps(spec))
        return path, spec

    def test_query_spec_file(self, spec_file, capsys):
        path, spec = spec_file
        assert main(["query", "--spec", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        from repro.api import DatasetRegistry
        from repro.geometry.predicates import points_in_polygon

        data = DatasetRegistry().resolve(spec["dataset"])
        query = Polygon([(20, 20), (80, 20), (80, 80), (20, 80)])
        truth = int(points_in_polygon(data.xs, data.ys, query).sum())
        assert payload["result"]["matched"] == truth
        assert "plan" in payload["report"]

    def test_query_batch_document(self, spec_file, tmp_path, capsys):
        path, spec = spec_file
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps({"batch": [spec, spec]}))
        assert main(["query", "--spec", str(batch)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["report"]["n_queries"] == 2

    def test_query_invalid_spec_exits(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"spec": "select", "version": 1,
                                    "dataset": "x", "constraints": []}))
        with pytest.raises(SystemExit, match="at least one constraint"):
            main(["query", "--spec", str(path)])

    def test_query_unreadable_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read spec file"):
            main(["query", "--spec", str(tmp_path / "missing.json")])

    def test_explain_spec_file(self, spec_file, capsys):
        path, _ = spec_file
        assert main(["explain", "--spec", str(path), "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "# select spec from" in out
        assert "chosen plan" in out

    def test_explain_spec_with_forced_plan(self, spec_file, capsys):
        path, _ = spec_file
        assert main([
            "explain", "--spec", str(path), "--plan", "blended-canvas",
        ]) == 0
        out = capsys.readouterr().out
        assert "blended-canvas" in out
        assert "user override" in out

    def test_explain_requires_data_or_spec(self):
        with pytest.raises(SystemExit, match="requires --data"):
            main(["explain"])

    def test_serve_loop_stdin_stdout(self, spec_file, capsys, monkeypatch):
        import io
        path, spec = spec_file
        lines = json.dumps(spec) + "\nnot json\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve"]) == 0
        answers = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert [a["ok"] for a in answers] == [True, False]
        assert answers[0]["result"]["type"] == "selection"

    def test_explain_spec_rejects_conflicting_flags(self, spec_file):
        path, _ = spec_file
        with pytest.raises(SystemExit, match="drop --mode"):
            main(["explain", "--spec", str(path), "--mode", "knn"])

    def test_explain_spec_rejects_k_and_resolution(self, spec_file):
        path, _ = spec_file
        with pytest.raises(SystemExit, match="drop -k"):
            main(["explain", "--spec", str(path), "-k", "9"])
        with pytest.raises(SystemExit, match="drop --resolution"):
            main(["explain", "--spec", str(path), "--resolution", "256"])

    def test_explain_spec_rejects_data_flag(self, spec_file, tmp_path):
        path, _ = spec_file
        with pytest.raises(SystemExit, match="drop --data"):
            main(["explain", "--spec", str(path),
                  "--data", str(tmp_path / "x.csv")])
