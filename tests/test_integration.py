"""Cross-module integration tests.

These tie the whole stack together: sparse vs dense operator paths,
algebra results vs every baseline, device profiles, and the end-to-end
taxi workflow the benchmarks time.
"""

import numpy as np
import pytest

from repro.baselines.cpu_pip import cpu_select_multi
from repro.baselines.gpu_baseline import gpu_baseline_select_multi
from repro.baselines.join_baselines import nested_loop_join_aggregate
from repro.data.polygons import calibrate_selectivity, hand_drawn_polygon, rescale_to_box
from repro.data.taxi import generate_taxi_trips
from repro.geometry.bbox import BoundingBox
from repro.geometry.predicates import points_in_polygon
from repro.gpu.device import Device
from repro.core import algebra
from repro.core.blendfuncs import PIP_MERGE
from repro.core.canvas import Canvas
from repro.core.canvas_set import CanvasSet
from repro.core.masks import mask_point_in_any_polygon
from repro.core.objectinfo import DIM_POINT
from repro.core.queries import join_aggregate, polygonal_select_points


class TestSparseDenseEquivalence:
    """The two canvas realizations agree on shared queries."""

    def test_selection_same_pixels(self, uniform_cloud, concave_polygon):
        xs, ys = uniform_cloud
        xs, ys = xs[:5000], ys[:5000]
        window = BoundingBox(0, 0, 100, 100)
        constraint = Canvas.from_polygon(
            concave_polygon, window, resolution=256
        )

        # Sparse path.
        sparse = algebra.mask(
            algebra.blend(
                CanvasSet.from_points(xs, ys), constraint, PIP_MERGE
            ),
            mask_point_in_any_polygon(1.0),
        )
        # Dense path: merge points into a canvas first.
        dense_points = Canvas.from_points(xs, ys, window, resolution=256)
        dense = algebra.mask(
            algebra.blend(dense_points, constraint, PIP_MERGE),
            mask_point_in_any_polygon(1.0),
        )
        # Every sparse surviving sample's pixel is lit in the dense
        # result, and the dense result has no extra lit pixels.
        px, py = constraint.world_to_pixel(sparse.xs, sparse.ys)
        sparse_pixels = set(
            zip(np.floor(py).astype(int).tolist(),
                np.floor(px).astype(int).tolist())
        )
        dense_pixels = set(zip(*map(list, np.nonzero(dense.valid(DIM_POINT)))))
        assert sparse_pixels == dense_pixels


class TestAllApproachesAgree:
    def test_four_way_agreement(self, uniform_cloud, star_polygons):
        xs, ys = uniform_cloud
        xs, ys = xs[:4000], ys[:4000]
        polys = star_polygons[:2]

        algebra_ids = set(
            polygonal_select_points(xs, ys, polys, resolution=512).ids.tolist()
        )
        cpu_ids = set(cpu_select_multi(xs, ys, polys).tolist())
        gpu_ids = set(gpu_baseline_select_multi(xs, ys, polys).tolist())
        truth = set()
        for p in polys:
            truth |= set(np.nonzero(points_in_polygon(xs, ys, p))[0].tolist())
        assert algebra_ids == gpu_ids == truth
        # The scalar CPU baseline has no epsilon handling; allow
        # disagreement only on exact-boundary points (measure zero for
        # uniform random data — normally empty).
        assert cpu_ids == truth

    def test_aggregation_agrees_with_join_baseline(self, uniform_cloud,
                                                   star_polygons):
        xs, ys = uniform_cloud
        xs, ys = xs[:4000], ys[:4000]
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 10, len(xs))
        polys = star_polygons[:2]
        ours = join_aggregate(xs, ys, polys, values=values, aggregate="sum",
                              resolution=512)
        baseline = nested_loop_join_aggregate(
            xs, ys, polys, values=values, aggregate="sum"
        )
        for pid in (0, 1):
            assert ours.as_dict()[pid] == pytest.approx(baseline[pid])


class TestDeviceProfiles:
    def test_three_resolutions_two_devices_same_ids(self, uniform_cloud,
                                                    concave_polygon):
        xs, ys = uniform_cloud
        xs, ys = xs[:3000], ys[:3000]
        reference = None
        for resolution in (64, 256):
            for device in (Device.discrete(), Device.integrated(tile_rows=8)):
                ids = polygonal_select_points(
                    xs, ys, concave_polygon,
                    resolution=resolution, device=device,
                ).ids.tolist()
                if reference is None:
                    reference = ids
                assert ids == reference


class TestTaxiWorkflow:
    """The paper's evaluation workload end-to-end (scaled down)."""

    def test_selection_on_taxi_pickups(self):
        trips = generate_taxi_trips(20_000, seed=13)
        mbr = BoundingBox(4, 8, 16, 32)
        poly, selectivity = calibrate_selectivity(
            trips.pickup_x, trips.pickup_y, 0.3, mbr, seed=14
        )
        result = polygonal_select_points(
            trips.pickup_x, trips.pickup_y, poly, resolution=512
        )
        truth = points_in_polygon(trips.pickup_x, trips.pickup_y, poly)
        assert set(result.ids.tolist()) == set(np.nonzero(truth)[0].tolist())
        # Calibration promised ~30% selectivity over all trips.
        assert abs(truth.mean() - selectivity) < 1e-9

    def test_time_sliced_inputs_nest(self):
        """Larger time ranges select supersets (the Fig. 9 x-axis)."""
        trips = generate_taxi_trips(10_000, seed=15)
        poly = rescale_to_box(
            hand_drawn_polygon(seed=16), BoundingBox(5, 10, 15, 30)
        )
        ids_by_range = []
        for t1 in (6.0, 12.0, 24.0):
            sub = trips.filter_time_range(0.0, t1)
            result = polygonal_select_points(
                sub.pickup_x, sub.pickup_y, poly,
                ids=np.nonzero(
                    (trips.pickup_time >= 0.0) & (trips.pickup_time < t1)
                )[0],
                resolution=256,
            )
            ids_by_range.append(set(result.ids.tolist()))
        assert ids_by_range[0] <= ids_by_range[1] <= ids_by_range[2]
