"""Tests for the timing utilities."""

import time

import pytest

from repro.utils.timing import BenchResult, Timer, benchmark_callable


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first or first == 0.0


class TestBenchmarkCallable:
    def test_repeats_and_value(self):
        calls = []
        result = benchmark_callable("inc", lambda: calls.append(1) or len(calls),
                                    repeats=3)
        assert len(result.times) == 3
        assert result.value == 3

    def test_warmup_not_counted(self):
        calls = []
        result = benchmark_callable(
            "w", lambda: calls.append(1), repeats=2, warmup=2
        )
        assert len(calls) == 4
        assert len(result.times) == 2

    def test_statistics(self):
        result = BenchResult("x", times=[0.2, 0.1, 0.4])
        assert result.best == 0.1
        assert result.median == 0.2
        assert result.mean == pytest.approx(0.7 / 3)

    def test_speedup_over(self):
        fast = BenchResult("fast", times=[0.1])
        slow = BenchResult("slow", times=[0.4])
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_speedup_zero_median(self):
        zero = BenchResult("zero", times=[0.0])
        other = BenchResult("o", times=[1.0])
        assert zero.speedup_over(other) == float("inf")

    def test_minimum_one_repeat(self):
        result = benchmark_callable("one", lambda: 42, repeats=0)
        assert len(result.times) == 1
        assert result.value == 42
